"""Python value ⇄ SOAP-encoded XML element conversion.

Implements SOAP 1.1 Section-5 style encoding with ``xsi:type`` annotations.
Two array modes are supported, matching the two costs the paper attributes
to XML messaging:

* ``items`` — every number becomes its own ``<item xsi:type="xsd:double">``
  element (text encoding cost: float → decimal string → float);
* ``base64`` — the array's big-endian bytes are base64-encoded into a single
  ``xsd:base64Binary`` text node ("the default BASE64 encoding adopted by
  SOAP for XSD data types", Section 5).

Both pay real CPU and wire overhead relative to XDR; the C1 benchmark
measures each.
"""

from __future__ import annotations

import base64
from typing import Any
from xml.sax.saxutils import escape, quoteattr

import numpy as np

from repro.encoding.base64codec import (
    decode_array_base64,
    encode_array_base64,
    encode_array_base64_bytes,
)
from repro.util.errors import EncodingError, XmlError
from repro.xmlkit import NS_HARNESS, NS_SOAP_ENC, NS_XSD, NS_XSI, QName, XmlElement

__all__ = [
    "value_to_element",
    "element_to_value",
    "encode_value_into",
    "ARRAY_MODES",
    "NSF_XSI",
    "NSF_HARNESS",
    "NSF_SOAPENC",
]

ARRAY_MODES = ("base64", "items")

#: Namespace-usage flags returned by :func:`encode_value_into`; the envelope
#: template layer maps the union over all arguments to a cached xmlns block.
NSF_XSI = 1
NSF_HARNESS = 2
NSF_SOAPENC = 4

_XSI_TYPE = QName(NS_XSI, "type")
_H_DTYPE = QName(NS_HARNESS, "dtype")
_H_SHAPE = QName(NS_HARNESS, "shape")
_ENC_ARRAY_TYPE = QName(NS_SOAP_ENC, "arrayType")

_BOOL_WORDS = {"true": True, "1": True, "false": False, "0": False}

import re as _re

# Characters XML 1.0 cannot represent at all (even escaped): control chars
# other than tab/newline/carriage-return, and surrogates.
_XML_INVALID = _re.compile(
    "[\x00-\x08\x0b\x0c\x0e-\x1f\ud800-\udfff￾￿]"
)


def _check_xml_text(text: str, where: str) -> str:
    """SOAP is XML: strings with XML-unrepresentable characters must be
    rejected at encode time rather than producing a malformed envelope
    (binary payloads belong in xsd:base64Binary)."""
    match = _XML_INVALID.search(text)
    if match is not None:
        raise EncodingError(
            f"{where} contains character {match.group()!r} which XML 1.0 "
            "cannot represent; use bytes (base64Binary) for binary data"
        )
    return text


def value_to_element(name: str, value: Any, array_mode: str = "base64") -> XmlElement:
    """Encode *value* as an element called *name* with an ``xsi:type``."""
    if array_mode not in ARRAY_MODES:
        raise EncodingError(f"unknown array mode {array_mode!r}")
    element = XmlElement(QName("", name))
    _fill(element, value, array_mode)
    return element


def _fill(element: XmlElement, value: Any, array_mode: str) -> None:
    if value is None:
        element.set(QName(NS_XSI, "nil"), "true")
    elif isinstance(value, bool):
        element.set(_XSI_TYPE, "xsd:boolean")
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element.set(_XSI_TYPE, "xsd:long")
        element.text = str(value)
    elif isinstance(value, float):
        # repr(float) round-trips float64 exactly; plain float() first so
        # numpy scalars (float subclasses) don't leak their numpy repr
        element.set(_XSI_TYPE, "xsd:double")
        element.text = repr(float(value))
    elif isinstance(value, str):
        element.set(_XSI_TYPE, "xsd:string")
        element.text = _check_xml_text(value, "xsd:string value")
    elif isinstance(value, (bytes, bytearray)):
        element.set(_XSI_TYPE, "xsd:base64Binary")
        import base64 as _b64

        element.text = _b64.b64encode(bytes(value)).decode("ascii")
    elif isinstance(value, np.ndarray):
        _fill_ndarray(element, value, array_mode)
    elif isinstance(value, np.generic):
        _fill(element, value.item(), array_mode)
    elif isinstance(value, (list, tuple)):
        numeric = _as_numeric(value)
        if numeric is not None:
            _fill_ndarray(element, numeric, array_mode)
        else:
            element.set(_XSI_TYPE, "soapenc:Array")
            element.set(_ENC_ARRAY_TYPE, f"xsd:anyType[{len(value)}]")
            for item in value:
                child = element.element("item")
                _fill(child, item, array_mode)
    elif isinstance(value, dict):
        element.set(_XSI_TYPE, "harness:Struct")
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError("SOAP struct keys must be strings")
            child = element.element("entry", {"key": _check_xml_text(key, "struct key")})
            _fill(child, item, array_mode)
    else:
        raise EncodingError(f"cannot SOAP-encode {type(value).__name__}")


def _as_numeric(seq) -> np.ndarray | None:
    if not seq:
        return None
    if all(isinstance(v, float) for v in seq):
        return np.asarray(seq, dtype=np.float64)
    if all(isinstance(v, int) and not isinstance(v, bool) for v in seq):
        try:
            return np.asarray(seq, dtype=np.int64)
        except OverflowError:
            return None
    return None


def _fill_ndarray(element: XmlElement, array: np.ndarray, array_mode: str) -> None:
    array = np.asarray(array)
    shape = " ".join(str(d) for d in array.shape)
    if array_mode == "base64":
        element.set(_XSI_TYPE, "xsd:base64Binary")
        element.set(_H_DTYPE, array.dtype.name)
        element.set(_H_SHAPE, shape)
        element.text = encode_array_base64(array.ravel(), array.dtype.name)
        return
    # items mode: SOAP-ENC:Array of individually typed text elements
    flat = array.ravel()
    xsd_type = _xsd_scalar_type(array.dtype)
    element.set(_XSI_TYPE, "soapenc:Array")
    element.set(_ENC_ARRAY_TYPE, f"{xsd_type}[{flat.size}]")
    element.set(_H_DTYPE, array.dtype.name)
    element.set(_H_SHAPE, shape)
    if array.dtype.kind == "f":
        texts = [repr(float(v)) for v in flat]
    elif array.dtype.kind in "iu":
        texts = [str(int(v)) for v in flat]
    else:
        raise EncodingError(f"items mode cannot encode dtype {array.dtype}")
    for text in texts:
        element.element("item", {str(_XSI_TYPE.clark()): xsd_type}, text=text)


def _xsd_scalar_type(dtype: np.dtype) -> str:
    kind = dtype.kind
    if kind == "f":
        return "xsd:double" if dtype.itemsize == 8 else "xsd:float"
    if kind == "i":
        return "xsd:long" if dtype.itemsize == 8 else "xsd:int"
    if kind == "u":
        return "xsd:unsignedLong" if dtype.itemsize == 8 else "xsd:unsignedInt"
    raise EncodingError(f"no XSD scalar type for dtype {dtype}")


def element_to_value(element: XmlElement) -> Any:
    """Decode a SOAP-encoded element back into a Python value."""
    if element.get(QName(NS_XSI, "nil")) == "true" or element.get("nil") == "true":
        return None
    xsi_type = element.get(_XSI_TYPE) or element.get("type") or ""
    local = xsi_type.split(":", 1)[-1]
    dtype_attr = element.get(_H_DTYPE) or element.get("dtype")
    shape_attr = element.get(_H_SHAPE)
    shape = (
        tuple(int(d) for d in shape_attr.split()) if shape_attr is not None else None
    )

    if local == "boolean":
        word = element.text.strip().lower()
        if word not in _BOOL_WORDS:
            raise EncodingError(f"invalid xsd:boolean text: {element.text!r}")
        return _BOOL_WORDS[word]
    if local in ("int", "long", "short", "byte", "unsignedInt", "unsignedLong", "integer"):
        try:
            return int(element.text.strip())
        except ValueError as exc:
            raise EncodingError(f"invalid integer text: {element.text!r}") from exc
    if local in ("double", "float", "decimal"):
        try:
            return float(element.text.strip())
        except ValueError as exc:
            raise EncodingError(f"invalid float text: {element.text!r}") from exc
    if local == "string":
        return element.text
    if local == "base64Binary":
        if dtype_attr is not None:
            array = decode_array_base64(element.text.strip(), dtype_attr)
            if shape is not None:
                array = array.reshape(shape)
            return array
        import base64 as _b64

        try:
            return _b64.b64decode(element.text.strip().encode("ascii"), validate=True)
        except Exception as exc:
            raise EncodingError(f"invalid base64Binary: {exc}") from exc
    if local == "Array":
        items = element.find_all("item")
        if dtype_attr is not None:
            dtype = np.dtype(dtype_attr)
            if dtype.kind == "f":
                array = np.asarray([float(i.text) for i in items], dtype=dtype)
            else:
                array = np.asarray([int(i.text) for i in items], dtype=dtype)
            if shape is not None:
                array = array.reshape(shape)
            return array
        return [element_to_value(item) for item in items]
    if local == "Struct":
        out: dict[str, Any] = {}
        for entry in element.find_all("entry"):
            out[entry.require("key")] = element_to_value(entry)
        return out
    if not xsi_type:
        # Untyped: bare string content (lenient towards foreign SOAP stacks).
        return element.text
    raise EncodingError(f"unknown xsi:type {xsi_type!r}")


# -- streaming fast path -----------------------------------------------------------
#
# The tree path above (value_to_element / element_to_value) is the reference
# implementation; the functions below produce and consume byte-identical XML
# without materialising any XmlElement.  Encoding appends fragments straight
# to a caller-owned bytearray (base64 payloads never pass through ``str``);
# decoding consumes expat events via ValueFrame (see soap.envelope).

def encode_value_into(buf: bytearray, name: str, value: Any, array_mode: str, extra: str = "") -> int:
    """Append ``<name …>…</name>`` to *buf*; return the NSF_* flags used.

    *extra* is a pre-rendered attribute string spliced right after the tag
    name (the Struct path uses it for ``key=…``), matching the tree writer's
    attribute order.
    """
    if value is None:
        buf += f'<{name}{extra} xsi:nil="true"/>'.encode("utf-8")
        return NSF_XSI
    if isinstance(value, bool):
        word = "true" if value else "false"
        buf += f'<{name}{extra} xsi:type="xsd:boolean">{word}</{name}>'.encode("utf-8")
        return NSF_XSI
    if isinstance(value, int):
        buf += f'<{name}{extra} xsi:type="xsd:long">{value}</{name}>'.encode("utf-8")
        return NSF_XSI
    if isinstance(value, float):
        buf += f'<{name}{extra} xsi:type="xsd:double">{float(value)!r}</{name}>'.encode("utf-8")
        return NSF_XSI
    if isinstance(value, str):
        text = escape(_check_xml_text(value, "xsd:string value"))
        if text:
            buf += f'<{name}{extra} xsi:type="xsd:string">{text}</{name}>'.encode("utf-8")
        else:
            buf += f'<{name}{extra} xsi:type="xsd:string"/>'.encode("utf-8")
        return NSF_XSI
    if isinstance(value, (bytes, bytearray)):
        encoded = base64.b64encode(value)
        if encoded:
            buf += f'<{name}{extra} xsi:type="xsd:base64Binary">'.encode("utf-8")
            buf += encoded
            buf += f'</{name}>'.encode("utf-8")
        else:
            buf += f'<{name}{extra} xsi:type="xsd:base64Binary"/>'.encode("utf-8")
        return NSF_XSI
    if isinstance(value, np.ndarray):
        return _encode_ndarray_into(buf, name, value, array_mode, extra)
    if isinstance(value, np.generic):
        return encode_value_into(buf, name, value.item(), array_mode, extra)
    if isinstance(value, (list, tuple)):
        numeric = _as_numeric(value)
        if numeric is not None:
            return _encode_ndarray_into(buf, name, numeric, array_mode, extra)
        buf += (
            f'<{name}{extra} xsi:type="soapenc:Array"'
            f' soapenc:arrayType="xsd:anyType[{len(value)}]">'
        ).encode("utf-8")
        mark = len(buf)
        flags = NSF_XSI | NSF_SOAPENC
        for item in value:
            flags |= encode_value_into(buf, "item", item, array_mode)
        if len(buf) == mark:
            buf[mark - 1 :] = b"/>"
        else:
            buf += f'</{name}>'.encode("utf-8")
        return flags
    if isinstance(value, dict):
        buf += f'<{name}{extra} xsi:type="harness:Struct">'.encode("utf-8")
        mark = len(buf)
        # "harness:Struct" is an attribute *value*: it never forces an
        # xmlns:harness declaration (only harness-named attrs like
        # harness:dtype do), so the mask stays xsi-only here.
        flags = NSF_XSI
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError("SOAP struct keys must be strings")
            key_attr = f" key={quoteattr(_check_xml_text(key, 'struct key'))}"
            flags |= encode_value_into(buf, "entry", item, array_mode, key_attr)
        if len(buf) == mark:
            buf[mark - 1 :] = b"/>"
        else:
            buf += f'</{name}>'.encode("utf-8")
        return flags
    raise EncodingError(f"cannot SOAP-encode {type(value).__name__}")


_X_XSI_TYPE = f"{NS_XSI}}}type"
_X_XSI_NIL = f"{NS_XSI}}}nil"
_X_H_DTYPE = f"{NS_HARNESS}}}dtype"
_X_H_SHAPE = f"{NS_HARNESS}}}shape"


def expat_attr(attrs: dict[str, str], exact: str, plain: str, local: str) -> str | None:
    """The tree model's lenient attribute lookup over expat-shaped names.

    Mirrors ``element.get(QName(ns, local)) or element.get(local)``: the
    exact namespaced key wins unless absent/empty, then the unqualified
    name, then any attribute with a matching local part.
    """
    value = attrs.get(exact)
    if value:
        return value
    value = attrs.get(plain)
    if value is not None:
        return value
    for key in attrs:
        if key.rpartition("}")[2] == local:
            return attrs[key]
    return None


class ValueFrame:
    """One open element in the expat pull decoder.

    Collects exactly what :func:`element_to_value` reads from a tree node —
    the relevant attributes, the pre-child text, and per-child records —
    so the value materialises the moment the element closes, with no
    :class:`XmlElement` in between.  ``raw`` frames (typed-array items,
    fault details) skip value decoding entirely; only their text is kept.
    """

    __slots__ = ("local", "attrs", "text", "children", "has_children", "raw", "raw_children")

    def __init__(self, local: str, attrs: dict[str, str], raw: bool = False):
        self.local = local
        self.attrs = attrs
        self.text: list[str] = []
        self.children: list[tuple[str, str | None, Any, str]] = []
        self.has_children = False
        self.raw = raw
        # typed arrays read their items' raw text; decoding each item as a
        # value would double the text-conversion cost for nothing
        self.raw_children = raw or bool(
            attrs
            and expat_attr(attrs, _X_H_DTYPE, "dtype", "dtype") is not None
            and (expat_attr(attrs, _X_XSI_TYPE, "type", "type") or "").split(":", 1)[-1] == "Array"
        )

    def element_text(self) -> str:
        """The tree model's ``.text``: pre-child text, stripped when the
        element has children (that whitespace is indentation)."""
        text = "".join(self.text)
        return text.strip() if self.has_children else text

    def close(self) -> tuple[str, str | None, Any, str]:
        """Finish this frame into a ``(local, key, value, text)`` record."""
        text = self.element_text()
        key = expat_attr(self.attrs, "", "key", "key") if self.attrs else None
        value = None if self.raw else self._decode(text)
        return self.local, key, value, text

    def _shape(self):
        shape_attr = self.attrs.get(_X_H_SHAPE)
        return tuple(int(d) for d in shape_attr.split()) if shape_attr is not None else None

    def _decode(self, text: str) -> Any:
        attrs = self.attrs
        if not attrs:
            # no attributes at all: can't be nil or typed — plain text value
            return text
        if attrs.get(_X_XSI_NIL) == "true" or expat_attr(attrs, "", "nil", "nil") == "true":
            return None
        xsi_type = expat_attr(attrs, _X_XSI_TYPE, "type", "type") or ""
        local = xsi_type.split(":", 1)[-1]

        if local == "boolean":
            word = text.strip().lower()
            if word not in _BOOL_WORDS:
                raise EncodingError(f"invalid xsd:boolean text: {text!r}")
            return _BOOL_WORDS[word]
        if local in ("int", "long", "short", "byte", "unsignedInt", "unsignedLong", "integer"):
            try:
                return int(text.strip())
            except ValueError as exc:
                raise EncodingError(f"invalid integer text: {text!r}") from exc
        if local in ("double", "float", "decimal"):
            try:
                return float(text.strip())
            except ValueError as exc:
                raise EncodingError(f"invalid float text: {text!r}") from exc
        if local == "string":
            return text
        if local == "base64Binary":
            dtype_attr = expat_attr(attrs, _X_H_DTYPE, "dtype", "dtype")
            if dtype_attr is not None:
                array = decode_array_base64(text.strip(), dtype_attr)
                shape = self._shape()
                if shape is not None:
                    array = array.reshape(shape)
                return array
            try:
                return base64.b64decode(text.strip().encode("ascii"), validate=True)
            except Exception as exc:
                raise EncodingError(f"invalid base64Binary: {exc}") from exc
        if local == "Array":
            items = [c for c in self.children if c[0] == "item"]
            dtype_attr = expat_attr(attrs, _X_H_DTYPE, "dtype", "dtype")
            if dtype_attr is not None:
                dtype = np.dtype(dtype_attr)
                if dtype.kind == "f":
                    array = np.asarray([float(c[3]) for c in items], dtype=dtype)
                else:
                    array = np.asarray([int(c[3]) for c in items], dtype=dtype)
                shape = self._shape()
                if shape is not None:
                    array = array.reshape(shape)
                return array
            return [c[2] for c in items]
        if local == "Struct":
            out: dict[str, Any] = {}
            for child_local, key, value, _text in self.children:
                if child_local != "entry":
                    continue
                if key is None:
                    raise XmlError("<entry> missing required attribute 'key'")
                out[key] = value
            return out
        if not xsi_type:
            return text
        raise EncodingError(f"unknown xsi:type {xsi_type!r}")


#: dtype object -> dtype.name; ``np.dtype.name`` is a computed property
#: expensive enough to show up on the per-call hot path
_DTYPE_NAMES: dict = {}


def _dtype_name(dtype) -> str:
    name = _DTYPE_NAMES.get(dtype)
    if name is None:
        name = _DTYPE_NAMES[dtype] = dtype.name
    return name


def _encode_ndarray_into(buf: bytearray, name: str, array: np.ndarray, array_mode: str, extra: str) -> int:
    array = np.asarray(array)
    shape = " ".join(str(d) for d in array.shape)
    dtype_name = _dtype_name(array.dtype)
    if array_mode == "base64":
        encoded = encode_array_base64_bytes(array.ravel(), dtype_name)
        open_tag = (
            f'<{name}{extra} xsi:type="xsd:base64Binary"'
            f' harness:dtype="{dtype_name}" harness:shape="{shape}"'
        )
        if encoded:
            buf += f"{open_tag}>".encode("utf-8")
            buf += encoded
            buf += f"</{name}>".encode("utf-8")
        else:
            buf += f"{open_tag}/>".encode("utf-8")
        return NSF_XSI | NSF_HARNESS
    flat = array.ravel()
    xsd_type = _xsd_scalar_type(array.dtype)
    open_tag = (
        f'<{name}{extra} xsi:type="soapenc:Array"'
        f' soapenc:arrayType="{xsd_type}[{flat.size}]"'
        f' harness:dtype="{dtype_name}" harness:shape="{shape}"'
    )
    if array.dtype.kind == "f":
        texts = [repr(float(v)) for v in flat]
    elif array.dtype.kind in "iu":
        texts = [str(int(v)) for v in flat]
    else:
        raise EncodingError(f"items mode cannot encode dtype {array.dtype}")
    if texts:
        item_open = f'<item xsi:type="{xsd_type}">'
        middle = f"</item>{item_open}".join(texts)
        buf += f"{open_tag}>{item_open}{middle}</item></{name}>".encode("utf-8")
    else:
        buf += f"{open_tag}/>".encode("utf-8")
    return NSF_XSI | NSF_SOAPENC | NSF_HARNESS
