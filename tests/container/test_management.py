"""Management facades: Figure 6's 'containers are full-fledged services'."""

import numpy as np
import pytest

from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.container.management import (
    MANAGEMENT_SERVICE_NAME,
    ContainerManagementService,
    DvmManagementService,
    expose_management,
)
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import ContainerError


@pytest.fixture
def managed():
    with LightweightContainer("mgmt", host="mgmthost") as container:
        container.deploy(MatMul, bindings=("local-instance",))
        handle = expose_management(container, bindings=("local-instance", "soap"))
        yield container, handle


class TestContainerManagement:
    def test_facade_deployed_like_any_component(self, managed):
        container, handle = managed
        assert handle.name == MANAGEMENT_SERVICE_NAME
        assert container.registry.lookup_name(MANAGEMENT_SERVICE_NAME)
        handle.document.validate()

    def test_lifecycle_hooks_not_exposed(self, managed):
        container, handle = managed
        port_type = handle.document.port_type(f"{MANAGEMENT_SERVICE_NAME}PortType")
        assert "on_start" not in port_type.operation_names()

    def test_describe_through_local_stub(self, managed):
        container, _ = managed
        stub = container.lookup(MANAGEMENT_SERVICE_NAME)
        info = stub.describe()
        assert info["uri"] == container.uri
        assert "MatMul" in info["components"]

    def test_remote_soap_management(self, managed):
        container, handle = managed
        factory = DynamicStubFactory(ClientContext(host="admin-console"))
        stub = factory.create(handle.document, prefer=("soap",))
        components = stub.listComponents()
        names = {c["name"] for c in components}
        assert {"MatMul", MANAGEMENT_SERVICE_NAME} <= names
        assert stub.queryRegistry("//portType[@name='MatMulPortType']") == ["MatMul"]
        stub.close()

    def test_remote_deploy_by_type(self, managed, rng):
        container, handle = managed
        factory = DynamicStubFactory(ClientContext(host="admin-console"))
        stub = factory.create(handle.document, prefer=("soap",))
        instance_id = stub.deployType(
            "repro.plugins.services:CounterService", "RemoteCounter", ["local-instance"]
        )
        assert instance_id.startswith("RemoteCounter#")
        # the new component works
        counter = container.lookup("RemoteCounter")
        assert counter.increment(2) == 2
        stub.close()

    def test_remote_lifecycle_control(self, managed):
        container, handle = managed
        factory = DynamicStubFactory(ClientContext(host="admin-console"))
        stub = factory.create(handle.document, prefer=("soap",))
        matmul = container.component_named("MatMul")
        assert stub.stopComponent(matmul.instance_id) is True
        assert matmul.state.value == "stopped"
        assert stub.startComponent(matmul.instance_id) is True
        assert matmul.state.value == "active"
        stub.close()

    def test_get_wsdl_round_trips(self, managed):
        container, handle = managed
        stub = container.lookup(MANAGEMENT_SERVICE_NAME)
        from repro.wsdl.io import document_from_string

        document = document_from_string(stub.getWsdl("MatMul"))
        assert document.name == "MatMul"

    def test_exposure_control_remotely(self, managed):
        container, handle = managed
        stub = container.lookup(MANAGEMENT_SERVICE_NAME)
        matmul = container.component_named("MatMul")
        stub.setExposure(matmul.instance_id, "private")
        assert stub.queryRegistry("//portType[@name='MatMulPortType']") == []

    def test_unattached_facade_raises(self):
        with pytest.raises(ContainerError):
            ContainerManagementService().describe()


class TestDvmManagement:
    def test_dvm_facade(self, rng):
        from repro.core.builder import HarnessDvm
        from repro.netsim import lan

        net = lan(3)
        with HarnessDvm("mgmt-dvm", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node2", MatMul)
            facade = DvmManagementService(harness.dvm, node="node0")
            handle = harness.kernel("node0").container.deploy(
                facade, name="DvmManagement", bindings=("local-instance", "soap")
            )
            factory = DynamicStubFactory(ClientContext(host="operator"))
            stub = factory.create(handle.document, prefer=("soap",))
            assert stub.members() == ["node0", "node1", "node2"]
            assert stub.componentIndex()["MatMul"] == "node2"
            located = stub.locate("MatMul")
            assert located["node"] == "node2"
            from repro.wsdl.io import document_from_string

            document_from_string(located["wsdl"]).validate()
            status = stub.status()
            assert status["dvm"] == "mgmt-dvm"
            stub.close()

    def test_unattached_dvm_facade_raises(self):
        with pytest.raises(ContainerError):
            DvmManagementService().status()
