"""Self-healing stubs: transparent endpoint re-resolution.

A plain :class:`~repro.bindings.stubs.TransportStub` is pinned to the
address it was built with; when the hosting node dies and the failover
manager revives the component elsewhere, that address is dead forever.
:class:`ResilientStub` closes the loop of the paper's "dynamic
reconfiguration" story: it holds a *resolver* (typically
``DistributedVirtualMachine.stub``) instead of an address, and on failures
that indicate endpoint death it discards the inner stub, re-resolves the
service through the DVM namespace, and re-issues the call — so a
pre-existing stub completes its next call without the caller ever seeing
the failure.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable

from repro.bindings.stubs import ServiceStub
from repro.util.clock import Clock, WallClock
from repro.util.errors import (
    CircuitOpenError,
    ServiceNotFoundError,
    TransportClosedError,
    TransportError,
)
from repro.util.events import EventBus

__all__ = ["ResilientStub", "redial_errors"]


def redial_errors() -> tuple[type[Exception], ...]:
    """Failures that mean "this endpoint is gone / unusable", as opposed to
    a fault *from* the service: worth re-resolving instead of giving up.
    All are idempotent-safe — the call never executed.  (Message *drops*
    are the inner stub's InvocationPolicy's business, not a reason to
    redial.)  ServiceNotFoundError covers the failover window — the
    component has been evicted from the namespace but not yet revived
    elsewhere.

    A function (not a module constant) because importing ``netsim.fabric``
    at module scope would close an import cycle through
    ``repro.transport.sim``.
    """
    from repro.netsim.fabric import HostDownError

    return (HostDownError, TransportClosedError, CircuitOpenError, ServiceNotFoundError)


class ResilientStub(ServiceStub):
    """A stub that survives the death of the endpoint behind it.

    ``resolver`` manufactures a fresh concrete stub from the current DVM
    namespace.  On a redial-worthy failure the inner stub is dropped and
    resolution is retried up to ``max_redials`` times with a jittered
    backoff — enough to ride out the detector→evict→failover window.

    Safe for concurrent callers (the multiplexed TCP transport invites
    sharing one stub across threads): the steady-state path reads the inner
    stub without locking, while drop/re-resolve is serialized under a lock
    and compares against the stub the caller actually failed on — a thread
    that lost the race reuses the replacement instead of closing it.
    """

    def __init__(
        self,
        resolver: Callable[[], ServiceStub],
        max_redials: int = 5,
        redial_backoff_s: float = 0.05,
        backoff_multiplier: float = 2.0,
        clock: Clock | None = None,
        events: EventBus | None = None,
        rng: random.Random | None = None,
    ):
        self._resolver = resolver
        self._max_redials = max_redials
        self._redial_backoff_s = redial_backoff_s
        self._backoff_multiplier = backoff_multiplier
        self._clock = clock or WallClock()
        self._events = events
        self._rng = rng if rng is not None else random.Random()
        self._swap_lock = threading.Lock()
        self._inner = resolver()
        super().__init__(self._inner.operations, self._inner.target)
        self.protocol = f"resilient+{self._inner.protocol}"

    @property
    def inner(self) -> ServiceStub:
        """The concrete stub currently in use (tests assert re-resolution)."""
        return self._inner

    def _invoke(self, operation: str, args: tuple) -> Any:
        redials = 0
        while True:
            inner = self._inner
            if inner is None:
                with self._swap_lock:
                    if self._inner is None:
                        self._inner = self._resolve(operation, redials)
                    inner = self._inner
            try:
                return inner._invoke(operation, args)
            except redial_errors() as exc:
                if redials >= self._max_redials:
                    raise
                self._drop_inner(inner)
                if self._events is not None:
                    self._events.publish(
                        "invoke.redial",
                        {
                            "target": self._target,
                            "operation": operation,
                            "redial": redials + 1,
                            "error": str(exc),
                        },
                        source=self._target,
                    )
                self._backoff(redials)
                redials += 1

    def _resolve(self, operation: str, redials: int) -> ServiceStub:
        while True:
            try:
                inner = self._resolver()
            except (ServiceNotFoundError, TransportError):
                if redials >= self._max_redials:
                    raise
                self._backoff(redials)
                redials += 1
                continue
            self.protocol = f"resilient+{inner.protocol}"
            return inner

    def _backoff(self, redials: int) -> None:
        delay = self._redial_backoff_s * (self._backoff_multiplier ** redials)
        delay += self._rng.uniform(0.0, 0.1 * delay)
        self._clock.sleep(delay)

    def _drop_inner(self, failed: ServiceStub | None = None) -> None:
        """Close and clear the inner stub.

        With *failed* given, only drop if it is still the current inner —
        a concurrent thread may already have swapped in a replacement, and
        closing that out from under its users would poison their calls.
        """
        with self._swap_lock:
            inner = self._inner
            if inner is None or (failed is not None and inner is not failed):
                return
            self._inner = None
        try:
            inner.close()
        except Exception:
            pass

    def close(self) -> None:
        self._drop_inner()
