"""Reactor-mode scenarios: real sockets, live admission control, typed shed.

These run actual :class:`~repro.transport.reactor.ReactorServer` listeners
under wall time, so assertions are about *shape* (typed faults, bounded
counts, fault-script effect) rather than exact latency values.
"""

import pytest

from repro.scenario import library
from repro.scenario.faults import apply_fault
from repro.scenario.manifest import parse_manifest
from repro.scenario.runner import run_scenario
from repro.util.errors import ScenarioError


def reactor_manifest(**overrides) -> dict:
    data = {
        "name": "reactor-t",
        "seed": 5,
        "wall": True,
        "duration_s": 1.0,
        "tick_s": 0.5,
        "topology": {"kind": "lan", "hosts": 1},
        "services": [
            {
                "name": "probe",
                "type": "repro.plugins.services:SaturationProbeService",
                "node": "node0",
            }
        ],
        "self_healing": {"enabled": False},
        "workload": {
            "service": "probe",
            "from_nodes": ["node0"],
            "mode": "reactor",
            "calls_per_tick": 8,
            "concurrency": 4,
            "server": {"workers": 2, "queue_max": 4},
            "ops": [{"op": "ping"}],
        },
        "checks": [{"check": "no_lost_calls"}, {"check": "typed_faults_only"}],
    }
    data.update(overrides)
    return data


class TestManifestValidation:
    def test_reactor_mode_requires_wall_clock(self):
        data = reactor_manifest()
        data.pop("wall")
        with pytest.raises(ScenarioError, match='set "wall": true'):
            parse_manifest(data)

    def test_server_knobs_require_reactor_mode(self):
        data = reactor_manifest()
        data["workload"]["mode"] = "rpc"
        with pytest.raises(ScenarioError, match="need mode='reactor'"):
            parse_manifest(data)

    def test_unknown_server_knob_rejected(self):
        data = reactor_manifest()
        data["workload"]["server"]["threads"] = 99
        with pytest.raises(ScenarioError, match="unknown keys"):
            parse_manifest(data)

    def test_reactor_mode_needs_ops(self):
        data = reactor_manifest()
        data["workload"]["ops"] = []
        with pytest.raises(ScenarioError, match="at least one op"):
            parse_manifest(data)


class TestReactorCapacityFault:
    def test_rejected_without_live_listener(self):
        class NoReactor:
            reactor_admission = None

        with pytest.raises(ScenarioError, match="requires workload mode 'reactor'"):
            apply_fault(NoReactor(), "reactor_capacity", {"queue_max": 0})

    def test_needs_at_least_one_knob(self):
        class WithAdmission:
            reactor_admission = object()

        with pytest.raises(ScenarioError, match="needs 'queue_max'"):
            apply_fault(WithAdmission(), "reactor_capacity", {})

    def test_reconfigures_live_controller(self):
        calls = {}

        class FakeAdmission:
            def configure(self, **knobs):
                calls.update(knobs)

        class Runtime:
            reactor_admission = FakeAdmission()

        apply_fault(Runtime(), "reactor_capacity", {"queue_max": 3, "per_conn_max": 2})
        assert calls == {"queue_max": 3, "per_conn_max": 2}


class TestReactorScenarioRuns:
    def test_uncontended_run_is_clean(self):
        result = run_scenario(parse_manifest(reactor_manifest()))
        assert result.passed, [c.detail for c in result.checks if not c.passed]
        assert result.workload["issued"] == 16
        assert result.workload["untyped_failures"] == 0

    def test_saturation_manifest_sheds_typed_busy(self):
        result = run_scenario(library.load_scenario("saturation-degradation"))
        assert result.passed, [c.detail for c in result.checks if not c.passed]
        # demand (32/tick) exceeds admission capacity (2 workers + 8 queue),
        # so the run must actually exercise the shed path, not sail through
        assert result.workload["errors"].get("ServerBusyError", 0) > 0
        assert set(result.workload["errors"]) == {"ServerBusyError"}

    def test_overload_manifest_squeezes_and_recovers(self):
        result = run_scenario(library.load_scenario("reactor-overload"))
        assert result.passed, [c.detail for c in result.checks if not c.passed]
        assert result.workload["errors"].get("ServerBusyError", 0) > 0


class TestWallManifestsInSoak:
    def test_run_all_skips_determinism_rerun_for_wall(self):
        results = library.run_all(["reactor-overload"], verify_determinism=True)
        assert results[0].passed, [
            c.detail for c in results[0].checks if not c.passed
        ]
        # no synthetic reproducible_events verdict: wall runs aren't re-run
        assert all(c.check != "reproducible_events" for c in results[0].checks)

    def test_verify_reproducible_refuses_wall_manifest(self):
        with pytest.raises(ScenarioError, match="wall clock"):
            library.verify_reproducible("saturation-degradation")
