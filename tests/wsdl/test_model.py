"""WSDL model: lookups, validation, abstract/concrete split."""

import pytest

from repro.util.errors import WsdlError
from repro.wsdl.extensions import (
    LocalBindingExt,
    LocalInstanceBindingExt,
    SoapBindingExt,
    XdrBindingExt,
)
from repro.wsdl.model import (
    WsdlBinding,
    WsdlBindingOperation,
    WsdlDocument,
    WsdlMessage,
    WsdlOperation,
    WsdlPart,
    WsdlPort,
    WsdlPortType,
    WsdlService,
)


def sample_doc() -> WsdlDocument:
    return WsdlDocument(
        name="Time",
        target_namespace="urn:time",
        messages=(
            WsdlMessage("getTimeRequest"),
            WsdlMessage("getTimeResponse", (WsdlPart("return", "xsd:string"),)),
        ),
        port_types=(
            WsdlPortType("TimePortType", (WsdlOperation("getTime", "getTimeRequest", "getTimeResponse"),)),
        ),
        bindings=(
            WsdlBinding("TimeSoapBinding", "TimePortType", (SoapBindingExt(),)),
            WsdlBinding("TimeLocalBinding", "TimePortType", (LocalBindingExt("x:Y"),)),
        ),
        services=(
            WsdlService("TimeService", (WsdlPort("p1", "TimeSoapBinding"),)),
        ),
    )


class TestLookups:
    def test_message(self):
        assert sample_doc().message("getTimeResponse").parts[0].type_name == "xsd:string"
        with pytest.raises(WsdlError):
            sample_doc().message("nope")

    def test_port_type_and_operation(self):
        pt = sample_doc().port_type("TimePortType")
        assert pt.operation("getTime").output_message == "getTimeResponse"
        assert pt.operation_names() == ("getTime",)
        with pytest.raises(WsdlError):
            pt.operation("nope")

    def test_binding_and_service(self):
        doc = sample_doc()
        assert doc.binding("TimeSoapBinding").port_type == "TimePortType"
        assert doc.service("TimeService").port("p1").binding == "TimeSoapBinding"
        with pytest.raises(WsdlError):
            doc.binding("nope")
        with pytest.raises(WsdlError):
            doc.service("TimeService").port("nope")

    def test_message_part_lookup(self):
        message = sample_doc().message("getTimeResponse")
        assert message.part("return").type_name == "xsd:string"
        with pytest.raises(WsdlError):
            message.part("nope")


class TestProtocolTags:
    def test_soap(self):
        assert WsdlBinding("b", "pt", (SoapBindingExt(),)).protocol == "soap"

    def test_xdr(self):
        assert WsdlBinding("b", "pt", (XdrBindingExt(),)).protocol == "xdr"

    def test_local(self):
        assert WsdlBinding("b", "pt", (LocalBindingExt("m:C"),)).protocol == "local"

    def test_local_instance_takes_precedence(self):
        binding = WsdlBinding(
            "b", "pt", (LocalBindingExt("m:C"), LocalInstanceBindingExt("m:C", "i1"))
        )
        assert binding.protocol == "local-instance"

    def test_unknown(self):
        assert WsdlBinding("b", "pt").protocol == "unknown"


class TestValidation:
    def test_valid_document_passes(self):
        sample_doc().validate()

    def test_binding_to_undefined_port_type(self):
        doc = sample_doc().with_binding(WsdlBinding("bad", "NoSuchPT"))
        with pytest.raises(WsdlError, match="undefined portType"):
            doc.validate()

    def test_port_to_undefined_binding(self):
        doc = sample_doc().with_service(
            WsdlService("S2", (WsdlPort("p", "NoSuchBinding"),))
        )
        with pytest.raises(WsdlError, match="undefined binding"):
            doc.validate()

    def test_operation_references_undefined_message(self):
        doc = WsdlDocument(
            name="X",
            target_namespace="urn:x",
            port_types=(WsdlPortType("PT", (WsdlOperation("op", "ghost"),)),),
        )
        with pytest.raises(WsdlError, match="undefined"):
            doc.validate()

    def test_binding_operation_not_in_port_type(self):
        doc = sample_doc()
        bad = WsdlBinding(
            "b2", "TimePortType", (SoapBindingExt(),),
            (WsdlBindingOperation("ghostOp"),),
        )
        with pytest.raises(WsdlError, match="ghostOp"):
            doc.with_binding(bad).validate()

    def test_duplicate_names_rejected(self):
        doc = sample_doc()
        with pytest.raises(WsdlError, match="duplicate"):
            doc.with_service(doc.services[0]).validate()

    def test_one_way_operation_allowed(self):
        doc = WsdlDocument(
            name="X",
            target_namespace="urn:x",
            messages=(WsdlMessage("m"),),
            port_types=(WsdlPortType("PT", (WsdlOperation("fire", "m", ""),)),),
        )
        doc.validate()


class TestAbstractConcreteSplit:
    def test_split_and_merge_round_trip(self):
        doc = sample_doc()
        abstract = doc.abstract_part()
        concrete = doc.concrete_part()
        assert abstract.bindings == () and abstract.services == ()
        assert concrete.messages == () and concrete.port_types == ()
        merged = abstract.merge(concrete)
        merged.validate()
        assert merged.binding("TimeSoapBinding")
        assert merged.message("getTimeRequest")

    def test_merge_validates(self):
        abstract = sample_doc().abstract_part()
        bad_concrete = WsdlDocument(
            name="Time", target_namespace="urn:time",
            bindings=(WsdlBinding("b", "Ghost"),),
        )
        with pytest.raises(WsdlError):
            abstract.merge(bad_concrete)

    def test_ports_by_protocol(self):
        doc = sample_doc()
        index = doc.ports_by_protocol()
        assert set(index) == {"soap"}
        service, port = index["soap"][0]
        assert service.name == "TimeService" and port.name == "p1"
