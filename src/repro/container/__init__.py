"""Component containers: local namespace, lifecycle, lookup, exposure."""

from repro.container.component import ComponentHandle, ComponentState
from repro.container.container import (
    ApplicationServerContainer,
    ComponentContainer,
    LightweightContainer,
)
from repro.container.management import (
    MANAGEMENT_SERVICE_NAME,
    ContainerManagementService,
    DvmManagementService,
    expose_management,
)
from repro.container.security import (
    ANONYMOUS,
    AccessPolicy,
    AuthenticationError,
    AuthorizationError,
    Principal,
    SecureDispatcher,
    TokenAuthority,
    with_credential,
)

__all__ = [
    "ComponentHandle",
    "ComponentState",
    "ApplicationServerContainer",
    "ComponentContainer",
    "LightweightContainer",
    "MANAGEMENT_SERVICE_NAME",
    "ContainerManagementService",
    "DvmManagementService",
    "expose_management",
    "ANONYMOUS",
    "AccessPolicy",
    "AuthenticationError",
    "AuthorizationError",
    "Principal",
    "SecureDispatcher",
    "TokenAuthority",
    "with_credential",
]
