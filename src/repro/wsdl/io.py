"""WSDL document ⇄ XML conversion.

Produces documents shaped like the paper's Figures 7/8 listings:
``<wsdl:definitions>`` containing messages, portTypes, bindings (with
extensibility elements) and services.  References between sections use the
``tns:`` prefix bound to the document's target namespace.
"""

from __future__ import annotations

from repro.util.errors import WsdlError
from repro.wsdl.extensions import ExtensibilityElement, extension_from_element
from repro.wsdl.model import (
    WsdlBinding,
    WsdlBindingOperation,
    WsdlDocument,
    WsdlMessage,
    WsdlOperation,
    WsdlPart,
    WsdlPort,
    WsdlPortType,
    WsdlService,
)
from repro.xmlkit import NS_WSDL, QName, XmlElement, parse, to_string

__all__ = ["document_to_element", "document_to_string", "document_from_element", "document_from_string"]

_DEFINITIONS = QName(NS_WSDL, "definitions")
_MESSAGE = QName(NS_WSDL, "message")
_PART = QName(NS_WSDL, "part")
_PORT_TYPE = QName(NS_WSDL, "portType")
_OPERATION = QName(NS_WSDL, "operation")
_INPUT = QName(NS_WSDL, "input")
_OUTPUT = QName(NS_WSDL, "output")
_BINDING = QName(NS_WSDL, "binding")
_SERVICE = QName(NS_WSDL, "service")
_PORT = QName(NS_WSDL, "port")
_DOCUMENTATION = QName(NS_WSDL, "documentation")


def _tns(name: str) -> str:
    return f"tns:{name}"


def _strip_prefix(ref: str) -> str:
    return ref.rsplit(":", 1)[-1]


def document_to_element(doc: WsdlDocument) -> XmlElement:
    """Render the document model as a ``<wsdl:definitions>`` tree."""
    root = XmlElement(
        _DEFINITIONS,
        {
            "name": doc.name,
            "targetNamespace": doc.target_namespace,
            "xmlns:tns": doc.target_namespace,
        },
    )
    if doc.documentation:
        root.element(_DOCUMENTATION, text=doc.documentation)
    for message in doc.messages:
        message_el = root.element(_MESSAGE, {"name": message.name})
        for part in message.parts:
            message_el.element(_PART, {"name": part.name, "type": part.type_name})
    for port_type in doc.port_types:
        pt_el = root.element(_PORT_TYPE, {"name": port_type.name})
        for op in port_type.operations:
            op_el = pt_el.element(_OPERATION, {"name": op.name})
            if op.input_message:
                op_el.element(_INPUT, {"message": _tns(op.input_message)})
            if op.output_message:
                op_el.element(_OUTPUT, {"message": _tns(op.output_message)})
    for binding in doc.bindings:
        b_el = root.element(
            _BINDING, {"name": binding.name, "type": _tns(binding.port_type)}
        )
        for ext in binding.extensions:
            b_el.append(ext.to_element())
        for bop in binding.operations:
            bop_el = b_el.element(_OPERATION, {"name": bop.name})
            for ext in bop.extensions:
                bop_el.append(ext.to_element())
    for service in doc.services:
        s_el = root.element(_SERVICE, {"name": service.name})
        if service.documentation:
            s_el.element(_DOCUMENTATION, text=service.documentation)
        for port in service.ports:
            p_el = s_el.element(
                _PORT, {"name": port.name, "binding": _tns(port.binding)}
            )
            for ext in port.extensions:
                p_el.append(ext.to_element())
    return root


def document_to_string(doc: WsdlDocument, indent: bool = True) -> str:
    """Serialize to XML text (what gets published to a registry)."""
    return to_string(document_to_element(doc), indent=indent)


def document_from_string(text: str | bytes) -> WsdlDocument:
    """Parse a WSDL XML document into the model."""
    return document_from_element(parse(text))


def document_from_element(root: XmlElement) -> WsdlDocument:
    """Convert a parsed ``<definitions>`` tree into the model (validated)."""
    if root.name.local != "definitions":
        raise WsdlError(f"not a WSDL document: <{root.name.local}>")
    name = root.get("name", "") or ""
    target_namespace = root.get("targetNamespace", "") or ""
    documentation = ""
    doc_el = root.find("documentation")
    if doc_el is not None:
        documentation = doc_el.text

    messages = []
    for m_el in root.find_all("message"):
        parts = tuple(
            WsdlPart(p.require("name"), p.get("type", "xsd:anyType") or "xsd:anyType")
            for p in m_el.find_all("part")
        )
        messages.append(WsdlMessage(m_el.require("name"), parts))

    port_types = []
    for pt_el in root.find_all("portType"):
        ops = []
        for op_el in pt_el.find_all("operation"):
            input_el = op_el.find("input")
            output_el = op_el.find("output")
            ops.append(
                WsdlOperation(
                    op_el.require("name"),
                    _strip_prefix(input_el.get("message", "") or "") if input_el is not None else "",
                    _strip_prefix(output_el.get("message", "") or "") if output_el is not None else "",
                )
            )
        port_types.append(WsdlPortType(pt_el.require("name"), tuple(ops)))

    bindings = []
    for b_el in root.find_all("binding"):
        extensions = _parse_extensions(b_el)
        bops = []
        for op_el in b_el.find_all("operation"):
            bops.append(
                WsdlBindingOperation(op_el.require("name"), _parse_extensions(op_el))
            )
        bindings.append(
            WsdlBinding(
                b_el.require("name"),
                _strip_prefix(b_el.require("type")),
                extensions,
                tuple(bops),
            )
        )

    services = []
    for s_el in root.find_all("service"):
        service_doc_el = s_el.find("documentation")
        ports = []
        for p_el in s_el.find_all("port"):
            ports.append(
                WsdlPort(
                    p_el.require("name"),
                    _strip_prefix(p_el.require("binding")),
                    _parse_extensions(p_el),
                )
            )
        services.append(
            WsdlService(
                s_el.require("name"),
                tuple(ports),
                service_doc_el.text if service_doc_el is not None else "",
            )
        )

    doc = WsdlDocument(
        name=name,
        target_namespace=target_namespace,
        messages=tuple(messages),
        port_types=tuple(port_types),
        bindings=tuple(bindings),
        services=tuple(services),
        documentation=documentation,
    )
    doc.validate()
    return doc


def _parse_extensions(parent: XmlElement) -> tuple[ExtensibilityElement, ...]:
    extensions = []
    for child in parent.children:
        ext = extension_from_element(child)
        if ext is not None:
            extensions.append(ext)
    return tuple(extensions)
