"""Heartbeat failure detector: accrual, eviction, observer failover."""

import pytest

from repro.dvm.failure import FailureDetector, NodeHealth
from repro.dvm.machine import DistributedVirtualMachine
from repro.dvm.state import FullSynchronyState
from repro.netsim import lan
from repro.plugins.services import CounterService
from repro.util.errors import DvmError, MembershipError


def make_dvm(n: int = 3, seed: int = 0):
    net = lan(n, seed=seed)
    dvm = DistributedVirtualMachine("fd", net, lambda network: FullSynchronyState(network))
    for i in range(n):
        dvm.add_node(f"node{i}")
    return net, dvm


class TestThresholds:
    def test_invalid_thresholds_rejected(self):
        _net, dvm = make_dvm(2)
        with pytest.raises(DvmError):
            FailureDetector(dvm, suspect_after=0)
        with pytest.raises(DvmError):
            FailureDetector(dvm, suspect_after=3, evict_after=2)
        dvm.close()


class TestDetection:
    def test_healthy_cluster_never_suspects(self):
        _net, dvm = make_dvm(3)
        detector = FailureDetector(dvm, observer="node0")
        for _ in range(10):
            assert detector.tick() == []
        assert all(h is NodeHealth.ALIVE for h in detector.statuses().values())
        dvm.close()

    def test_crash_suspect_then_evict(self):
        net, dvm = make_dvm(3)
        events = []
        dvm.events.subscribe("dvm.member", lambda e: events.append(e.topic))
        detector = FailureDetector(dvm, observer="node0", suspect_after=2, evict_after=3)
        net.host("node2").crash()
        assert detector.tick() == []  # miss 1: still alive
        assert detector.health("node2") is NodeHealth.ALIVE
        assert detector.tick() == []  # miss 2: suspected
        assert detector.health("node2") is NodeHealth.SUSPECTED
        assert "dvm.member.suspected" in events
        assert detector.tick() == ["node2"]  # miss 3: dead + evicted
        assert detector.health("node2") is NodeHealth.DEAD
        assert "dvm.member.dead" in events
        assert dvm.nodes() == ["node0", "node1"]
        dvm.close()

    def test_suspected_member_rehabilitates(self):
        net, dvm = make_dvm(3)
        events = []
        dvm.events.subscribe("dvm.member.recovered", lambda e: events.append(e.payload))
        detector = FailureDetector(dvm, observer="node0", suspect_after=1, evict_after=5)
        net.host("node1").crash()
        detector.tick()
        detector.tick()
        assert detector.health("node1") is NodeHealth.SUSPECTED
        net.host("node1").restart()
        detector.tick()
        assert detector.health("node1") is NodeHealth.ALIVE
        assert events == ["node1"]
        # the miss counter reset: surviving one more outage takes full accrual
        net.host("node1").crash()
        detector.tick()
        assert detector.health("node1") is NodeHealth.SUSPECTED  # 1 fresh miss
        dvm.close()

    def test_eviction_deregisters_components(self):
        net, dvm = make_dvm(3)
        lost = []
        dvm.events.subscribe("dvm.component.lost", lambda e: lost.append(e.payload))
        dvm.deploy("node2", CounterService, name="counter", bindings=("local-instance", "sim"))
        detector = FailureDetector(dvm, observer="node0", suspect_after=1, evict_after=1)
        net.host("node2").crash()
        assert detector.tick() == ["node2"]
        assert lost == [{"service": "counter", "node": "node2"}]
        assert "counter" not in dvm.component_index("node0")
        dvm.close()

    def test_observer_death_falls_over_to_next_member(self):
        net, dvm = make_dvm(3)
        detector = FailureDetector(dvm, observer="node0", suspect_after=1, evict_after=2)
        net.host("node0").crash()
        evicted = []
        for _ in range(3):
            evicted += detector.tick()
        # node1 took over observing and expelled the dead observer
        assert evicted == ["node0"]
        assert dvm.nodes() == ["node1", "node2"]
        dvm.close()

    def test_lossy_link_absorbed_by_accrual(self):
        # seeded fabric: deterministic drop pattern.  10% per-leg drops shake
        # the heartbeat but never produce evict_after consecutive misses.
        net, dvm = make_dvm(3, seed=5)
        net.set_default_faults(drop_rate=0.10)
        detector = FailureDetector(dvm, observer="node0", suspect_after=2, evict_after=5)
        evicted = []
        for _ in range(60):
            evicted += detector.tick()
        assert evicted == []
        assert dvm.nodes() == ["node0", "node1", "node2"]
        dvm.close()


class TestEvictNode:
    def test_witness_must_be_surviving_member(self):
        _net, dvm = make_dvm(3)
        with pytest.raises(MembershipError):
            dvm.evict_node("node1", by="node1")
        with pytest.raises(MembershipError):
            dvm.evict_node("node1", by="ghost")
        with pytest.raises(MembershipError):
            dvm.evict_node("ghost", by="node0")
        dvm.close()

    def test_evicted_member_disappears_from_membership_views(self):
        net, dvm = make_dvm(3)
        net.host("node2").crash()
        dvm.evict_node("node2", by="node0")
        assert dvm.members_seen_by("node0") == ["node0", "node1"]
        assert dvm.members_seen_by("node1") == ["node0", "node1"]
        dvm.close()


class TestWallClockMode:
    def test_start_stop_threads(self):
        net, dvm = make_dvm(2)
        detector = FailureDetector(dvm, observer="node0", interval_s=0.01)
        with detector:
            assert detector._thread is not None
        assert detector._thread is None
        dvm.close()


class TestHeartbeatJitter:
    def test_invalid_jitter_rejected(self):
        _net, dvm = make_dvm(2)
        with pytest.raises(DvmError):
            FailureDetector(dvm, jitter=-0.1)
        with pytest.raises(DvmError):
            FailureDetector(dvm, jitter=1.0)
        dvm.close()

    def test_intervals_stay_within_jitter_band(self):
        _net, dvm = make_dvm(2)
        detector = FailureDetector(dvm, interval_s=0.5, jitter=0.1, seed=99)
        intervals = [detector.next_interval() for _ in range(200)]
        assert all(0.45 <= i <= 0.55 for i in intervals)
        # jitter actually spreads the schedule — not a constant stream
        assert len({round(i, 9) for i in intervals}) > 100
        dvm.close()

    def test_same_seed_same_schedule(self):
        _net, dvm = make_dvm(2)
        a = FailureDetector(dvm, interval_s=0.5, jitter=0.1, seed=42)
        b = FailureDetector(dvm, interval_s=0.5, jitter=0.1, seed=42)
        assert [a.next_interval() for _ in range(50)] == [
            b.next_interval() for _ in range(50)
        ]
        dvm.close()

    def test_different_seeds_diverge(self):
        _net, dvm = make_dvm(2)
        a = FailureDetector(dvm, interval_s=0.5, jitter=0.1, seed=1)
        b = FailureDetector(dvm, interval_s=0.5, jitter=0.1, seed=2)
        assert [a.next_interval() for _ in range(20)] != [
            b.next_interval() for _ in range(20)
        ]
        dvm.close()

    def test_zero_jitter_is_exact(self):
        _net, dvm = make_dvm(2)
        detector = FailureDetector(dvm, interval_s=0.25, jitter=0.0)
        assert [detector.next_interval() for _ in range(10)] == [0.25] * 10
        dvm.close()


class TestIndirectProbing:
    """SWIM ping-req: a broken observer path alone must not evict anybody."""

    def test_asymmetric_path_is_refuted_by_proxies(self):
        net, dvm = make_dvm(5)
        detector = FailureDetector(
            dvm, observer="node0", suspect_after=2, evict_after=3, indirect_probes=2, seed=4
        )
        # the observer cannot reach node1 at all, but every proxy can
        net.set_link_faults("node0", "node1", drop_rate=1.0, symmetric=True)
        for _ in range(10):
            assert detector.tick() == []
        assert detector.health("node1") is NodeHealth.ALIVE
        assert dvm.nodes() == [f"node{i}" for i in range(5)]
        dvm.close()

    def test_truly_dead_member_still_evicted_through_nacks(self):
        net, dvm = make_dvm(5)
        detector = FailureDetector(
            dvm, observer="node0", suspect_after=2, evict_after=3, indirect_probes=2, seed=4
        )
        net.host("node1").crash()
        dead = []
        for _ in range(3):
            dead += detector.tick()
        assert dead == ["node1"]
        assert detector.health("node1") is NodeHealth.DEAD
        dvm.close()

    def test_probe_knobs_validated(self):
        _net, dvm = make_dvm(2)
        with pytest.raises(DvmError):
            FailureDetector(dvm, indirect_probes=-1)
        with pytest.raises(DvmError):
            FailureDetector(dvm, sample=0)
        with pytest.raises(DvmError):
            FailureDetector(dvm, coalesce_after=0)
        dvm.close()


class TestCoalescing:
    def test_small_cohort_keeps_per_member_events(self):
        net, dvm = make_dvm(3)
        suspected = []
        dvm.events.subscribe("dvm.member.suspected", lambda e: suspected.append(e.payload))
        detector = FailureDetector(
            dvm, observer="node0", suspect_after=1, evict_after=3, coalesce_after=8
        )
        net.host("node2").crash()
        detector.tick()
        assert suspected == [{"node": "node2", "misses": 1}]
        dvm.close()

    def test_fleet_suspicions_and_evictions_coalesce(self):
        from repro.dvm.state import DecentralizedState
        from repro.netsim import lan as _lan

        n = 1000
        net = _lan(n, seed=6, detail_stats=False)
        dvm = DistributedVirtualMachine(
            "fleet", net, lambda network: DecentralizedState(network)
        )
        for i in range(n):
            dvm.add_node(f"node{i}")
        suspected, dead_events = [], []
        dvm.events.subscribe("dvm.member.suspected", lambda e: suspected.append(e.payload))
        dvm.events.subscribe("dvm.member.dead", lambda e: dead_events.append(e.payload))
        detector = FailureDetector(
            dvm, observer="node0", suspect_after=1, evict_after=2, coalesce_after=8
        )
        for i in range(1, n):
            net.host(f"node{i}").crash()
        assert detector.tick() == []
        # 999 simultaneous suspicions: exactly one batched publication
        assert len(suspected) == 1
        assert suspected[0]["coalesced"] is True
        assert suspected[0]["count"] == n - 1
        dead = detector.tick()
        assert len(dead) == n - 1
        assert len(dead_events) == 1
        assert dvm.nodes() == ["node0"]
        dvm.close()


class TestSampling:
    def test_sample_covers_every_member_across_the_cycle(self):
        _net, dvm = make_dvm(10)
        detector = FailureDetector(dvm, observer="node0", sample=3, seed=11)
        seen = set()
        for _ in range(3):
            picked = detector._probe_targets("node0")
            assert len(picked) == 3
            assert len(set(picked)) == 3
            seen.update(picked)
        assert seen == {f"node{i}" for i in range(1, 10)}
        dvm.close()

    def test_no_sample_probes_everyone(self):
        _net, dvm = make_dvm(6)
        detector = FailureDetector(dvm, observer="node0")
        assert set(detector._probe_targets("node0")) == {f"node{i}" for i in range(1, 6)}
        dvm.close()

    def test_sampled_detector_still_evicts(self):
        net, dvm = make_dvm(6)
        detector = FailureDetector(
            dvm, observer="node0", suspect_after=1, evict_after=2, sample=2, seed=3
        )
        net.host("node4").crash()
        dead = []
        for _ in range(12):  # sample=2 needs a few cycles to accrue misses
            dead += detector.tick()
        assert dead == ["node4"]
        dvm.close()
