"""Transport abstractions.

A transport moves opaque request/response byte payloads tagged with a
content type; which codec interprets them is the binding layer's business.
This separation mirrors the paper's layering: WSDL names the *access
mechanism* (binding + address), while the transport is just the pipe.

Three implementations ship: in-process (:mod:`repro.transport.inproc`),
framed TCP (:mod:`repro.transport.tcp` — the XDR binding's "direct socket
level connections"), and HTTP (:mod:`repro.transport.http` — the SOAP
binding's conventional carrier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

__all__ = ["TransportMessage", "RequestHandler", "ClientTransport", "Listener", "parse_url"]


@dataclass(frozen=True)
class TransportMessage:
    """An opaque payload plus the content type identifying its codec.

    ``payload`` is any bytes-like object: the zero-copy wire path hands
    codecs ``memoryview`` slices of receive buffers and ships encoder
    buffers without an intermediate ``bytes()`` copy.  Use
    :meth:`payload_bytes` at the rare boundary that needs real ``bytes``.
    """

    content_type: str
    payload: bytes | bytearray | memoryview

    def payload_bytes(self) -> bytes:
        """The payload as ``bytes`` (copies only when it isn't one already)."""
        payload = self.payload
        return payload if isinstance(payload, bytes) else bytes(payload)


#: Server-side callback: request message in, response message out.
RequestHandler = Callable[[TransportMessage], TransportMessage]


class ClientTransport(Protocol):
    """Client side of a request/response transport."""

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        """Send *message*, block for the response."""
        ...

    def close(self) -> None:
        """Release the connection."""
        ...


class Listener(Protocol):
    """Server side: a bound endpoint dispatching to a handler."""

    @property
    def url(self) -> str:
        """The dialable address of this endpoint."""
        ...

    def close(self) -> None:
        """Stop accepting requests."""
        ...


def parse_url(url: str) -> tuple[str, str]:
    """Split ``scheme://rest`` and validate the scheme is non-empty."""
    scheme, sep, rest = url.partition("://")
    if not sep or not scheme:
        raise ValueError(f"malformed transport url: {url!r}")
    return scheme, rest
