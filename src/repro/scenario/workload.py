"""Deterministic workload driver for scenario runs.

Fires a declared mix of operations at a deployed service, records every
call's outcome, and keeps the run's two clocks in sync: each call advances
the scenario's :class:`~repro.util.clock.VirtualClock` by the simulated
network time the call consumed, so invocation-policy deadlines, breaker
cooldowns, and the audit trail's timestamps all live on one timeline.

Outcome accounting distinguishes the cases the invariant checkers care
about:

* **ok** — the call returned a result;
* **typed failure** — the call raised a :class:`~repro.util.errors.HarnessError`
  subclass (a *graceful* reject: timeout, open breaker, host down, dropped
  message, service not found);
* **untyped failure** — anything else escaped, which the
  ``typed_faults_only`` checker treats as a defect.

Every call resolves — the simulated fabric is synchronous — so "no hang"
is expressed as a bound on per-call simulated latency (``max_call_s``).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.bindings.policy import InvocationPolicy
from repro.bindings.resilient import ResilientStub
from repro.scenario.manifest import OpSpec, WorkloadSpec
from repro.util.errors import HarnessError

__all__ = [
    "CallRecord",
    "WorkloadStats",
    "WorkloadDriver",
    "ReactorWorkloadDriver",
    "MailboxWorkloadDriver",
    "LOOKUP_OP",
    "SHARD_LOOKUP_OP",
]

#: special op name: perform a DVM namespace lookup instead of an invocation
LOOKUP_OP = "__lookup__"

#: special op name: by-name query against the sharded registry
SHARD_LOOKUP_OP = "__shard_lookup__"


@dataclass(frozen=True)
class CallRecord:
    """One workload call: when it started, how it ended, what it cost."""

    op: str
    t: float  # simulated start time
    ok: bool
    error: str | None  # exception class name for failures
    typed: bool  # failure was a HarnessError subclass (ok calls: True)
    latency_s: float  # simulated seconds the call consumed


class WorkloadStats:
    """Aggregated view over the run's :class:`CallRecord` list."""

    def __init__(self):
        self.records: list[CallRecord] = []

    def add(self, record: CallRecord) -> None:
        self.records.append(record)

    @property
    def issued(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def failed(self) -> int:
        return self.issued - self.ok

    @property
    def success_rate(self) -> float:
        return self.ok / self.issued if self.issued else 1.0

    def error_counts(self) -> dict[str, int]:
        """Failure histogram by exception class name (sorted keys)."""
        counts: dict[str, int] = {}
        for r in self.records:
            if not r.ok and r.error:
                counts[r.error] = counts.get(r.error, 0) + 1
        return dict(sorted(counts.items()))

    def untyped_failures(self) -> list[CallRecord]:
        return [r for r in self.records if not r.ok and not r.typed]

    def latencies(self, ok_only: bool = True) -> list[float]:
        return [r.latency_s for r in self.records if r.ok or not ok_only]

    def percentile(self, p: float, ok_only: bool = True) -> float:
        """Simulated-latency percentile (0 when nothing qualifies)."""
        values = sorted(self.latencies(ok_only=ok_only))
        if not values:
            return 0.0
        index = min(len(values) - 1, max(0, round(p / 100.0 * (len(values) - 1))))
        return values[index]

    def max_latency(self) -> float:
        return max((r.latency_s for r in self.records), default=0.0)

    def summary(self) -> dict:
        """JSON-ready digest for ``result.json``."""
        return {
            "issued": self.issued,
            "ok": self.ok,
            "failed": self.failed,
            "success_rate": round(self.success_rate, 6),
            "errors": self.error_counts(),
            "untyped_failures": len(self.untyped_failures()),
            "latency_s": {
                "p50": round(self.percentile(50), 9),
                "p95": round(self.percentile(95), 9),
                "p99": round(self.percentile(99), 9),
                "max": round(self.max_latency(), 9),
            },
        }


class WorkloadDriver:
    """Issues the manifest's call mix, one tick at a time.

    Stubs are built lazily and cached per caller node; ``resilient=True``
    wraps each in a :class:`~repro.bindings.resilient.ResilientStub` wired
    to the scenario clock and a seeded RNG so redial backoff is simulated
    time, not wall sleeps.  Op choice is a seeded weighted draw — the same
    seed replays the same call sequence.
    """

    def __init__(self, runtime, spec: WorkloadSpec, rng: random.Random):
        self._runtime = runtime
        self._spec = spec
        self._rng = rng
        self._stubs: dict[str, object] = {}
        self._policy = InvocationPolicy(**spec.policy) if spec.policy else None
        self._cumulative: list[tuple[float, OpSpec]] = []
        total = 0.0
        for op in spec.ops:
            total += op.weight
            self._cumulative.append((total, op))
        self._total_weight = total
        self.stats = WorkloadStats()
        self._call_index = 0
        self._shards = None
        if spec.mode == "shard_lookup":
            # place every manifest service on its consistent-hash shard; the
            # workload then point-queries by name while faults take owners down
            from repro.bindings.stubs import load_type
            from repro.registry.sharded import ShardedRegistry
            from repro.tools.wsdlgen import generate_wsdl

            self._shards = ShardedRegistry(
                runtime.network, replication=spec.replication
            )
            for service in runtime.manifest.services:
                self._shards.register(
                    service.node,
                    generate_wsdl(load_type(service.type), service_name=service.name),
                )

    # -- stub management ----------------------------------------------------

    def _stub(self, node: str):
        stub = self._stubs.get(node)
        if stub is None:
            harness = self._runtime.harness
            if self._spec.resilient:
                service = self._spec.service
                # a tight redial budget keeps a failed call from burning
                # whole seconds of simulated time on backoff sleeps, which
                # would smear the scenario timeline past its tick schedule
                stub = ResilientStub(
                    lambda n=node: harness.dvm.stub(n, service, policy=self._policy),
                    max_redials=2,
                    redial_backoff_s=0.02,
                    clock=self._runtime.clock,
                    events=harness.events,
                    rng=random.Random(self._rng.getrandbits(32)),
                )
            else:
                stub = harness.stub(node, self._spec.service, policy=self._policy)
            self._stubs[node] = stub
        return stub

    def _drop_stub(self, node: str) -> None:
        stub = self._stubs.pop(node, None)
        if stub is not None:
            try:
                stub.close()
            except Exception:
                pass

    def _choose_op(self) -> OpSpec:
        point = self._rng.random() * self._total_weight
        for bound, op in self._cumulative:
            if point < bound:
                return op
        return self._cumulative[-1][1]

    # -- one tick of traffic ------------------------------------------------

    def step(self) -> dict:
        """Issue ``calls_per_tick`` calls; returns the tick's summary."""
        issued = ok = 0
        errors: dict[str, int] = {}
        for _ in range(self._spec.calls_per_tick):
            node = self._spec.from_nodes[self._call_index % len(self._spec.from_nodes)]
            self._call_index += 1
            record = self._one_call(node)
            self.stats.add(record)
            issued += 1
            if record.ok:
                ok += 1
            elif record.error:
                errors[record.error] = errors.get(record.error, 0) + 1
        return {"issued": issued, "ok": ok, "errors": dict(sorted(errors.items()))}

    def _one_call(self, node: str) -> CallRecord:
        runtime = self._runtime
        start = runtime.clock.now()
        sim_before = runtime.network.simulated_time
        op_name = {"lookup": LOOKUP_OP, "shard_lookup": SHARD_LOOKUP_OP}.get(
            self._spec.mode
        )
        error: str | None = None
        typed = True
        ok = False
        try:
            if self._spec.mode == "lookup":
                runtime.harness.lookup(node, self._spec.service)
            elif self._spec.mode == "shard_lookup":
                self._shards.lookup_name(node, self._spec.service)
            else:
                op = self._choose_op()
                op_name = op.op
                stub = self._stub(node)
                stub.invoke(op.op, *op.args)
            ok = True
        except HarnessError as exc:
            error = type(exc).__name__
        except Exception as exc:  # untyped escape: a defect the checkers flag
            error = type(exc).__name__
            typed = False
        # keep the scenario timeline honest: the call's simulated network
        # cost becomes clock time, so policies and the audit trail agree
        runtime.credit(runtime.network.simulated_time - sim_before)
        latency = runtime.clock.now() - start
        return CallRecord(
            op=op_name or "?",
            t=round(start, 9),
            ok=ok,
            error=error,
            typed=typed,
            latency_s=round(latency, 9),
        )

    def close(self) -> None:
        for node in list(self._stubs):
            self._drop_stub(node)


class ReactorWorkloadDriver:
    """``mode="reactor"``: real sockets against a real reactor listener.

    Unlike :class:`WorkloadDriver` this bypasses the simulated fabric: the
    manifest's services are instantiated into a fresh dispatcher behind a
    :class:`~repro.transport.tcp.TcpListener` running the event-loop core
    with the manifest's ``server`` capacity knobs, and every tick fires
    ``calls_per_tick`` blocking calls from up to ``concurrency`` caller
    threads over one multiplexed transport.  Shed requests surface as
    :class:`~repro.util.errors.ServerBusyError` — a *typed* failure, so
    the stock checkers (``typed_faults_only``, ``slo_burn_under``,
    ``p99_under``) evaluate real admission-control behaviour.

    The listener's admission controller is published as
    ``runtime.reactor_admission`` so the ``reactor_capacity`` fault action
    can squeeze or widen capacity mid-run.  Wall clock only: latencies are
    real, so records — and the events they feed — are not byte-identical
    across runs (the manifest must say ``wall: true``).
    """

    def __init__(self, runtime, spec: WorkloadSpec, rng: random.Random):
        from repro.bindings.dispatcher import ObjectDispatcher
        from repro.bindings.server import BindingServer
        from repro.bindings.stubs import TransportStub, load_type
        from repro.encoding.registry import default_registry
        from repro.transport.tcp import TcpTransport

        self._runtime = runtime
        self._spec = spec
        self._rng = rng
        dispatcher = ObjectDispatcher()
        for service in runtime.manifest.services:
            dispatcher.register(service.name, load_type(service.type)())
        self._server = BindingServer(dispatcher)
        self._listener = self._server.expose_xdr_tcp(**dict(spec.server or {}))
        runtime.reactor_admission = self._listener.admission
        operations = tuple(dict.fromkeys(op.op for op in spec.ops))
        self._stub = TransportStub(
            operations,
            spec.service,
            default_registry.get("application/x-xdr"),
            TcpTransport(self._listener.url, pool_size=1),
            "xdr",
            timeout=spec.call_timeout_s,
        )
        self._cumulative: list[tuple[float, OpSpec]] = []
        total = 0.0
        for op in spec.ops:
            total += op.weight
            self._cumulative.append((total, op))
        self._total_weight = total
        self.stats = WorkloadStats()

    def _choose_op(self) -> OpSpec:
        point = self._rng.random() * self._total_weight
        for bound, op in self._cumulative:
            if point < bound:
                return op
        return self._cumulative[-1][1]

    def step(self) -> dict:
        """Fire this tick's burst concurrently; returns the tick summary."""
        clock = self._runtime.clock
        # ops are drawn up front from the seeded RNG (the *sequence* stays
        # deterministic; only outcomes and latencies are wall-dependent)
        ops = [self._choose_op() for _ in range(self._spec.calls_per_tick)]
        records: list[CallRecord | None] = [None] * len(ops)
        gate = threading.Semaphore(self._spec.concurrency)

        def call(index: int, op: OpSpec) -> None:
            start = clock.now()
            error: str | None = None
            typed = True
            ok = False
            try:
                self._stub.invoke(op.op, *op.args)
                ok = True
            except HarnessError as exc:
                error = type(exc).__name__
            except Exception as exc:  # untyped escape: a defect checkers flag
                error = type(exc).__name__
                typed = False
            finally:
                gate.release()
            records[index] = CallRecord(
                op=op.op,
                t=round(start, 9),
                ok=ok,
                error=error,
                typed=typed,
                latency_s=round(clock.now() - start, 9),
            )

        threads = []
        for index, op in enumerate(ops):
            gate.acquire()
            thread = threading.Thread(target=call, args=(index, op), daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        issued = ok = 0
        errors: dict[str, int] = {}
        for record in records:
            assert record is not None  # every thread joined
            self.stats.add(record)
            issued += 1
            if record.ok:
                ok += 1
            elif record.error:
                errors[record.error] = errors.get(record.error, 0) + 1
        return {"issued": issued, "ok": ok, "errors": dict(sorted(errors.items()))}

    def close(self) -> None:
        try:
            self._stub.close()
        except Exception:
            pass
        self._server.close()


class MailboxWorkloadDriver:
    """``mode="mailbox"``: drive a messaging broker over the simulated fabric.

    A :class:`~repro.messaging.bindings.SimMailboxHost` serves the mailbox
    named by ``workload.service`` on ``broker_node``; ``from_nodes`` publish
    ``calls_per_tick`` messages per tick and each ``consumers`` node drains
    up to ``consume_per_tick``, acking ``ack_delay_ticks`` ticks later —
    the in-flight window a ``kill`` fault exploits to leave unacked
    deliveries behind.  Consumer liveness is lease-based on the *scenario*
    clock (the broker is built on ``runtime.clock``, not network transfer
    time): a killed consumer stops renewing, the sweep requeues its unacked
    messages, and a survivor sees them flagged ``redelivered``.

    Both publishes and successful consumes become :class:`CallRecord`\\ s
    (ops ``publish``/``consume``); a full ``reject`` mailbox surfaces as a
    typed ``MailboxFullError`` publish failure — real back-pressure, not a
    latency proxy.  The driver keeps a message **audit** on the runtime
    (``runtime.mailbox_audit``): every accepted publish's seq, every acked
    seq, and a live broker-stats closure — what the ``no_lost_messages``
    and ``queue_depth_under`` checkers reconcile against the event log's
    ``mbox.dropped`` records.  :meth:`finish` runs after the last tick and
    before the checks: it settles pending acks and drains the remaining
    backlog so "still queued" never masquerades as "lost".
    """

    def __init__(self, runtime, spec: WorkloadSpec, rng: random.Random):
        from repro.messaging.bindings import SimMailboxClient, SimMailboxHost
        from repro.messaging.broker import MessageBroker

        self._runtime = runtime
        self._spec = spec
        self._rng = rng
        self.stats = WorkloadStats()
        self._mailbox = spec.service
        # lease deadlines must live on the scenario timeline (ticks), not on
        # accumulated network-transfer seconds — hence an explicit broker on
        # the scenario clock rather than SimMailboxHost's default _NetClock
        broker = MessageBroker(
            clock=runtime.clock, events=runtime.events, node=spec.broker_node
        )
        self._broker = broker
        self._host = SimMailboxHost(runtime.network, spec.broker_node, broker=broker)
        self._clients: dict[str, SimMailboxClient] = {}
        cfg = dict(spec.mailbox or {})
        self._client(spec.from_nodes[0]).open(
            self._mailbox,
            mode=cfg.get("mode", "first-reader"),
            capacity=int(cfg.get("capacity", 64)),
            overflow=cfg.get("overflow", "reject"),
        )
        self._subs = {}
        for node in spec.consumers:
            self._subs[node] = self._client(node).subscribe(
                self._mailbox, subscriber=node, lease_s=spec.lease_s
            )
        # node -> [(ack-due tick, delivery), ...]
        self._pending_acks: dict[str, list] = {node: [] for node in spec.consumers}
        self._tick = 0
        self._call_index = 0
        self._n_published = 0
        self.audit = {
            "mailbox": self._mailbox,
            "published": set(),
            "acked": set(),
            "stats": lambda: broker.stats(self._mailbox).as_dict(),
        }
        runtime.mailbox_audit = self.audit

    def _client(self, node: str):
        from repro.messaging.bindings import SimMailboxClient

        client = self._clients.get(node)
        if client is None:
            client = SimMailboxClient(
                self._runtime.network, node, self._spec.broker_node,
                clock=self._runtime.clock,
            )
            self._clients[node] = client
        return client

    def _alive(self, node: str) -> bool:
        return self._runtime.network.host(node).up

    def step(self) -> dict:
        self._tick += 1
        issued = ok = 0
        errors: dict[str, int] = {}

        def record(rec: CallRecord) -> None:
            nonlocal issued, ok
            self.stats.add(rec)
            issued += 1
            if rec.ok:
                ok += 1
            elif rec.error:
                errors[rec.error] = errors.get(rec.error, 0) + 1

        for _ in range(self._spec.calls_per_tick):
            node = self._spec.from_nodes[
                self._call_index % len(self._spec.from_nodes)
            ]
            self._call_index += 1
            record(self._publish_one(node))
        self._flush_due_acks()
        for node, sub in self._subs.items():
            if not self._alive(node):
                # a dead consumer never acks: its held deliveries stay
                # unacked broker-side until the lease sweep requeues them
                self._pending_acks[node].clear()
                continue
            for _ in range(self._spec.consume_per_tick):
                rec = self._consume_one(node, sub)
                if rec is None:
                    break
                record(rec)
        return {"issued": issued, "ok": ok, "errors": dict(sorted(errors.items()))}

    def _publish_one(self, node: str) -> CallRecord:
        runtime = self._runtime
        start = runtime.clock.now()
        sim_before = runtime.network.simulated_time
        error: str | None = None
        typed = True
        ok = False
        try:
            seq = self._client(node).publish(
                self._mailbox, {"n": self._n_published}, publisher=node
            )
            self.audit["published"].add(seq)
            self._n_published += 1
            ok = True
        except HarnessError as exc:
            error = type(exc).__name__
        except Exception as exc:  # untyped escape: a defect the checkers flag
            error = type(exc).__name__
            typed = False
        runtime.credit(runtime.network.simulated_time - sim_before)
        return CallRecord(
            op="publish", t=round(start, 9), ok=ok, error=error, typed=typed,
            latency_s=round(runtime.clock.now() - start, 9),
        )

    def _consume_one(self, node: str, sub) -> CallRecord | None:
        runtime = self._runtime
        start = runtime.clock.now()
        sim_before = runtime.network.simulated_time
        error: str | None = None
        typed = True
        ok = False
        empty = False
        try:
            delivery = sub.try_receive()
            if delivery is None:
                empty = True
            else:
                if self._spec.ack_delay_ticks <= 0:
                    sub.ack(delivery)
                    self.audit["acked"].add(delivery.seq)
                else:
                    self._pending_acks[node].append(
                        (self._tick + self._spec.ack_delay_ticks, delivery)
                    )
                ok = True
        except HarnessError as exc:
            error = type(exc).__name__
        except Exception as exc:
            error = type(exc).__name__
            typed = False
        runtime.credit(runtime.network.simulated_time - sim_before)
        if empty:
            return None
        return CallRecord(
            op="consume", t=round(start, 9), ok=ok, error=error, typed=typed,
            latency_s=round(runtime.clock.now() - start, 9),
        )

    def _flush_due_acks(self, everything: bool = False) -> None:
        for node, pending in self._pending_acks.items():
            if not self._alive(node):
                pending.clear()
                continue
            keep = []
            for due, delivery in pending:
                if not everything and due > self._tick:
                    keep.append((due, delivery))
                    continue
                sim_before = self._runtime.network.simulated_time
                try:
                    self._subs[node].ack(delivery)
                    self.audit["acked"].add(delivery.seq)
                except HarnessError:
                    # the lease sweep beat us to it — the delivery was
                    # already requeued, so it stays accounted as in flight
                    pass
                self._runtime.credit(
                    self._runtime.network.simulated_time - sim_before
                )
            pending[:] = keep

    def finish(self) -> None:
        """Settle the run before the checks: acks out, backlog drained."""
        self._flush_due_acks(everything=True)
        self._drain({n: s for n, s in self._subs.items() if self._alive(n)})
        # a consumer killed near the end may still hold a live lease; age
        # every lease out and sweep so its unacked messages requeue.  The
        # advance lapses the survivors' leases too, so the requeued backlog
        # is drained through a fresh subscription from a live node.
        dead = [node for node in self._subs if not self._alive(node)]
        if dead and self._spec.lease_s is not None:
            if self._runtime.virtual:
                self._runtime.clock.sleep(self._spec.lease_s)
            survivor = next(
                (n for n in (*self._spec.consumers, *self._spec.from_nodes)
                 if self._alive(n)),
                None,
            )
            if survivor is not None:
                self._client(survivor).stats(self._mailbox)  # triggers the sweep
                drain_sub = self._client(survivor).subscribe(
                    self._mailbox, subscriber=f"{survivor}:drain", lease_s=None
                )
                self._drain({survivor: drain_sub})
                drain_sub.close(requeue=False)

    def _drain(self, subs: dict) -> None:
        progressed = True
        while progressed:
            progressed = False
            for node, sub in subs.items():
                if not self._alive(node):
                    continue
                try:
                    delivery = sub.try_receive()
                except HarnessError:
                    continue  # subscription lapsed mid-drain; others carry on
                if delivery is not None:
                    sub.ack(delivery)
                    self.audit["acked"].add(delivery.seq)
                    progressed = True

    def close(self) -> None:
        for node, sub in self._subs.items():
            if self._alive(node):
                try:
                    sub.close(requeue=False)
                except HarnessError:
                    pass
        self._host.close()
