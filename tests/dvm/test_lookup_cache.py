"""The DVM's TTL'd registry-lookup cache and its invalidation rules."""

import pytest

from repro.dvm.machine import DistributedVirtualMachine
from repro.dvm.state import FullSynchronyState
from repro.netsim import lan
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import ServiceNotFoundError


@pytest.fixture
def dvm():
    net = lan(4)
    with DistributedVirtualMachine("cachedvm", net, FullSynchronyState) as machine:
        for i in range(3):
            machine.add_node(f"node{i}")
        yield machine


class TestLookupCache:
    def test_repeat_lookup_hits_cache(self, dvm):
        dvm.deploy("node0", MatMul)
        first = dvm.lookup("node1", "MatMul")
        second = dvm.lookup("node1", "MatMul")
        assert first == second
        assert dvm._lookup_cache.hits >= 1
        # cached WSDL is the very same parsed document — no re-parse per call
        assert first[1] is second[1]

    def test_miss_never_cached(self, dvm):
        """Staged publication: a lookup miss must not mask a later deploy."""
        with pytest.raises(ServiceNotFoundError):
            dvm.lookup("node1", "MatMul")
        dvm.deploy("node0", MatMul)
        assert dvm.lookup("node1", "MatMul")[0] == "node0"

    def test_undeploy_invalidates(self, dvm):
        dvm.deploy("node0", MatMul)
        dvm.lookup("node1", "MatMul")  # primes the cache
        dvm.undeploy("node0", "MatMul")
        with pytest.raises(ServiceNotFoundError):
            dvm.lookup("node1", "MatMul")

    def test_membership_event_invalidates(self, dvm):
        dvm.deploy("node0", MatMul)
        dvm.lookup("node1", "MatMul")
        assert len(dvm._lookup_cache) == 1
        dvm.add_node("node3")  # publishes dvm.member.joined
        assert len(dvm._lookup_cache) == 0

    def test_redeploy_elsewhere_visible_immediately(self, dvm):
        """Failover shape: undeploy on one node, deploy on another."""
        dvm.deploy("node0", CounterService)
        assert dvm.lookup("node2", "CounterService")[0] == "node0"
        dvm.undeploy("node0", "CounterService")
        dvm.deploy("node1", CounterService)
        assert dvm.lookup("node2", "CounterService")[0] == "node1"

    def test_ttl_zero_disables(self):
        net = lan(2)
        with DistributedVirtualMachine(
            "nocache", net, FullSynchronyState, lookup_cache_ttl_s=0
        ) as machine:
            machine.add_node("node0")
            machine.add_node("node1")
            machine.deploy("node0", MatMul)
            machine.lookup("node1", "MatMul")
            machine.lookup("node1", "MatMul")
            assert machine._lookup_cache.hits == 0
            assert len(machine._lookup_cache) == 0

    def test_ttl_expiry_refreshes(self, dvm):
        dvm.deploy("node0", MatMul)
        dvm.lookup("node1", "MatMul")
        # reach inside: force the clock past the TTL
        cache = dvm._lookup_cache
        with cache._lock:
            cache._entries = {
                k: (expires - 10_000.0, v) for k, (expires, v) in cache._entries.items()
            }
        assert dvm.lookup("node1", "MatMul")[0] == "node0"  # refetched, not stale
