"""Invariant checkers, driven through synthetic contexts (no full run)."""

import pytest

from repro.scenario.checks import CheckContext, known_checks, run_checks
from repro.scenario.events import EventLog
from repro.scenario.manifest import parse_manifest
from repro.scenario.workload import CallRecord, WorkloadStats
from repro.util.clock import VirtualClock


def manifest_with(checks: list[dict], calls_per_tick: int = 2) -> object:
    return parse_manifest(
        {
            "name": "synthetic",
            "duration_s": 1.0,
            "tick_s": 0.5,  # 2 ticks
            "topology": {"hosts": 2},
            "workload": {
                "service": "svc",
                "from_nodes": ["node0"],
                "calls_per_tick": calls_per_tick,
                "ops": [{"op": "ping"}],
            },
            "checks": checks,
        }
    )


def stats_of(*records: CallRecord) -> WorkloadStats:
    stats = WorkloadStats()
    for record in records:
        stats.add(record)
    return stats


def call(ok=True, error=None, typed=True, latency=0.001, t=0.0) -> CallRecord:
    return CallRecord(op="ping", t=t, ok=ok, error=error, typed=typed, latency_s=latency)


def evaluate(checks, stats=None, log=None, runtime=None):
    ctx = CheckContext(
        manifest=manifest_with(checks),
        runtime=runtime,
        stats=stats if stats is not None else WorkloadStats(),
        log=log if log is not None else EventLog(VirtualClock()),
    )
    return run_checks(ctx)


class TestVocabulary:
    def test_known_checks_cover_the_paper_criteria(self):
        names = known_checks()
        for expected in (
            "no_lost_calls",
            "min_success_rate",
            "typed_faults_only",
            "p99_under",
            "max_call_s",
            "failover_within",
            "event_count",
            "no_event",
            "final_members",
            "detector_converged",
            "final_call",
        ):
            assert expected in names


class TestWorkloadChecks:
    def test_no_lost_calls_counts_against_manifest(self):
        # 2 ticks x 2 calls_per_tick = 4 expected
        (good,) = evaluate(
            [{"check": "no_lost_calls"}], stats=stats_of(*[call() for _ in range(4)])
        )
        assert good.passed
        (short,) = evaluate(
            [{"check": "no_lost_calls"}], stats=stats_of(call(), call())
        )
        assert not short.passed

    def test_no_lost_calls_flags_unresolved(self):
        records = [call() for _ in range(3)] + [call(ok=False, error=None)]
        (result,) = evaluate([{"check": "no_lost_calls"}], stats=stats_of(*records))
        assert not result.passed and "unresolved=1" in result.detail

    def test_min_success_rate(self):
        stats = stats_of(call(), call(), call(), call(ok=False, error="E"))
        (ok,) = evaluate([{"check": "min_success_rate", "ratio": 0.75}], stats=stats)
        (bad,) = evaluate([{"check": "min_success_rate", "ratio": 0.9}], stats=stats)
        assert ok.passed and not bad.passed

    def test_typed_faults_only(self):
        typed = stats_of(call(ok=False, error="HarnessTimeoutError"))
        untyped = stats_of(call(ok=False, error="KeyError", typed=False))
        (ok,) = evaluate([{"check": "typed_faults_only"}], stats=typed)
        (bad,) = evaluate([{"check": "typed_faults_only"}], stats=untyped)
        assert ok.passed and not bad.passed
        assert "KeyError" in bad.detail

    def test_typed_faults_allowed_list(self):
        stats = stats_of(call(ok=False, error="HostDownError"))
        (ok,) = evaluate(
            [{"check": "typed_faults_only", "allowed": ["HostDownError"]}], stats=stats
        )
        (bad,) = evaluate(
            [{"check": "typed_faults_only", "allowed": ["CircuitOpenError"]}],
            stats=stats,
        )
        assert ok.passed and not bad.passed

    def test_latency_bounds(self):
        stats = stats_of(*[call(latency=0.01) for _ in range(99)], call(latency=0.5))
        (p99,) = evaluate([{"check": "p99_under", "bound_s": 0.1}], stats=stats)
        (worst,) = evaluate([{"check": "max_call_s", "bound_s": 0.1}], stats=stats)
        assert p99.passed  # one outlier at the tail does not move p99 past 0.1
        assert not worst.passed  # but the worst call busts the hard bound


class TestTrailChecks:
    def test_event_count_window(self):
        log = EventLog(VirtualClock())
        log.record("dvm.member.dead", "n1")
        log.record("dvm.member.dead", "n2")
        (ok,) = evaluate(
            [{"check": "event_count", "topic": "dvm.member.dead", "min": 2, "max": 2}],
            log=log,
        )
        (bad,) = evaluate(
            [{"check": "event_count", "topic": "dvm.member.dead", "max": 1}], log=log
        )
        assert ok.passed and not bad.passed

    def test_no_event(self):
        log = EventLog(VirtualClock())
        log.record("recovery.failover", {})
        (bad,) = evaluate([{"check": "no_event", "topic": "recovery.failover"}], log=log)
        (ok,) = evaluate([{"check": "no_event", "topic": "scenario.fault"}], log=log)
        assert ok.passed and not bad.passed

    def test_failover_within_measures_from_suspicion(self):
        clock = VirtualClock()
        log = EventLog(clock)
        log.record("dvm.member.suspected", {"node": "node2", "misses": 2})
        clock.advance(1.5)
        log.record("recovery.failover", {"from": "node2", "to": "node1"})
        (ok,) = evaluate([{"check": "failover_within", "deadline_s": 2.0}], log=log)
        (bad,) = evaluate([{"check": "failover_within", "deadline_s": 1.0}], log=log)
        assert ok.passed and not bad.passed

    def test_failover_within_requires_a_failover(self):
        (result,) = evaluate(
            [{"check": "failover_within", "deadline_s": 2.0}],
            log=EventLog(VirtualClock()),
        )
        assert not result.passed and "no recovery.failover" in result.detail


class TestRobustness:
    def test_crashing_checker_becomes_failed_result(self):
        # min_success_rate requires 'ratio'; a manifest can omit it — the
        # harness must report the crash, not die mid-soak
        (result,) = evaluate([{"check": "min_success_rate"}])
        assert not result.passed
        assert "checker crashed" in result.detail


class TestSloBurnUnder:
    def _records(self, n_ok, n_bad, spread_s=1.0):
        records = []
        for i in range(n_ok):
            records.append(call(t=i * spread_s / max(n_ok, 1)))
        for i in range(n_bad):
            records.append(
                call(ok=False, error="HarnessTimeoutError",
                     t=i * spread_s / max(n_bad, 1))
            )
        return stats_of(*records)

    def test_clean_run_passes(self):
        (verdict,) = evaluate(
            [{"check": "slo_burn_under", "objective": 0.9, "max_burn": 1.0}],
            stats=self._records(20, 0),
        )
        assert verdict.passed
        assert "bound" in verdict.detail

    def test_sustained_errors_fail_every_window(self):
        (verdict,) = evaluate(
            [{"check": "slo_burn_under", "objective": 0.99, "max_burn": 2.0}],
            stats=self._records(10, 10),
        )
        assert not verdict.passed

    def test_latency_threshold_counts_slow_calls_as_bad(self):
        slow = stats_of(*[call(latency=0.2, t=i * 0.1) for i in range(10)])
        (verdict,) = evaluate(
            [{
                "check": "slo_burn_under", "objective": 0.9, "max_burn": 1.0,
                "latency_threshold_s": 0.05,
            }],
            stats=slow,
        )
        assert not verdict.passed
        fast = stats_of(*[call(latency=0.01, t=i * 0.1) for i in range(10)])
        (verdict,) = evaluate(
            [{
                "check": "slo_burn_under", "objective": 0.9, "max_burn": 1.0,
                "latency_threshold_s": 0.05,
            }],
            stats=fast,
        )
        assert verdict.passed

    def test_in_vocabulary(self):
        assert "slo_burn_under" in known_checks()
