"""TCP-binding specifics: push multiplexing, credit flow, connection death.

The cross-binding battery already proves the TCP surface preserves broker
semantics; this file covers what only exists on the wire — server push
over one multiplexed socket, prefetch credits as flow control, and the
``on_conn_close`` hook that turns a dead connection into redelivery.
"""

import time

import pytest

from repro.messaging.broker import MessageBroker
from repro.messaging.tcpbind import (
    DEFAULT_PREFETCH,
    MailboxTcpClient,
    MailboxTcpServer,
)
from repro.util.errors import MessagingError
from repro.util.events import EventBus


@pytest.fixture
def server():
    bus = EventBus()
    broker = MessageBroker(events=bus, node="hub")
    srv = MailboxTcpServer(broker)
    srv.bus = bus
    yield srv
    srv.close(drain_s=0.5)


def connect(server, **kwargs):
    return MailboxTcpClient(*server.address, timeout_s=10.0, **kwargs)


def wait_for(predicate, budget_s=5.0):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestConnectionDeath:
    def test_dead_connection_redelivers_unacked_to_survivor(self, server):
        victim = connect(server)
        survivor = connect(server)
        try:
            victim.open("jobs", capacity=16)
            victim_sub = victim.subscribe("jobs", subscriber="victim")
            for i in range(3):
                survivor.publish("jobs", i)
            # the victim consumes one and acks nothing
            held = victim_sub.receive(timeout=2.0)
            assert held.seq in (1, 2, 3)

            victim.close()  # connection death, not a polite unsubscribe

            sub = survivor.subscribe("jobs", subscriber="survivor")
            got = []
            while len(got) < 3:
                got.append(sub.receive(timeout=5.0))
                sub.ack(got[-1])
            assert sorted(d.seq for d in got) == [1, 2, 3]
            # everything the victim's connection held was flagged on redelivery
            assert all(d.redelivered for d in got if d.seq == held.seq)
            assert server.broker.stats("jobs").acked == 3
        finally:
            survivor.close()

    def test_conn_close_fires_redelivered_event(self, server):
        seen = []
        server.bus.subscribe("mbox.redelivered", lambda e: seen.append(e.payload))
        client = connect(server)
        other = connect(server)
        try:
            client.open("jobs", capacity=8)
            client.subscribe("jobs", subscriber="doomed")
            client.publish("jobs", "payload")
            assert wait_for(lambda: server.broker.stats("jobs").delivered == 1)
            client.close()
            assert wait_for(lambda: seen)
            assert seen[0]["mailbox"] == "jobs"
            assert seen[0]["subscriber"] == "doomed"
        finally:
            other.close()


class TestCreditFlow:
    def test_prefetch_bounds_unacked_pushes(self, server):
        client = connect(server)
        try:
            client.open("paced", capacity=64)
            sub = client.subscribe("paced", subscriber="slow", prefetch=2)
            for i in range(5):
                client.publish("paced", i)
            # only `prefetch` deliveries leave the broker while nothing is acked
            assert wait_for(lambda: server.broker.stats("paced").delivered == 2)
            time.sleep(0.1)
            assert server.broker.stats("paced").delivered == 2
            assert server.broker.stats("paced").depth == 3  # rest stays shared

            # acking replenishes credits: the backlog then drains completely
            got = [sub.receive(timeout=2.0) for _ in range(2)]
            for delivery in got:
                sub.ack(delivery)
            while len(got) < 5:
                delivery = sub.receive(timeout=5.0)
                sub.ack(delivery)
                got.append(delivery)
            assert sorted(d.seq for d in got) == [1, 2, 3, 4, 5]
            assert server.broker.stats("paced").acked == 5
        finally:
            client.close()

    def test_default_prefetch_is_documented_value(self):
        assert DEFAULT_PREFETCH == 32


class TestMultiplexing:
    def test_many_subscriptions_share_one_socket(self, server):
        client = connect(server)
        try:
            client.open("alpha", capacity=8)
            client.open("beta", capacity=8)
            sub_a = client.subscribe("alpha", subscriber="a")
            sub_b = client.subscribe("beta", subscriber="b")
            client.publish("alpha", "for-a")
            client.publish("beta", "for-b")
            assert sub_a.receive(timeout=2.0).payload == "for-a"
            assert sub_b.receive(timeout=2.0).payload == "for-b"
            # routing is exact: neither queue holds the other's message
            assert sub_a.try_receive() is None
            assert sub_b.try_receive() is None
        finally:
            client.close()

    def test_push_order_matches_publish_order_per_subscription(self, server):
        client = connect(server)
        try:
            client.open("ordered", mode="all-readers", capacity=32)
            sub = client.subscribe("ordered", subscriber="reader")
            for i in range(8):
                client.publish("ordered", i)
            got = [sub.receive(timeout=2.0) for _ in range(8)]
            assert [d.payload for d in got] == list(range(8))
            for delivery in got:
                sub.ack(delivery)
        finally:
            client.close()


class TestWireFaults:
    def test_unknown_op_is_a_typed_messaging_error(self, server):
        client = connect(server)
        try:
            with pytest.raises(MessagingError, match="unknown mailbox op"):
                client._request({"op": "bogus"})
        finally:
            client.close()

    def test_unsubscribe_without_requeue_discards_with_events(self, server):
        drops = []
        server.bus.subscribe("mbox.dropped", lambda e: drops.append(e.payload))
        client = connect(server)
        try:
            client.open("jobs", capacity=8)
            sub = client.subscribe("jobs", subscriber="careless")
            client.publish("jobs", "a")
            client.publish("jobs", "b")
            assert wait_for(lambda: server.broker.stats("jobs").delivered == 2)
            sub.close(requeue=False)
            assert wait_for(lambda: len(drops) == 2)
            assert {d["reason"] for d in drops} == {"discarded_on_close"}
            assert server.broker.stats("jobs").dropped == 2
        finally:
            client.close()
