"""Mangled trace metadata must never fail a request, and the finisher
must survive interpreter shutdown ordering (atexit flush/join)."""

from __future__ import annotations

import http.client
import socket

import pytest

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.encoding.registry import default_registry
from repro.obs import trace
from repro.obs.trace import _AsyncFinisher
from repro.transport.base import TransportMessage
from repro.transport import tcp as tcp_mod


class EchoService:
    def echo(self, text: str) -> str:
        return text


@pytest.fixture
def server():
    dispatcher = ObjectDispatcher()
    dispatcher.register("svc", EchoService())
    binding_server = BindingServer(dispatcher)
    yield binding_server
    binding_server.close()


class TestMalformedHeaderGuards:
    @pytest.mark.parametrize(
        "bad_header",
        [
            "garbage",
            "!!!!not-base64!!!!",
            "AAAA",  # truncated block
            "\x00\x01\x02",
        ],
    )
    def test_http_header_falls_back_to_fresh_context(self, server, bad_header):
        """A mangled X-Repro-Trace header answers 200 with a decodable
        reply — the server minted a fresh context instead of raising."""
        trace.enable(True)
        listener = server.expose_soap_http()
        codec = default_registry.get("text/xml")
        payload = codec.encode_call("svc", "echo", ("hello",))
        conn = http.client.HTTPConnection("127.0.0.1", listener.port, timeout=5)
        try:
            conn.request(
                "POST", "/", body=payload,
                headers={
                    "Content-Type": "text/xml; charset=utf-8",
                    trace.TRACE_HEADER: bad_header,
                },
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            assert codec.decode_reply(body) == "hello"
        finally:
            conn.close()

    def test_soap_extractor_guard_in_server_pipeline(self, server):
        """A corrupt <harness:trace> header block inside the envelope is
        dropped; the call still dispatches."""
        trace.enable(True)
        codec = default_registry.get("text/xml")
        payload = codec.encode_call("svc", "echo", ("hi",))
        ctx = trace.new_trace()
        spliced = trace.splice_soap(payload, ctx)
        corrupt = spliced.replace(ctx.trace_id.encode("ascii"), b"!" * 32)
        reply = server._handle(TransportMessage("text/xml; charset=utf-8", corrupt))
        assert codec.decode_reply(reply.payload) == "hi"

    def test_tcp_binary_trace_block_garbage_tolerated(self, server):
        """A frame flagged as carrying a trace block whose bytes are noise
        still gets a normal reply."""
        trace.enable(True)
        listener = server.expose_xdr_tcp()
        codec = default_registry.get("application/x-xdr")
        payload = codec.encode_call("svc", "echo", ("ping",))
        frame = tcp_mod._frame_prefix(
            7, codec.content_type, tcp_mod.STATUS_OK, len(payload),
            trace=b"\xff\xfe garbage trace bytes \x00\x01",
        ) + payload
        host, _, port_text = listener.url.removeprefix("tcp://").rpartition(":")
        with socket.create_connection((host, int(port_text)), timeout=5) as sock:
            sock.sendall(frame)
            corr_id, message, status, _trace_bytes = tcp_mod._read_frame(sock)
        assert corr_id == 7
        assert codec.decode_reply(message.payload) == "ping"


class TestFinisherShutdown:
    def test_shutdown_joins_and_later_submits_run_inline(self):
        finisher = _AsyncFinisher()
        seen = []
        finisher.submit(seen.append, ("before",))
        assert finisher.flush()
        finisher.shutdown()
        assert seen == ["before"]
        # the worker is gone; new work must not be lost
        finisher.submit(seen.append, ("after",))
        assert finisher.flush()
        assert seen == ["before", "after"]

    def test_shutdown_is_idempotent(self):
        finisher = _AsyncFinisher()
        finisher.submit(lambda *_: None, ())
        finisher.shutdown()
        finisher.shutdown()
        assert finisher.flush()

    def test_flush_without_worker_drains_inline(self):
        finisher = _AsyncFinisher()
        seen = []
        # enqueue directly: no worker thread exists, flush must not hang
        finisher._queue.append((seen.append, ("x",)))
        assert finisher.flush()
        assert seen == ["x"]

    def test_module_flush_safe_after_global_shutdown(self):
        """trace.flush() keeps working after the atexit hook has run —
        short-lived CLI runs flush their tail spans instead of dying."""
        original = trace.finisher
        try:
            original.shutdown()
            trace.enable(True)
            seen = []
            trace.finisher.submit(seen.append, ("tail",))
            assert trace.flush()
            assert seen == ["tail"]
        finally:
            trace.enable(False)
            trace.finisher = _AsyncFinisher()  # fresh worker for later tests
