"""C6 — the LAPACK migration scenario (Section 6).

Claim: running the application logic next to the computational service
beats fetching results across the network; the best placement is "the same
container that hosts the LAPACK service itself, [taking] advantage of local
bindings in order to minimize latency."

Reproduced series: total simulated communication time for an iterative
solver driver at the three placements the paper narrates — home node over
the WAN, a better-connected node on the service's LAN, and the service's
own container.  Expected shape: WAN ≫ LAN ≫ local (≈0).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.builder import HarnessDvm
from repro.netsim import two_clusters
from repro.plugins.services import LinearAlgebraService


class SolverDriver:
    """Application logic calling the LAPACK service repeatedly."""

    def run(self, lapack_stub, n: int = 24, iterations: int = 4) -> float:
        rng = np.random.default_rng(3)
        total = 0.0
        for _ in range(iterations):
            a = rng.random((n, n)) + n * np.eye(n)
            b = rng.random(n)
            x = lapack_stub.solve(a, b)
            total += float(np.linalg.norm(a @ x - b))
        return total


PLACEMENTS = [("home-WAN", "a0"), ("better-LAN", "b1"), ("co-located", "b0")]


def _build():
    network = two_clusters(2)
    harness = HarnessDvm("c6", network)
    harness.add_nodes("a0", "a1", "b0", "b1")
    harness.deploy("b0", LinearAlgebraService, name="LAPACK")
    harness.deploy("a0", SolverDriver, name="Driver")
    return network, harness


@pytest.mark.parametrize("label,node", PLACEMENTS, ids=[p[0] for p in PLACEMENTS])
def test_placement_benchmark(benchmark, label, node):
    network, harness = _build()
    with harness:
        if node != "a0":
            harness.move("Driver", node)
        driver = harness.stub(node, "Driver")
        lapack = harness.stub(node, "LAPACK")
        benchmark.pedantic(driver.run, args=(lapack,), rounds=3, iterations=1)
        lapack.close()
        driver.close()


def test_report_c6_migration_gain():
    network, harness = _build()
    results = {}
    residuals = {}
    rows = []
    with harness:
        for label, node in PLACEMENTS:
            if harness.dvm.component_index(node)["Driver"] != node:
                harness.move("Driver", node)
            driver = harness.stub(node, "Driver")
            lapack = harness.stub(node, "LAPACK")
            network.reset_stats()
            residuals[label] = round(driver.run(lapack), 9)
            results[label] = network.simulated_time
            rows.append([
                label, node, lapack.protocol,
                network.total_messages, network.total_bytes,
                f"{network.simulated_time * 1e3:.2f}ms",
            ])
            lapack.close()
            driver.close()
    print_table("C6: solver placements (simulated communication)",
                ["placement", "node", "binding", "messages", "bytes", "sim time"],
                rows)

    # identical numerics at every placement (migration preserved behaviour)
    assert len(set(residuals.values())) == 1, residuals
    # the paper's ordering, with decisive factors
    assert results["home-WAN"] > 20 * results["better-LAN"]
    assert results["co-located"] == 0.0
