"""Epidemic anti-entropy: convergence, LWW merge, partitions, membership."""

import pytest

from repro.dvm.gossip import GossipState, NeighborhoodGossipState
from repro.netsim.topology import lan, random_regular
from repro.util.errors import CoherencyError, DvmError
from repro.util.events import EventBus


def make(n=12, fanout=2, seed=1, cls=GossipState, **kwargs):
    network = lan(n, seed=seed)
    names = [f"node{i}" for i in range(n)]
    protocol = cls(network, members=names, fanout=fanout, seed=seed, **kwargs)
    return network, names, protocol


def converge(protocol, cap=32):
    rounds = 0
    while not protocol.converged() and rounds < cap:
        protocol.gossip_round()
        rounds += 1
    return rounds


class TestConvergence:
    def test_fresh_fleet_starts_converged(self):
        _, _, protocol = make()
        assert protocol.converged()

    def test_write_diverges_then_rounds_converge(self):
        _, names, protocol = make(pull_on_miss=False)
        protocol.update("node0", "component/a", 41)
        assert not protocol.converged()
        rounds = converge(protocol)
        assert protocol.converged()
        assert rounds <= 32
        for name in names:
            assert protocol.get(name, "component/a") == 41

    def test_every_origin_spreads_everywhere(self):
        _, names, protocol = make(n=10, pull_on_miss=False)
        for i, name in enumerate(names):
            protocol.update(name, f"slot/{i}", i * 10)
        converge(protocol)
        for reader in names:
            for i in range(10):
                assert protocol.get(reader, f"slot/{i}") == i * 10

    def test_rounds_stay_logarithmic(self):
        _, _, protocol = make(n=64, seed=5, pull_on_miss=False)
        protocol.update("node0", "component/a", 1)
        rounds = converge(protocol, cap=64)
        # fanout-2 push-pull on 64 members: well under the member count
        assert rounds <= 12

    def test_converged_rounds_are_free(self):
        network, _, protocol = make(pull_on_miss=False)
        protocol.update("node0", "component/a", 1)
        converge(protocol)
        stats = protocol.gossip_round()
        # mid-round O(1) convergence check short-circuits the whole sweep
        assert stats["exchanges"] == 0

    def test_local_write_reads_back_immediately(self):
        _, _, protocol = make(pull_on_miss=False)
        protocol.update("node3", "component/a", "x")
        assert protocol.get("node3", "component/a") == "x"

    def test_miss_without_pull_is_none_before_rounds(self):
        _, _, protocol = make(pull_on_miss=False)
        protocol.update("node0", "component/a", 1)
        assert protocol.get("node7", "component/a") is None

    def test_run_until_converged_raises_when_partitioned(self):
        network, names, protocol = make(n=6, pull_on_miss=False)
        network.partition({"node0", "node1", "node2"}, {"node3", "node4", "node5"})
        protocol.update("node0", "component/a", 1)
        with pytest.raises(CoherencyError, match="did not converge"):
            protocol.run_until_converged(max_rounds=8)
        network.heal()

    def test_works_on_random_regular_substrate(self):
        network = random_regular(20, degree=4, seed=9)
        names = [f"node{i}" for i in range(20)]
        protocol = GossipState(network, members=names, fanout=2, seed=9)
        protocol.update("node7", "component/a", 7)
        converge(protocol)
        assert protocol.get("node13", "component/a") == 7

    def test_fanout_validated(self):
        network = lan(3)
        with pytest.raises(DvmError, match="fanout"):
            GossipState(network, members=["node0"], fanout=0)


class TestLastWriterWins:
    def test_later_write_wins_everywhere(self):
        _, names, protocol = make(pull_on_miss=False)
        protocol.update("node0", "component/a", "old")
        protocol.update("node5", "component/a", "new")
        converge(protocol)
        for name in names:
            assert protocol.get(name, "component/a") == "new"

    def test_partitioned_writes_resolve_to_one_winner(self):
        network, names, protocol = make(n=6, pull_on_miss=False)
        network.partition({"node0", "node1", "node2"}, {"node3", "node4", "node5"})
        protocol.update("node0", "component/a", "left")
        protocol.update("node4", "component/a", "right")  # higher lamport
        for _ in range(6):
            protocol.gossip_round()
        assert not protocol.converged()
        network.heal()
        converge(protocol)
        values = {protocol.get(name, "component/a") for name in names}
        assert values == {"right"}


class TestPartition:
    def test_divergence_heals_after_partition(self):
        network, names, protocol = make(n=6, pull_on_miss=False)
        network.partition({"node0", "node1", "node2"}, {"node3", "node4", "node5"})
        protocol.update("node1", "side/a", "A")
        protocol.update("node4", "side/b", "B")
        for _ in range(8):
            protocol.gossip_round()
        assert not protocol.converged()
        # each side sees only its own write
        assert protocol.get("node5", "side/a") is None
        network.heal()
        converge(protocol)
        for name in names:
            assert protocol.get(name, "side/a") == "A"
            assert protocol.get(name, "side/b") == "B"


class TestMembership:
    def test_newcomer_is_seeded_by_join_exchange(self):
        network, _, protocol = make(n=4, pull_on_miss=False)
        protocol.update("node0", "component/a", 5)
        converge(protocol)
        network.add_host("node4")
        protocol.add_member("node4")
        assert protocol.get("node4", "component/a") == 5
        assert protocol.converged()

    def test_removed_member_does_not_block_convergence(self):
        _, _, protocol = make(n=6, pull_on_miss=False)
        protocol.update("node0", "component/a", 1)
        protocol.remove_member("node5")
        converge(protocol)
        assert protocol.converged()
        assert "node5" not in protocol.members

    def test_crashed_member_does_not_block_convergence(self):
        network, _, protocol = make(n=6, pull_on_miss=False)
        network.host("node5").crash()
        protocol.update("node0", "component/a", 1)
        rounds = converge(protocol, cap=64)
        # the crashed member can't advance its floors; the fleet only
        # converges once it is evicted from the membership
        assert not protocol.converged()
        protocol.remove_member("node5")
        converge(protocol)
        assert protocol.converged()


class TestConvergenceEvents:
    def test_transition_published_once_per_convergence(self):
        _, _, protocol = make(pull_on_miss=False)
        events = EventBus()
        seen = []
        events.subscribe("dvm.gossip.converged", seen.append)
        protocol.bind_bus(events, source="test")
        protocol.update("node0", "component/a", 1)
        converge(protocol)
        protocol.gossip_round()  # already converged: no second event
        assert len(seen) == 1
        assert seen[0].payload["members"] == 12
        protocol.update("node0", "component/a", 2)
        converge(protocol)
        assert len(seen) == 2


class TestNeighborhoodGossip:
    def test_eager_push_reaches_ring_neighbors_same_write(self):
        _, _, protocol = make(n=12, cls=NeighborhoodGossipState, radius=1, pull_on_miss=False)
        protocol.update("node0", "component/a", 9)
        for neighbor in protocol.neighbors("node0"):
            assert protocol.get(neighbor, "component/a") == 9
        # eager pushes are opportunistic: floors untouched, fleet not converged
        assert not protocol.converged()
        converge(protocol)
        assert protocol.get("node6", "component/a") == 9

    def test_radius_validated(self):
        network = lan(3)
        with pytest.raises(DvmError, match="radius"):
            NeighborhoodGossipState(network, members=["node0"], radius=0)
