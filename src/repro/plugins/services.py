"""The paper's example service components: WSTime, MatMul, and a LAPACK
stand-in.

``WSTime`` reproduces Figure 7's trivial Time service; ``MatMul`` Figure
8's matrix-multiplication service (including the paper's flat ``double[]``
signature).  ``LinearAlgebraService`` plays the "highly optimized version of
the LAPACK service" in the Section 6 migration scenario — numpy *is* backed
by LAPACK, so the substitution is nearly literal.
"""

from __future__ import annotations

import datetime
import math

import numpy as np

from repro.util.errors import HarnessError

__all__ = [
    "WSTime",
    "MatMul",
    "LinearAlgebraService",
    "CounterService",
    "SaturationProbeService",
    "MetricsService",
    "MailboxService",
]


class WSTime:
    """The Figure 7 Time service.

    The paper's Java implementation is one method returning
    ``new java.util.Date().toString()``; this is its Python twin, plus an
    epoch variant that is friendlier to numeric bindings.
    """

    def getTime(self) -> str:
        """Current time as a human-readable string."""
        return datetime.datetime.now().ctime()

    def getEpochSeconds(self) -> float:
        """Current time as seconds since the Unix epoch."""
        return datetime.datetime.now().timestamp()


class MatMul:
    """The Figure 8 matrix-multiplication service.

    ``getResult`` follows the paper's signature — two flat ``double[]``
    arrays (square matrices in row-major order) in, one flat ``double[]``
    out.  ``multiply`` is the natural 2-D convenience entry point.
    """

    def getResult(self, mata: np.ndarray, matb: np.ndarray) -> np.ndarray:
        """Multiply two square matrices given as flat row-major arrays."""
        a = np.asarray(mata, dtype=np.float64).ravel()
        b = np.asarray(matb, dtype=np.float64).ravel()
        if a.size != b.size:
            raise HarnessError(f"operand sizes differ: {a.size} vs {b.size}")
        n = math.isqrt(a.size)
        if n * n != a.size:
            raise HarnessError(f"operand of {a.size} elements is not a square matrix")
        return (a.reshape(n, n) @ b.reshape(n, n)).ravel()

    def multiply(self, mata: np.ndarray, matb: np.ndarray) -> np.ndarray:
        """General 2-D matrix product."""
        a = np.asarray(mata, dtype=np.float64)
        b = np.asarray(matb, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise HarnessError(f"incompatible shapes: {a.shape} @ {b.shape}")
        return a @ b


class LinearAlgebraService:
    """The LAPACK-service stand-in for the Section 6 scenario.

    numpy's linalg routines are LAPACK underneath (dgesv, dgetrf, dgesdd…),
    so this component provides genuinely 'highly optimized' kernels
    relative to anything a client could do over per-element SOAP data.
    """

    def solve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve the linear system ``a @ x = b`` (LAPACK dgesv)."""
        return np.linalg.solve(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))

    def lstsq(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Least-squares solution to an overdetermined system."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        solution, *_ = np.linalg.lstsq(a, b, rcond=None)
        return solution

    def determinant(self, a: np.ndarray) -> float:
        """Matrix determinant (LAPACK dgetrf)."""
        return float(np.linalg.det(np.asarray(a, dtype=np.float64)))

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Matrix inverse."""
        return np.linalg.inv(np.asarray(a, dtype=np.float64))

    def singular_values(self, a: np.ndarray) -> np.ndarray:
        """Singular values (LAPACK dgesdd)."""
        return np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)

    def norm(self, a: np.ndarray) -> float:
        """Frobenius norm."""
        return float(np.linalg.norm(np.asarray(a, dtype=np.float64)))


class CounterService:
    """A deliberately *stateful* service for local-instance binding tests.

    The paper's JavaObject scheme exists precisely for components like this:
    a fresh instance (plain local binding) would reset the count; only the
    instance binding reaches the accumulated state.
    """

    def __init__(self) -> None:
        self._count = 0

    def increment(self, amount: int = 1) -> int:
        """Add *amount*; returns the running total."""
        self._count += int(amount)
        return self._count

    def value(self) -> int:
        """The running total."""
        return self._count


class SaturationProbeService:
    """A load-generator target for saturation scenarios and benches.

    ``work`` holds a worker thread for a real wall-clock interval — the
    knob that lets a scenario drive a reactor listener past its admission
    capacity with a handful of workers — while ``ping`` stays instant, so
    a mixed workload measures both the queued and the unqueued path.
    Wall-clock sleeps make this service *non-deterministic*: use it only
    in ``wall: true`` scenarios and benchmarks, never under a
    :class:`~repro.util.clock.VirtualClock` timeline.
    """

    def __init__(self) -> None:
        self._served = 0

    def work(self, delay_ms: float = 20.0) -> int:
        """Occupy a worker for *delay_ms*; returns the served count."""
        import time as _time

        _time.sleep(max(0.0, float(delay_ms)) / 1000.0)
        self._served += 1
        return self._served

    def ping(self) -> str:
        """Instant liveness probe."""
        return "pong"

    def served(self) -> int:
        """How many ``work`` calls completed."""
        return self._served


class MetricsService:
    """Observability as a deployable component: metric snapshots over RPC.

    Deploy one per node (or DVM) and any client can pull the process's
    metrics through the same bindings as every other service — the XDR
    codec carries the nested snapshot dicts natively, SOAP via its struct
    mapping.  An optional ``snapshot_fn`` (e.g. a bound
    ``DistributedVirtualMachine.metrics_snapshot``) replaces the default
    registry-only view.
    """

    def __init__(self, snapshot_fn=None) -> None:
        self._snapshot_fn = snapshot_fn

    def snapshot(self, prefix: str = "") -> dict:
        """All instruments whose names start with *prefix*."""
        from repro.obs import trace as _trace

        _trace.flush()  # land in-flight bookkeeping so counts are exact
        if self._snapshot_fn is not None:
            return self._snapshot_fn(prefix)
        from repro.obs import metrics as _metrics

        return {"metrics": _metrics.registry.snapshot(prefix)}

    def names(self, prefix: str = "") -> list:
        """Just the instrument names (cheap remote discovery)."""
        return sorted(self.snapshot(prefix).get("metrics", {}))


class MailboxService:
    """A mailbox hub deployable as a *restartable* DVM component.

    Wraps a :class:`~repro.messaging.broker.MessageBroker` behind flat
    RPC-friendly verbs (ids and dicts, no handle objects) so any binding
    can drive it, and pickles as the broker's snapshot — which is what
    wires durable redelivery through the PR 1 failover path: checkpoints
    carry every mailbox's backlog *and unacked in-flight messages*, and on
    revival the restored broker closes the orphaned subscriptions and
    requeues their unacked messages (flagged ``redelivered``) for whoever
    subscribes next.  Deploy with ``restartable=True`` and the
    :class:`~repro.recovery.failover.FailoverManager` does the rest.
    """

    def __init__(self) -> None:
        from repro.messaging.broker import MessageBroker

        self.broker = MessageBroker()

    # -- RPC verbs ------------------------------------------------------------

    def open(self, name: str, mode: str = "first-reader", capacity: int = 64,
             overflow: str = "reject") -> bool:
        self.broker.open(name, mode=mode, capacity=capacity, overflow=overflow)
        return True

    def publish(self, name: str, payload, publisher: str = "") -> int:
        return self.broker.publish(name, payload, publisher=publisher)

    def subscribe(self, name: str, subscriber: str = "") -> int:
        return self.broker.subscribe(name, subscriber=subscriber).sub_id

    def receive(self, name: str, sub_id: int) -> dict | None:
        from repro.messaging.broker import Subscription

        delivery = Subscription(self.broker, name, sub_id, "").try_receive()
        if delivery is None:
            return None
        return {"delivery_id": delivery.delivery_id, "seq": delivery.seq,
                "payload": delivery.payload, "redelivered": delivery.redelivered,
                "attempt": delivery.attempt}

    def ack(self, name: str, sub_id: int, delivery_id: int) -> bool:
        from repro.messaging.broker import Subscription

        Subscription(self.broker, name, sub_id, "").ack(delivery_id)
        return True

    def unsubscribe(self, name: str, sub_id: int, requeue: bool = True) -> bool:
        self.broker._close_sub(name, sub_id, requeue=requeue)
        return True

    def stats(self, name: str) -> dict:
        return self.broker.stats(name).as_dict()

    # -- durability -----------------------------------------------------------

    def __getstate__(self) -> dict:
        return {"snapshot": self.broker.snapshot()}

    def __setstate__(self, state: dict) -> None:
        from repro.messaging.broker import MessageBroker

        self.broker = MessageBroker()
        self.broker.restore(state["snapshot"])
