"""Automation tools: wsdlgen (class → WSDL), servicegen (WSDL → stub source)."""

from repro.tools.servicegen import generate_port_type_source, generate_stub_source
from repro.tools.wsdlgen import generate_wsdl, service_operations, xsd_type_for

__all__ = [
    "generate_port_type_source",
    "generate_stub_source",
    "generate_wsdl",
    "service_operations",
    "xsd_type_for",
]
