"""Ablation A1 — vectorised codec fast paths vs. pure-Python references.

DESIGN.md §6 commits the codecs to "numpy vector fast paths and pure-Python
fallbacks (both tested for equivalence)"; this ablation quantifies what the
fast path buys, which in turn explains why the 2002 XML stacks (whose
encoders were per-element) measured the overheads the paper cites: the
*algorithmic* shape (per-element text conversion) costs more than the
format itself.

Expected shape: the numpy base64 path ≥10× the pure per-element one at
64 K elements; XDR's vectorised array path ≥10× a per-element XDR loop.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.encoding.base64codec import (
    decode_array_base64,
    decode_array_base64_pure,
    encode_array_base64,
    encode_array_base64_pure,
)
from repro.encoding.xdr import XdrDecoder, XdrEncoder

N = 65_536


def _array() -> np.ndarray:
    return np.random.default_rng(5).random(N)


# -- base64 ------------------------------------------------------------------------

def _b64_fast(array) -> None:
    decode_array_base64(encode_array_base64(array))


def _b64_pure(values) -> None:
    decode_array_base64_pure(encode_array_base64_pure(values))


def test_base64_fast_benchmark(benchmark):
    benchmark(_b64_fast, _array())


def test_base64_pure_benchmark(benchmark):
    values = list(_array())
    benchmark.pedantic(_b64_pure, args=(values,), rounds=3, iterations=1)


# -- XDR array path -------------------------------------------------------------------

def _xdr_vectorised(array) -> None:
    encoder = XdrEncoder()
    encoder.pack_ndarray(array)
    XdrDecoder(encoder.getvalue()).unpack_ndarray()


def _xdr_per_element(values) -> None:
    encoder = XdrEncoder()
    encoder.pack_uint(len(values))
    for value in values:
        encoder.pack_double(value)
    decoder = XdrDecoder(encoder.getvalue())
    count = decoder.unpack_uint()
    [decoder.unpack_double() for _ in range(count)]


def test_xdr_vectorised_benchmark(benchmark):
    benchmark(_xdr_vectorised, _array())


def test_xdr_per_element_benchmark(benchmark):
    values = list(_array())
    benchmark.pedantic(_xdr_per_element, args=(values,), rounds=3, iterations=1)


# -- report --------------------------------------------------------------------------------

def _timed(fn, arg, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


def test_report_ablation_fast_paths():
    array = _array()
    values = list(array)
    rows = []
    b64_fast = _timed(_b64_fast, array)
    b64_pure = _timed(_b64_pure, values)
    xdr_fast = _timed(_xdr_vectorised, array)
    xdr_pure = _timed(_xdr_per_element, values)
    rows.append(["base64 encode+decode", f"{b64_fast * 1e3:.2f}ms",
                 f"{b64_pure * 1e3:.2f}ms", f"{b64_pure / b64_fast:.0f}x"])
    rows.append(["xdr array encode+decode", f"{xdr_fast * 1e3:.2f}ms",
                 f"{xdr_pure * 1e3:.2f}ms", f"{xdr_pure / xdr_fast:.0f}x"])
    print_table(f"A1: vectorised vs per-element codecs ({N} float64)",
                ["codec", "vectorised", "per-element", "speedup"], rows)
    # struct.pack is C, so the per-element base64 path is merely several
    # times slower; the per-element XDR path (python loop per primitive)
    # shows the full order-of-magnitude gap
    assert b64_pure > 3 * b64_fast
    assert xdr_pure > 10 * xdr_fast
