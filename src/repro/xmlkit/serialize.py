"""Serialize :class:`XmlElement` trees to text and parse them back.

The writer assigns namespace prefixes from
:data:`repro.xmlkit.qname.WELL_KNOWN_PREFIXES` (falling back to ``ns0``,
``ns1``, …) and declares every namespace on the root element, which is how
the WSDL listings in the paper's Figures 7 and 8 are laid out.

Parsing goes through ``xml.etree.ElementTree`` (expat) and converts into our
parent-linked model.

:func:`to_bytes` is the wire-path variant of :func:`to_string`: one pass
over the tree into a flat chunk list, a single UTF-8 encode at the end, and
a memoized namespace→prefix/declaration map keyed by the set of namespace
URIs the tree uses — byte-identical output to
``to_string(...).encode("utf-8")`` without the ``StringIO`` detour or a
repeated prefix assignment for recurring document shapes.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape, quoteattr

from repro.util.errors import XmlError
from repro.xmlkit.element import XmlElement
from repro.xmlkit.qname import WELL_KNOWN_PREFIXES, QName

__all__ = ["to_string", "to_bytes", "parse", "canonicalize"]


def to_string(root: XmlElement, indent: bool = True, xml_declaration: bool = True) -> str:
    """Render the tree as a UTF-8 XML string with prefixes on the root."""
    prefixes, decls = _prefixes_and_decls(root)
    out: list[str] = []
    if xml_declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    _write_chunks(out, root, prefixes, decls, depth=0, indent=indent)
    return "".join(out)


#: Memoized (namespace-uri tuple) → (prefix map, rendered xmlns declarations).
#: Document shapes repeat heavily on the wire paths (SOAP envelopes, WSDL
#: manifests), so prefix assignment and declaration formatting are paid once
#: per distinct namespace set rather than once per document.
_NS_MEMO: dict[tuple[str, ...], tuple[dict[str, str], str]] = {}
_NS_MEMO_LIMIT = 256


def _prefixes_and_decls(root: XmlElement) -> tuple[dict[str, str], str]:
    uris = tuple(_collect_uris(root))
    memo = _NS_MEMO.get(uris)
    if memo is not None:
        return memo
    prefixes: dict[str, str] = {}
    auto = 0
    for uri in uris:
        preferred = WELL_KNOWN_PREFIXES.get(uri)
        if preferred and preferred not in prefixes.values():
            prefixes[uri] = preferred
        else:
            prefixes[uri] = f"ns{auto}"
            auto += 1
    decls = "".join(
        f' xmlns:{prefix}="{escape(uri)}"'
        for uri, prefix in sorted(prefixes.items(), key=lambda kv: kv[1])
    )
    if len(_NS_MEMO) >= _NS_MEMO_LIMIT:
        _NS_MEMO.clear()
    _NS_MEMO[uris] = (prefixes, decls)
    return prefixes, decls


def _collect_uris(root: XmlElement) -> list[str]:
    uris: list[str] = []
    for node in root.iter():
        if node.name.namespace and node.name.namespace not in uris:
            uris.append(node.name.namespace)
        for attr in node.attributes:
            if attr.namespace and attr.namespace not in uris:
                uris.append(attr.namespace)
    return uris


def to_bytes(root: XmlElement, indent: bool = False, xml_declaration: bool = True) -> bytes:
    """Render the tree straight to UTF-8 bytes in a single pass.

    Byte-identical to ``to_string(root, ...).encode("utf-8")``; used on the
    wire paths where the intermediate ``str`` document is pure overhead.
    """
    prefixes, decls = _prefixes_and_decls(root)
    out: list[str] = []
    if xml_declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    _write_chunks(out, root, prefixes, decls, depth=0, indent=indent)
    return "".join(out).encode("utf-8")


def _write_chunks(
    out: list[str],
    node: XmlElement,
    prefixes: dict[str, str],
    decls: str,
    depth: int,
    indent: bool,
) -> None:
    pad = "  " * depth if indent else ""
    name = node.name
    tag = f"{prefixes[name.namespace]}:{name.local}" if name.namespace else name.local
    out.append(f"{pad}<{tag}")
    if decls:
        out.append(decls)
    for attr, value in node.attributes.items():
        attr_text = (
            f"{prefixes[attr.namespace]}:{attr.local}" if attr.namespace else attr.local
        )
        out.append(f" {attr_text}={quoteattr(value)}")
    if not node.children and not node.text:
        out.append("/>\n" if indent else "/>")
        return
    out.append(">")
    if node.text:
        out.append(escape(node.text))
    if node.children:
        if indent:
            out.append("\n")
        for child in node.children:
            _write_chunks(out, child, prefixes, "", depth + 1, indent)
        out.append(pad)
    out.append(f"</{tag}>\n" if indent else f"</{tag}>")


def parse(text: str | bytes) -> XmlElement:
    """Parse an XML document into an :class:`XmlElement` tree."""
    try:
        et_root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlError(f"malformed XML: {exc}") from exc
    return _convert(et_root)


def _convert(node: ET.Element) -> XmlElement:
    element = XmlElement(QName.parse(node.tag))
    for key, value in node.attrib.items():
        element.set(QName.parse(key), value)
    text = node.text or ""
    if len(node):
        # whitespace around children is indentation, not content
        text = text.strip()
    element.text = text
    for child in node:
        element.append(_convert(child))
    return element


def canonicalize(root: XmlElement) -> str:
    """A whitespace-free, attribute-sorted rendering used for comparisons.

    Not full C14N — just enough determinism for round-trip tests and for
    registry content hashing.
    """
    out = io.StringIO()

    def emit(node: XmlElement) -> None:
        out.write(f"<{node.name.clark()}")
        for attr in sorted(node.attributes, key=lambda q: (q.namespace, q.local)):
            out.write(f" {attr.clark()}={quoteattr(node.attributes[attr])}")
        out.write(">")
        if node.text:
            out.write(escape(node.text.strip()))
        for child in node.children:
            emit(child)
        out.write(f"</{node.name.clark()}>")

    emit(root)
    return out.getvalue()
