"""HARNESS II — standards-based heterogeneous metacomputing.

A Python reproduction of the system designed in *"Standards Based
Heterogeneous Metacomputing: The Design of HARNESS II"* (Migliardi,
Kurzyniec & Sunderam, IPPS 2002): a plugin-based distributed virtual
machine framework whose components are described by WSDL, discovered
through XML-queryable registries, and reached through a spectrum of
bindings — SOAP/HTTP for interoperability, XDR sockets for numeric bulk
data, and local / local-instance bindings for co-located components.

Quickstart::

    from repro import HarnessDvm, lan
    from repro.plugins import MatMul

    net = lan(3)
    with HarnessDvm("demo", net) as h:
        h.add_nodes("node0", "node1", "node2")
        h.deploy("node1", MatMul)
        stub = h.stub("node0", "MatMul")   # XDR binding, auto-selected
        result = stub.multiply(a, b)
"""

from repro.core import HarnessDvm, HarnessKernel, Plugin, move_component
from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import (
    ApplicationServerContainer,
    ComponentContainer,
    LightweightContainer,
)
from repro.dvm import (
    DecentralizedState,
    DistributedVirtualMachine,
    FullSynchronyState,
    NeighborhoodState,
)
from repro.netsim import lan, mesh_neighborhoods, two_clusters, wan
from repro.registry import ServiceRegistry, UddiRegistry, WsilDocument
from repro.tools import generate_stub_source, generate_wsdl
from repro.util.errors import HarnessError

__version__ = "2.0.0"

__all__ = [
    "HarnessDvm",
    "HarnessKernel",
    "Plugin",
    "move_component",
    "ClientContext",
    "DynamicStubFactory",
    "ApplicationServerContainer",
    "ComponentContainer",
    "LightweightContainer",
    "DecentralizedState",
    "DistributedVirtualMachine",
    "FullSynchronyState",
    "NeighborhoodState",
    "lan",
    "mesh_neighborhoods",
    "two_clusters",
    "wan",
    "ServiceRegistry",
    "UddiRegistry",
    "WsilDocument",
    "generate_stub_source",
    "generate_wsdl",
    "HarnessError",
    "__version__",
]
