"""Virtual network fabric: cost model, accounting, failures, partitions."""

import pytest

from repro.netsim.fabric import HostDownError, LinkModel, VirtualNetwork
from repro.transport.base import TransportMessage
from repro.util.errors import TransportError


def echo(message: TransportMessage) -> TransportMessage:
    return TransportMessage(message.content_type, message.payload)


@pytest.fixture
def net():
    network = VirtualNetwork()
    for name in ("a", "b", "c"):
        host = network.add_host(name)
        host.bind("svc", echo)
    return network


class TestLinkModel:
    def test_cost_formula(self):
        model = LinkModel(latency_s=0.01, bandwidth_Bps=1000)
        assert model.cost(500) == pytest.approx(0.01 + 0.5)

    def test_zero_bytes_cost_latency_only(self):
        assert LinkModel(latency_s=0.02, bandwidth_Bps=1e9).cost(0) == pytest.approx(0.02)

    def test_jitter_deterministic_with_seed(self):
        import random

        model = LinkModel(latency_s=0, bandwidth_Bps=1e9, jitter_s=0.01)
        a = model.cost(0, random.Random(7))
        b = model.cost(0, random.Random(7))
        assert a == b
        assert 0 <= a <= 0.01


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        with pytest.raises(TransportError):
            net.add_host("a")

    def test_unknown_host_rejected(self, net):
        with pytest.raises(TransportError):
            net.host("zzz")

    def test_loopback_is_cheap(self, net):
        lan = net.link_model("a", "b")
        loop = net.link_model("a", "a")
        assert loop.latency_s < lan.latency_s

    def test_link_override_symmetric(self, net):
        fast = LinkModel(latency_s=1e-6, bandwidth_Bps=1e10)
        net.set_link("a", "b", fast)
        assert net.link_model("a", "b") is fast
        assert net.link_model("b", "a") is fast
        assert net.link_model("a", "c") is not fast

    def test_link_override_asymmetric(self, net):
        fast = LinkModel(latency_s=1e-6)
        net.set_link("a", "b", fast, symmetric=False)
        assert net.link_model("a", "b") is fast
        assert net.link_model("b", "a") is not fast


class TestMessaging:
    def test_request_response(self, net):
        reply = net.request("a", "b", "svc", TransportMessage("t", b"ping"))
        assert reply.payload == b"ping"

    def test_unknown_endpoint(self, net):
        with pytest.raises(TransportError):
            net.request("a", "b", "ghost", TransportMessage("t", b""))

    def test_accounting_counts_both_directions(self, net):
        net.request("a", "b", "svc", TransportMessage("t", b"x" * 100))
        assert net.total_messages == 2  # request + response
        assert net.total_bytes == 200
        assert net.stats[("a", "b")].messages == 1
        assert net.stats[("b", "a")].messages == 1

    def test_post_counts_once(self, net):
        net.post("a", "b", "svc", TransportMessage("t", b"x" * 10))
        assert net.total_messages == 1
        assert net.total_bytes == 10

    def test_simulated_time_accumulates(self, net):
        before = net.simulated_time
        net.request("a", "b", "svc", TransportMessage("t", b"x" * 1000))
        assert net.simulated_time > before

    def test_charge_without_dispatch(self, net):
        net.charge("a", "b", 1_000_000)
        assert net.total_bytes == 1_000_000
        assert net.total_messages == 1

    def test_reset_stats(self, net):
        net.request("a", "b", "svc", TransportMessage("t", b"x"))
        net.reset_stats()
        assert net.total_messages == 0
        assert net.simulated_time == 0.0
        assert net.stats == {}


class TestFailures:
    def test_crashed_host_unreachable(self, net):
        net.host("b").crash()
        with pytest.raises(HostDownError):
            net.request("a", "b", "svc", TransportMessage("t", b""))

    def test_restart_heals(self, net):
        net.host("b").crash()
        net.host("b").restart()
        assert net.request("a", "b", "svc", TransportMessage("t", b"ok")).payload == b"ok"

    def test_partition_blocks_cross_group(self, net):
        net.partition({"a"}, {"b", "c"})
        with pytest.raises(HostDownError):
            net.request("a", "b", "svc", TransportMessage("t", b""))

    def test_partition_allows_within_group(self, net):
        net.partition({"a"}, {"b", "c"})
        assert net.request("b", "c", "svc", TransportMessage("t", b"in")).payload == b"in"

    def test_heal_restores(self, net):
        net.partition({"a"}, {"b", "c"})
        net.heal()
        assert net.request("a", "b", "svc", TransportMessage("t", b"up")).payload == b"up"

    def test_duplicate_endpoint_rejected(self, net):
        with pytest.raises(TransportError):
            net.host("a").bind("svc", echo)

    def test_unbind_then_rebind(self, net):
        net.host("a").unbind("svc")
        net.host("a").bind("svc", echo)


class TestTopologyBuilders:
    def test_lan(self):
        from repro.netsim.topology import lan

        network = lan(5)
        assert len(network.hosts()) == 5
        assert network.link_model("node0", "node4").latency_s == pytest.approx(1e-4)

    def test_wan_slower_than_lan(self):
        from repro.netsim.topology import lan, wan

        assert (
            wan(2).link_model("node0", "node1").latency_s
            > lan(2).link_model("node0", "node1").latency_s
        )

    def test_two_clusters(self):
        from repro.netsim.topology import two_clusters

        network = two_clusters(3)
        intra = network.link_model("a0", "a1")
        inter = network.link_model("a0", "b0")
        assert intra.latency_s < inter.latency_s

    def test_mesh_neighborhoods(self):
        from repro.netsim.topology import mesh_neighborhoods

        network = mesh_neighborhoods(6, neighborhood=1)
        near = network.link_model("node0", "node1")
        far = network.link_model("node0", "node3")
        assert near.latency_s < far.latency_s
        # ring wrap-around: node5 and node0 are neighbours
        assert network.link_model("node5", "node0").latency_s == near.latency_s


class TestFlakyLinks:
    def test_request_phase_drop(self, net):
        net.set_link_faults("a", "b", drop_rate=1.0, symmetric=False)
        from repro.netsim.fabric import MessageDroppedError

        with pytest.raises(MessageDroppedError) as info:
            net.request("a", "b", "svc", TransportMessage("t", b"x"))
        assert info.value.phase == "request"
        assert (info.value.src, info.value.dst) == ("a", "b")

    def test_response_phase_drop(self, net):
        from repro.netsim.fabric import MessageDroppedError

        calls = []
        net.host("b").unbind("svc")
        net.host("b").bind("svc", lambda m: (calls.append(1), echo(m))[1])
        net.set_link_faults("b", "a", drop_rate=1.0, symmetric=False)
        with pytest.raises(MessageDroppedError) as info:
            net.request("a", "b", "svc", TransportMessage("t", b"x"))
        assert info.value.phase == "response"
        assert calls == [1]  # the handler DID run — the ambiguity retries must respect

    def test_drop_is_a_transport_error(self):
        from repro.netsim.fabric import MessageDroppedError

        assert issubclass(MessageDroppedError, TransportError)

    def test_duplication_runs_handler_twice(self, net):
        calls = []
        net.host("b").unbind("svc")
        net.host("b").bind("svc", lambda m: (calls.append(1), echo(m))[1])
        net.set_link_faults("a", "b", duplicate_rate=1.0, symmetric=False)
        reply = net.request("a", "b", "svc", TransportMessage("t", b"x"))
        assert reply.payload == b"x"
        assert calls == [1, 1]

    def test_duplicate_leg_charged(self, net):
        net.set_link_faults("a", "b", duplicate_rate=1.0, symmetric=False)
        net.reset_stats()
        net.request("a", "b", "svc", TransportMessage("t", b"xyz"))
        assert net.stats[("a", "b")].messages == 2  # original + duplicate
        assert net.stats[("a", "b")].bytes == 6

    def test_post_drops_too(self, net):
        from repro.netsim.fabric import MessageDroppedError

        net.set_link_faults("a", "b", drop_rate=1.0, symmetric=False)
        with pytest.raises(MessageDroppedError):
            net.post("a", "b", "svc", TransportMessage("t", b"x"))

    def test_drop_pattern_deterministic_per_seed(self):
        def pattern(seed: int) -> list[bool]:
            network = VirtualNetwork(seed=seed)
            for name in ("a", "b"):
                network.add_host(name).bind("svc", echo)
            network.set_default_faults(drop_rate=0.5)
            outcomes = []
            for _ in range(32):
                try:
                    network.request("a", "b", "svc", TransportMessage("t", b"x"))
                    outcomes.append(True)
                except TransportError:
                    outcomes.append(False)
            return outcomes

        assert pattern(9) == pattern(9)
        assert pattern(9) != pattern(10)
        assert False in pattern(9) and True in pattern(9)

    def test_default_faults_leave_explicit_links_alone(self, net):
        net.set_link(
            "a", "b", LinkModel(latency_s=1e-6, bandwidth_Bps=1e9), symmetric=True
        )
        net.set_default_faults(drop_rate=1.0)
        # a<->b has an explicit clean model; a->c uses the flaky default
        net.request("a", "b", "svc", TransportMessage("t", b"x"))
        from repro.netsim.fabric import MessageDroppedError

        with pytest.raises(MessageDroppedError):
            net.request("a", "c", "svc", TransportMessage("t", b"x"))


class TestSimulatedTimeout:
    def test_round_trip_exceeding_timeout_raises(self, net):
        from repro.util.errors import HarnessTimeoutError

        net.set_link("a", "b", LinkModel(latency_s=1.0, bandwidth_Bps=1e9))
        with pytest.raises(HarnessTimeoutError):
            net.request("a", "b", "svc", TransportMessage("t", b"x"), timeout=0.5)

    def test_timeout_raised_after_dispatch(self, net):
        # the destination did the work: real timeouts carry that ambiguity
        from repro.util.errors import HarnessTimeoutError

        calls = []
        net.host("b").unbind("svc")
        net.host("b").bind("svc", lambda m: (calls.append(1), echo(m))[1])
        net.set_link("a", "b", LinkModel(latency_s=1.0, bandwidth_Bps=1e9))
        with pytest.raises(HarnessTimeoutError):
            net.request("a", "b", "svc", TransportMessage("t", b"x"), timeout=0.1)
        assert calls == [1]

    def test_fast_round_trip_within_timeout(self, net):
        reply = net.request("a", "b", "svc", TransportMessage("t", b"x"), timeout=10.0)
        assert reply.payload == b"x"
