"""Wall and virtual clocks, stopwatch, deadlines."""

import pytest

from repro.util.clock import Deadline, Stopwatch, VirtualClock, WallClock


class TestWallClock:
    def test_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_zero_and_negative_are_noops(self):
        clock = WallClock()
        clock.sleep(0)
        clock.sleep(-1)  # must not raise


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(2.5)
        assert clock.now() == 2.5

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-0.1)

    def test_callbacks_fire_in_timestamp_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(3.0, lambda: fired.append("c"))
        clock.advance(2.5)
        assert fired == ["a", "b"]
        clock.advance(1.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_registration_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(1))
        clock.call_at(1.0, lambda: fired.append(2))
        clock.advance(1.0)
        assert fired == [1, 2]

    def test_run_until_idle(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(10.0, lambda: fired.append("x"))
        clock.run_until_idle()
        assert fired == ["x"]
        assert clock.now() == 10.0

    def test_callback_scheduling_callback(self):
        clock = VirtualClock()
        fired = []

        def first():
            fired.append("first")
            clock.call_at(2.0, lambda: fired.append("second"))

        clock.call_at(1.0, first)
        clock.advance(5.0)
        assert fired == ["first", "second"]


class TestStopwatch:
    def test_elapsed_with_virtual_clock(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        clock.advance(3.0)
        assert watch.elapsed() == pytest.approx(3.0)
        watch.restart()
        assert watch.elapsed() == 0.0


class TestDeadline:
    def test_infinite_deadline(self):
        deadline = Deadline(None)
        assert not deadline.expired
        assert deadline.remaining() is None

    def test_expiry_with_virtual_clock(self):
        clock = VirtualClock()
        deadline = Deadline(5.0, clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(5.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_remaining_never_negative(self):
        clock = VirtualClock()
        deadline = Deadline(1.0, clock)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0
