"""The command-line toolkit front end."""

import subprocess
import sys

import pytest

from repro.tools.__main__ import main
from repro.wsdl.io import document_from_string


class TestWsdlgenCommand:
    def test_emits_valid_wsdl(self, capsys):
        assert main(["wsdlgen", "repro.plugins.services:WSTime"]) == 0
        out = capsys.readouterr().out
        document = document_from_string(out)
        assert document.name == "WSTime"
        assert document.binding("WSTimeSoapBinding")

    def test_binding_selection(self, capsys):
        main(["wsdlgen", "repro.plugins.services:MatMul", "--bindings", "xdr"])
        out = capsys.readouterr().out
        document = document_from_string(out)
        assert [b.name for b in document.bindings] == ["MatMulXdrBinding"]

    def test_custom_name_and_namespace(self, capsys):
        main(["wsdlgen", "repro.plugins.services:MatMul",
              "--name", "FastMM", "--namespace", "urn:custom"])
        out = capsys.readouterr().out
        document = document_from_string(out)
        assert document.name == "FastMM"
        assert document.target_namespace == "urn:custom"


class TestServicegenCommand:
    def test_emits_compilable_stub(self, capsys):
        assert main(["servicegen", "repro.plugins.services:WSTime",
                     "--class-name", "TimeClient"]) == 0
        out = capsys.readouterr().out
        compile(out, "<cli-stub>", "exec")
        assert "class TimeClient:" in out


class TestQueryCommand:
    def test_query_over_file(self, tmp_path, capsys):
        main(["wsdlgen", "repro.plugins.services:MatMul"])
        wsdl_text = capsys.readouterr().out
        path = tmp_path / "matmul.wsdl"
        path.write_text(wsdl_text)
        assert main(["query", str(path), "//portType/@name"]) == 0
        assert capsys.readouterr().out.strip() == "MatMulPortType"


class TestSubprocessInvocation:
    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "wsdlgen",
             "repro.plugins.services:WSTime"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "WSTimePortType" in result.stdout
