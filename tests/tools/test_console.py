"""The interactive Harness console."""

import io

import pytest

from repro.tools.console import HarnessConsole


@pytest.fixture
def console():
    out = io.StringIO()
    shell = HarnessConsole(stdout=out)
    yield shell, out
    shell.do_quit("")


def run(shell, out, *lines):
    for line in lines:
        shell.onecmd(line)
    return out.getvalue()


class TestConstruction:
    def test_network_and_dvm(self, console):
        shell, out = console
        text = run(shell, out, "network 3", "dvm demo")
        assert "3 hosts" in text
        assert "DVM 'demo' created" in text

    def test_dvm_requires_network(self, console):
        shell, out = console
        text = run(shell, out, "dvm demo")
        assert "create a network first" in text

    def test_add_nodes_and_status(self, console):
        shell, out = console
        text = run(shell, out, "network 2", "dvm demo", "add node0", "add node1",
                   "status node0")
        assert "node0" in text and "node1" in text
        assert '"members"' in text

    def test_unknown_scheme(self, console):
        shell, out = console
        text = run(shell, out, "network 2", "dvm demo psychic")
        assert "unknown scheme" in text

    def test_scheme_selection(self, console):
        shell, out = console
        text = run(shell, out, "network 2", "dvm demo decentralized", "add node0",
                   "status node0")
        assert '"scheme": "decentralized"' in text


class TestDeploymentAndCalls:
    def test_deploy_list_call(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 2", "dvm demo", "add node0", "add node1",
            "deploy node1 repro.plugins.services:MatMul",
            "list",
            "call node0 MatMul multiply [[1.0,0.0],[0.0,1.0]] [[5.0,6.0],[7.0,8.0]]",
        )
        assert "MatMul @ node1" in text
        assert "5." in text and "8." in text

    def test_call_scalar_service(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 1", "dvm demo", "add node0",
            "deploy node0 repro.plugins.services:CounterService",
            "call node0 CounterService increment 5",
            "call node0 CounterService value",
        )
        assert text.rstrip().endswith("5")

    def test_wsdl_output(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 1", "dvm demo", "add node0",
            "deploy node0 repro.plugins.services:WSTime",
            "wsdl WSTime",
        )
        assert "<wsdl:definitions" in text
        assert "WSTimePortType" in text

    def test_move(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 2", "dvm demo", "add node0", "add node1",
            "deploy node0 repro.plugins.services:CounterService",
            "call node0 CounterService increment 3",
            "move CounterService node1",
            "call node1 CounterService value",
        )
        assert "now lives on node1" in text
        assert text.rstrip().endswith("3")  # state moved

    def test_plugin_everywhere(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 2", "dvm demo", "add node0", "add node1",
            "plugin all repro.plugins.hmsg:MessageTransportPlugin",
            "status node0",
        )
        assert '"hmsg"' in text

    def test_traffic_accounting(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 2", "dvm demo", "add node0", "add node1",
            "deploy node0 repro.plugins.services:WSTime",
            "traffic",
        )
        assert "messages" in text and "simulated" in text


class TestObservabilityCommands:
    def test_metrics_without_dvm_is_bare_registry(self, console):
        from repro.obs import metrics

        shell, out = console
        metrics.registry.counter("console.demo").inc(2)
        text = run(shell, out, "metrics console.")
        assert '"console.demo"' in text
        assert '"value": 2' in text

    def test_metrics_snapshot_reflects_console_driven_calls(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 1", "dvm demo", "add node0",
            "deploy node0 repro.plugins.services:CounterService",
            "call node0 CounterService increment 5",
            "metrics dvm.lookup",
        )
        assert '"dvm": "demo"' in text
        assert '"dvm.lookup.misses"' in text
        # the call above resolved the service once: at least one lookup miss
        assert '"tracing": false' in text

    def test_trace_toggle_and_status(self, console):
        from repro.obs import trace

        shell, out = console
        text = run(shell, out, "trace status", "trace on", "trace status",
                   "trace off", "trace status")
        assert "tracing disabled" in text
        assert "tracing enabled" in text
        assert trace.ENABLED is False  # left off at the end

    def test_trace_last_shows_spans_from_traced_calls(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 2", "dvm demo", "add node0", "add node1",
            "deploy node1 repro.plugins.services:CounterService",
            "trace on",
            # cross-node: the call rides the sim transport, so the
            # instrumented TransportStub records a client span
            "call node0 CounterService increment 7",
            "trace last 5",
            "trace off",
        )
        assert "client:sim:increment" in text
        assert "trace=" in text and "span=" in text

    def test_trace_last_empty_and_usage(self, console):
        shell, out = console
        text = run(shell, out, "trace last", "trace sideways")
        assert "(no spans recorded)" in text
        assert "usage: trace" in text


class TestErrorHandling:
    def test_harness_errors_reported_not_raised(self, console):
        shell, out = console
        text = run(shell, out, "network 1", "dvm demo", "add node0", "add node0")
        assert "error:" in text

    def test_bad_json_reported(self, console):
        shell, out = console
        text = run(
            shell, out,
            "network 1", "dvm demo", "add node0",
            "deploy node0 repro.plugins.services:CounterService",
            "call node0 CounterService increment {not-json",
        )
        assert "error:" in text

    def test_usage_messages(self, console):
        shell, out = console
        text = run(shell, out, "network 1", "dvm d", "call x")
        assert "usage: call" in text

    def test_quit_closes_dvm(self, console):
        shell, out = console
        run(shell, out, "network 1", "dvm demo", "add node0")
        assert shell.onecmd("quit") is True
        assert shell.harness is None


class TestScenarioVerb:
    def test_list_names_every_bundled_scenario(self, console):
        shell, out = console
        text = run(shell, out, "scenario list")
        from repro.scenario import library

        for name in library.scenario_names():
            assert name in text

    def test_run_prints_check_verdicts(self, console):
        shell, out = console
        text = run(shell, out, "scenario run partition-heal")
        assert "PASS no_lost_calls" in text
        assert "partition-heal passed" in text

    def test_run_needs_no_prebuilt_dvm(self, console):
        shell, out = console  # scenarios build their own world
        assert shell.harness is None
        run(shell, out, "scenario run slow-consumer")
        assert shell.harness is None

    def test_seed_override(self, console):
        shell, out = console
        text = run(shell, out, "scenario run partition-heal 424242")
        assert "seed 424242" in text

    def test_unknown_scenario_is_reported(self, console):
        shell, out = console
        text = run(shell, out, "scenario run no-such-thing")
        assert "error:" in text

    def test_usage(self, console):
        shell, out = console
        text = run(shell, out, "scenario bogus")
        assert "usage: scenario" in text
