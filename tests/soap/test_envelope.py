"""SOAP 1.1 envelope construction/parsing and faults."""

import numpy as np
import pytest

from repro.soap.envelope import (
    build_call_envelope,
    build_fault_envelope,
    build_reply_envelope,
    parse_call_envelope,
    parse_reply_envelope,
)
from repro.util.errors import EncodingError, SoapFaultError
from repro.xmlkit import parse


class TestCallEnvelope:
    def test_round_trip(self):
        data = build_call_envelope("matmul#1", "getResult", (np.eye(2), 5))
        target, operation, args = parse_call_envelope(data)
        assert target == "matmul#1"
        assert operation == "getResult"
        assert np.array_equal(args[0], np.eye(2))
        assert args[1] == 5

    def test_is_well_formed_soap(self):
        root = parse(build_call_envelope("t", "op", (1,)))
        assert root.name.local == "Envelope"
        body = root.find("Body")
        assert body is not None
        assert body.children[0].name.local == "op"

    def test_no_args(self):
        _, operation, args = parse_call_envelope(build_call_envelope("t", "ping", ()))
        assert operation == "ping" and args == []

    def test_arg_order_preserved(self):
        _, _, args = parse_call_envelope(build_call_envelope("t", "op", ("a", "b", "c")))
        assert args == ["a", "b", "c"]

    def test_empty_body_rejected(self):
        with pytest.raises(EncodingError):
            parse_call_envelope(
                b'<?xml version="1.0"?><Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body/></Envelope>'
            )

    def test_non_envelope_rejected(self):
        with pytest.raises(EncodingError):
            parse_call_envelope(b"<notsoap/>")

    def test_missing_body_rejected(self):
        with pytest.raises(EncodingError):
            parse_call_envelope(b"<Envelope/>")


class TestReplyEnvelope:
    def test_round_trip(self):
        assert parse_reply_envelope(build_reply_envelope({"x": 1})) == {"x": 1}

    def test_none_result(self):
        assert parse_reply_envelope(build_reply_envelope(None)) is None

    def test_array_result(self, rng):
        array = rng.random(64)
        assert np.array_equal(parse_reply_envelope(build_reply_envelope(array)), array)

    def test_reply_without_return_rejected(self):
        data = build_call_envelope("t", "opResponse", ())
        with pytest.raises(EncodingError):
            parse_reply_envelope(data)


class TestFaults:
    def test_fault_round_trip(self):
        data = build_fault_envelope("soapenv:Server", "exploded", detail="trace here")
        with pytest.raises(SoapFaultError) as info:
            parse_reply_envelope(data)
        assert info.value.faultcode == "soapenv:Server"
        assert info.value.faultstring == "exploded"
        assert info.value.detail == "trace here"

    def test_fault_without_detail(self):
        with pytest.raises(SoapFaultError) as info:
            parse_reply_envelope(build_fault_envelope("soapenv:Client", "bad input"))
        assert info.value.detail is None

    def test_foreign_fault_shape_tolerated(self):
        # a fault from a non-Harness SOAP stack, unqualified
        xml = (
            b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body>'
            b"<Fault><faultcode>Server</faultcode>"
            b"<faultstring>nope</faultstring></Fault></Body></Envelope>"
        )
        with pytest.raises(SoapFaultError, match="nope"):
            parse_reply_envelope(xml)


class TestCodec:
    def test_codec_round_trip_both_modes(self, rng):
        from repro.soap.codec import SoapMessageCodec

        array = rng.random(32)
        for mode in ("base64", "items"):
            codec = SoapMessageCodec(mode)
            target, op, args = codec.decode_call(codec.encode_call("t", "op", (array,)))
            assert np.array_equal(args[0], array)
            result = codec.decode_reply(codec.encode_reply(array))
            assert np.array_equal(result, array)

    def test_codec_fault_reply(self):
        from repro.soap.codec import SoapMessageCodec

        codec = SoapMessageCodec()
        with pytest.raises(SoapFaultError, match="went wrong"):
            codec.decode_reply(codec.encode_reply(fault="went wrong"))

    def test_fault_to_exception_helper(self):
        from repro.soap.codec import SoapMessageCodec

        codec = SoapMessageCodec()
        assert codec.fault_to_exception(codec.encode_reply(1)) is None
        fault = codec.fault_to_exception(codec.encode_reply(fault="f"))
        assert isinstance(fault, SoapFaultError)

    def test_content_types(self):
        from repro.soap.codec import SoapMessageCodec

        assert SoapMessageCodec("base64").content_type == "text/xml"
        assert SoapMessageCodec("items").content_type == "text/xml; arrays=items"
