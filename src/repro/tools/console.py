"""The Harness console — an interactive DVM construction shell.

The original Harness distribution shipped a user console for the Figure 1
workflow ("DVM's are created by users and 'constructed' by first adding
nodes … and subsequently deploying plugins on each node").  This is that
console for Harness II: a line-oriented shell over a simulated fabric.

Run interactively::

    python -m repro.tools.console

or scripted::

    python -m repro.tools.console <<'EOF'
    network 3
    dvm demo
    add node0
    add node1
    deploy node1 repro.plugins.services:MatMul
    status node0
    call node0 MatMul multiply [[1.0,2.0],[3.0,4.0]] [[1.0,0.0],[0.0,1.0]]
    EOF

Arguments to ``call`` are JSON literals; numeric nested lists become numpy
arrays on the wire automatically.
"""

from __future__ import annotations

import cmd
import json
import shlex

from repro.core.builder import COHERENCY_SCHEMES, HarnessDvm
from repro.netsim.topology import lan
from repro.util.errors import HarnessError

__all__ = ["HarnessConsole"]


class HarnessConsole(cmd.Cmd):
    """Interactive shell for building and driving a Harness II DVM."""

    intro = "Harness II console — 'help' lists commands, 'quit' exits."
    prompt = "harness> "

    def __init__(self, stdout=None):
        super().__init__(stdout=stdout)
        self.network = None
        self.harness: HarnessDvm | None = None

    # -- helpers -----------------------------------------------------------------

    def _say(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _need_dvm(self) -> HarnessDvm | None:
        if self.harness is None:
            self._say("error: no DVM — run 'network N' then 'dvm NAME' first")
        return self.harness

    def onecmd(self, line: str) -> bool:  # noqa: D102 (cmd API)
        try:
            return super().onecmd(line)
        except HarnessError as exc:
            self._say(f"error: {exc}")
            return False
        except (ValueError, json.JSONDecodeError) as exc:
            self._say(f"error: {exc}")
            return False

    # -- construction -----------------------------------------------------------------

    def do_network(self, arg: str) -> None:
        """network N — create a simulated LAN of N hosts (node0..nodeN-1)."""
        count = int(arg.strip() or "3")
        self.network = lan(count)
        self._say(f"created LAN fabric with {count} hosts")

    def do_dvm(self, arg: str) -> None:
        """dvm NAME [SCHEME] — create a DVM (scheme: full-synchrony |
        decentralized | neighborhood)."""
        if self.network is None:
            self._say("error: create a network first ('network N')")
            return
        parts = shlex.split(arg)
        if not parts:
            self._say("usage: dvm NAME [SCHEME]")
            return
        name = parts[0]
        scheme = parts[1] if len(parts) > 1 else "full-synchrony"
        if scheme not in COHERENCY_SCHEMES:
            self._say(f"error: unknown scheme {scheme!r} "
                      f"(choose from {sorted(COHERENCY_SCHEMES)})")
            return
        if self.harness is not None:
            self.harness.close()
        self.harness = HarnessDvm(name, self.network, coherency=scheme)
        self._say(f"DVM {name!r} created ({scheme})")

    def do_add(self, arg: str) -> None:
        """add HOST — enroll a host into the DVM (boots a kernel there)."""
        harness = self._need_dvm()
        if harness is None:
            return
        host = arg.strip()
        harness.add_node(host)
        self._say(f"node {host} joined; members: {harness.dvm.nodes()}")

    def do_plugin(self, arg: str) -> None:
        """plugin HOST|all IMPORT_PATH — load a plugin on one node or all."""
        harness = self._need_dvm()
        if harness is None:
            return
        parts = shlex.split(arg)
        if len(parts) != 2:
            self._say("usage: plugin HOST|all pkg.module:PluginClass")
            return
        where, path = parts
        if where == "all":
            harness.load_plugin_everywhere(path)
            self._say(f"loaded {path} on every node")
        else:
            harness.load_plugin(where, path)
            self._say(f"loaded {path} on {where}")

    def do_deploy(self, arg: str) -> None:
        """deploy HOST IMPORT_PATH [NAME] — deploy a component on a node."""
        harness = self._need_dvm()
        if harness is None:
            return
        parts = shlex.split(arg)
        if len(parts) < 2:
            self._say("usage: deploy HOST pkg.module:Class [NAME]")
            return
        from repro.bindings.stubs import load_type

        cls = load_type(parts[1])
        name = parts[2] if len(parts) > 2 else None
        handle = harness.deploy(parts[0], cls, name=name)
        self._say(f"deployed {handle.name} on {parts[0]} ({handle.instance_id})")

    # -- inspection ------------------------------------------------------------------------

    def do_status(self, arg: str) -> None:
        """status HOST — the DVM status as observed from HOST."""
        harness = self._need_dvm()
        if harness is None:
            return
        status = harness.status(arg.strip() or harness.dvm.nodes()[0])
        self._say(json.dumps(status, indent=2, sort_keys=True))

    def do_list(self, arg: str) -> None:
        """list — the unified component namespace (name → node)."""
        harness = self._need_dvm()
        if harness is None:
            return
        nodes = harness.dvm.nodes()
        if not nodes:
            self._say("(no nodes)")
            return
        index = harness.dvm.component_index(nodes[0])
        if not index:
            self._say("(no components)")
        for name, node in sorted(index.items()):
            self._say(f"{name} @ {node}")

    def do_wsdl(self, arg: str) -> None:
        """wsdl SERVICE — print the WSDL of a component (from any node)."""
        harness = self._need_dvm()
        if harness is None:
            return
        from repro.wsdl.io import document_to_string

        node = harness.dvm.nodes()[0]
        _, document = harness.lookup(node, arg.strip())
        self._say(document_to_string(document))

    def do_traffic(self, arg: str) -> None:
        """traffic — fabric accounting (messages / bytes / simulated time)."""
        if self.network is None:
            self._say("error: no network")
            return
        self._say(
            f"{self.network.total_messages} messages, "
            f"{self.network.total_bytes} bytes, "
            f"{self.network.simulated_time * 1e3:.2f} ms simulated"
        )

    def do_metrics(self, arg: str) -> None:
        """metrics [PREFIX] — the observability snapshot (optionally only
        instruments whose names start with PREFIX)."""
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_trace.flush()  # land any in-flight bookkeeping before reading
        prefix = arg.strip()
        if self.harness is not None:
            snapshot = self.harness.metrics_snapshot(prefix)
        else:
            snapshot = {"metrics": obs_metrics.registry.snapshot(prefix)}
        self._say(json.dumps(snapshot, indent=2, sort_keys=True, default=str))

    def do_top(self, arg: str) -> None:
        """top [json|prom] — the cluster-merged metrics view.

        Deploys a MetricsService on every member (idempotent), pulls each
        node's snapshot over RPC with failure-detector awareness, and
        renders the merged table; ``top json`` prints the full cluster
        snapshot, ``top prom`` the Prometheus text exposition.
        """
        harness = self._need_dvm()
        if harness is None:
            return
        from repro.obs import trace as obs_trace
        from repro.obs.cluster import ClusterCollector, deploy_metrics_services, render_top

        nodes = harness.dvm.nodes()
        if not nodes:
            self._say("(no nodes)")
            return
        obs_trace.flush()
        deploy_metrics_services(harness)
        collector = ClusterCollector.for_dvm(
            harness, nodes[0], detector=getattr(harness, "detector", None)
        )
        mode = arg.strip()
        if mode == "json":
            self._say(json.dumps(
                collector.cluster_snapshot(), indent=2, sort_keys=True, default=str
            ))
        elif mode == "prom":
            self._say(collector.as_prometheus().rstrip("\n"))
        else:
            self._say(render_top(collector.collect()))

    def do_trace(self, arg: str) -> None:
        """trace on|off|status|last [N] — control tracing / show recent spans."""
        from repro.obs import trace as obs_trace

        parts = shlex.split(arg) or ["status"]
        verb = parts[0]
        if verb == "on":
            obs_trace.enable(True)
            self._say("tracing enabled")
        elif verb == "off":
            obs_trace.enable(False)
            self._say("tracing disabled")
        elif verb == "status":
            obs_trace.flush()
            state = "enabled" if obs_trace.ENABLED else "disabled"
            self._say(f"tracing {state}; {len(obs_trace.recorder)} spans recorded")
        elif verb == "last":
            count = int(parts[1]) if len(parts) > 1 else 10
            obs_trace.flush()
            spans = obs_trace.recorder.last(count)
            if not spans:
                self._say("(no spans recorded)")
            for span in spans:
                self._say(span.describe())
        else:
            self._say("usage: trace on|off|status|last [N]")

    # -- invocation ---------------------------------------------------------------------------

    def do_call(self, arg: str) -> None:
        """call HOST SERVICE OPERATION [JSON_ARG ...] — invoke an operation."""
        harness = self._need_dvm()
        if harness is None:
            return
        parts = shlex.split(arg)
        if len(parts) < 3:
            self._say("usage: call HOST SERVICE OPERATION [JSON_ARG ...]")
            return
        host, service, operation = parts[:3]
        args = [_coerce(json.loads(text)) for text in parts[3:]]
        stub = harness.stub(host, service)
        try:
            result = stub.invoke(operation, *args)
        finally:
            stub.close()
        self._say(_render(result))

    def do_move(self, arg: str) -> None:
        """move SERVICE HOST — migrate a component to another node."""
        harness = self._need_dvm()
        if harness is None:
            return
        parts = shlex.split(arg)
        if len(parts) != 2:
            self._say("usage: move SERVICE HOST")
            return
        handle = harness.move(parts[0], parts[1])
        self._say(f"{handle.name} now lives on {parts[1]}")

    # -- chaos scenarios ------------------------------------------------------------------------

    def do_scenario(self, arg: str) -> None:
        """scenario list | scenario run NAME [SEED] — packaged chaos scenarios.

        ``list`` names every manifest shipped with :mod:`repro.scenario`;
        ``run`` plays one on the fake clock and prints its check verdicts.
        """
        from repro.scenario import library, run_scenario

        parts = shlex.split(arg)
        if not parts or parts[0] == "list":
            for name in library.scenario_names():
                manifest = library.load_scenario(name)
                blurb = manifest.description.split(". ")[0].rstrip(".")
                self._say(f"{name:26s} {blurb}")
            return
        if parts[0] != "run" or len(parts) < 2:
            self._say("usage: scenario list | scenario run NAME [SEED]")
            return
        seed = int(parts[2]) if len(parts) > 2 else None
        result = run_scenario(library.manifest_path(parts[1]), seed=seed)
        for check in result.checks:
            mark = "PASS" if check.passed else "FAIL"
            self._say(f"  {mark} {check.check}: {check.detail}")
        verdict = "passed" if result.passed else "FAILED"
        self._say(
            f"{result.name} {verdict} (seed {result.seed}, "
            f"{result.n_events} events, sha256 {result.events_sha256[:12]}…)"
        )

    # -- exit -------------------------------------------------------------------------------------

    def do_quit(self, arg: str) -> bool:
        """quit — close the DVM and leave."""
        if self.harness is not None:
            self.harness.close()
            self.harness = None
        return True

    do_EOF = do_quit

    def emptyline(self) -> bool:  # no repeat-last-command surprises
        return False


def _coerce(value):
    """JSON → wire values: uniform numeric nested lists become ndarrays."""
    import numpy as np

    if isinstance(value, list):
        try:
            array = np.asarray(value, dtype=np.float64)
        except (ValueError, TypeError):
            return [_coerce(v) for v in value]
        if array.dtype == np.float64 and array.size:
            return array
        return [_coerce(v) for v in value]
    return value


def _render(result) -> str:
    import numpy as np

    if isinstance(result, np.ndarray):
        return np.array2string(result, precision=6, suppress_small=True)
    return json.dumps(result, default=str)


def main() -> int:  # pragma: no cover - interactive entry
    console = HarnessConsole()
    try:
        console.cmdloop()
    except KeyboardInterrupt:
        console.do_quit("")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
