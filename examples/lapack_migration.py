#!/usr/bin/env python
"""The Section 6 scenario: migrate an application towards its data.

"A user's application is composed of two main components: the application
logic and the computational library (e.g. LAPACK).  The user knows that a
given node provides a highly optimized version of the LAPACK service.  He
can simply run the application logic on his home node and obtain the
computational services from the remote node.  However … he can search for a
node that has a better connectivity … and upload his application component
to a container residing on that node.  Further, he can load his application
component to the same container that hosts the LAPACK service itself, and
take advantage of local bindings in order to minimize latency."

We build two LAN clusters joined by a WAN link: the user's home node is
``a0``; the optimized LAPACK service lives on ``b0``.  The application (an
iterative linear solver driver) runs at three placements and we report the
fabric's simulated communication cost for each.

Run:  python examples/lapack_migration.py
"""

import numpy as np

from repro import HarnessDvm, two_clusters
from repro.plugins import LinearAlgebraService


class SolverApp:
    """The user's application logic: repeatedly solves systems via the
    remote LAPACK service and accumulates a residual norm."""

    def __init__(self):
        self.residuals: list[float] = []

    def run(self, lapack_stub, n: int = 32, iterations: int = 5) -> float:
        rng = np.random.default_rng(7)
        total = 0.0
        for _ in range(iterations):
            a = rng.random((n, n)) + n * np.eye(n)
            b = rng.random(n)
            x = lapack_stub.solve(a, b)
            residual = float(np.linalg.norm(a @ x - b))
            self.residuals.append(residual)
            total += residual
        return total


def main() -> None:
    network = two_clusters(2)  # hosts a0,a1 (home cluster) and b0,b1
    with HarnessDvm("lapack-demo", network) as harness:
        harness.add_nodes("a0", "a1", "b0", "b1")
        harness.deploy("b0", LinearAlgebraService, name="LAPACK")
        harness.deploy("a0", SolverApp, name="SolverApp")

        placements = [
            ("home node a0 (WAN to the LAPACK service)", "a0"),
            ("better-connected node b1 (same LAN as LAPACK)", "b1"),
            ("LAPACK's own container on b0 (local binding)", "b0"),
        ]
        print(f"{'placement':<52} {'binding':>15} {'sim comm':>10}")
        for label, node in placements:
            if harness.dvm.component_index(node)["SolverApp"] != node:
                harness.move("SolverApp", node)
            app_stub = harness.stub(node, "SolverApp")
            lapack_stub = harness.stub(node, "LAPACK")
            network.reset_stats()
            app_stub.run(lapack_stub)
            # remote LAPACK calls ride the sim binding, so every call's
            # real encoded bytes are charged to the WAN or LAN link model
            print(f"{label:<52} {lapack_stub.protocol:>15} "
                  f"{network.simulated_time * 1e3:>8.2f}ms")
            lapack_stub.close()
            app_stub.close()

        print("\nlocal bindings on b0 eliminate marshalling entirely —")
        print("the paper's motivation for the JavaObject/local-instance scheme.")


if __name__ == "__main__":
    main()
