"""WSDL 1.1 document model.

Mirrors the structure of the paper's Figures 7 and 8: a document has an
*abstract* part (messages, port types with operations) and a *concrete*
part (bindings associating a port type with a protocol, and services whose
ports attach bindings to endpoint addresses).  "The separation of the
abstract, interface description part from the concrete, implementation
dependent access point description part, allows the reuse of WSDL documents"
(Section 4) — so the model keeps the halves independently constructible and
:func:`repro.wsdl.model.WsdlDocument.merge` can recombine them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.errors import WsdlError
from repro.wsdl.extensions import ExtensibilityElement
from repro.xmlkit import XmlElement

__all__ = [
    "WsdlPart",
    "WsdlMessage",
    "WsdlOperation",
    "WsdlPortType",
    "WsdlBindingOperation",
    "WsdlBinding",
    "WsdlPort",
    "WsdlService",
    "WsdlDocument",
]


@dataclass(frozen=True)
class WsdlPart:
    """One ``<part>`` of a message: a named, XSD-typed parameter."""

    name: str
    type_name: str  # e.g. "xsd:double" or "harness:doubleArray"


@dataclass(frozen=True)
class WsdlMessage:
    """A ``<message>``: the typed payload of one direction of an operation."""

    name: str
    parts: tuple[WsdlPart, ...] = ()

    def part(self, name: str) -> WsdlPart:
        for part in self.parts:
            if part.name == name:
                return part
        raise WsdlError(f"message {self.name!r} has no part {name!r}")


@dataclass(frozen=True)
class WsdlOperation:
    """An ``<operation>``: "an exchange of messages between the client and
    the server" (Section 4).  ``input``/``output`` name messages; an empty
    output means a one-way operation."""

    name: str
    input_message: str
    output_message: str = ""


@dataclass(frozen=True)
class WsdlPortType:
    """A ``<portType>``: "a group of operations" (Section 4)."""

    name: str
    operations: tuple[WsdlOperation, ...] = ()

    def operation(self, name: str) -> WsdlOperation:
        for op in self.operations:
            if op.name == name:
                return op
        raise WsdlError(f"portType {self.name!r} has no operation {name!r}")

    def operation_names(self) -> tuple[str, ...]:
        return tuple(op.name for op in self.operations)


@dataclass(frozen=True)
class WsdlBindingOperation:
    """Binding detail for one operation (e.g. its SOAPAction)."""

    name: str
    extensions: tuple[ExtensibilityElement, ...] = ()


@dataclass(frozen=True)
class WsdlBinding:
    """A ``<binding>``: "the association of a name, a port type and a
    binding type" (Section 4).  The binding *type* is expressed by its
    extensibility elements (soap:binding, harness:localBinding, …)."""

    name: str
    port_type: str
    extensions: tuple[ExtensibilityElement, ...] = ()
    operations: tuple[WsdlBindingOperation, ...] = ()

    def extension_of(self, ext_type: type) -> ExtensibilityElement | None:
        for ext in self.extensions:
            if isinstance(ext, ext_type):
                return ext
        return None

    @property
    def protocol(self) -> str:
        """Short protocol tag derived from the binding's extensions."""
        from repro.wsdl.extensions import (
            LocalBindingExt,
            LocalInstanceBindingExt,
            MimeBindingExt,
            SimBindingExt,
            SoapBindingExt,
            XdrBindingExt,
        )

        if self.extension_of(LocalInstanceBindingExt) is not None:
            return "local-instance"
        if self.extension_of(LocalBindingExt) is not None:
            return "local"
        if self.extension_of(SimBindingExt) is not None:
            return "sim"
        if self.extension_of(XdrBindingExt) is not None:
            return "xdr"
        if self.extension_of(MimeBindingExt) is not None:
            return "mime"
        if self.extension_of(SoapBindingExt) is not None:
            return "soap"
        return "unknown"


@dataclass(frozen=True)
class WsdlPort:
    """A ``<port>``: one access point — a binding plus an address."""

    name: str
    binding: str
    extensions: tuple[ExtensibilityElement, ...] = ()

    def extension_of(self, ext_type: type) -> ExtensibilityElement | None:
        for ext in self.extensions:
            if isinstance(ext, ext_type):
                return ext
        return None


@dataclass(frozen=True)
class WsdlService:
    """A ``<service>``: the named collection of ports for one component."""

    name: str
    ports: tuple[WsdlPort, ...] = ()
    documentation: str = ""

    def port(self, name: str) -> WsdlPort:
        for port in self.ports:
            if port.name == name:
                return port
        raise WsdlError(f"service {self.name!r} has no port {name!r}")


@dataclass(frozen=True)
class WsdlDocument:
    """A complete WSDL 1.1 document."""

    name: str
    target_namespace: str
    messages: tuple[WsdlMessage, ...] = ()
    port_types: tuple[WsdlPortType, ...] = ()
    bindings: tuple[WsdlBinding, ...] = ()
    services: tuple[WsdlService, ...] = ()
    documentation: str = ""

    # -- lookups -------------------------------------------------------------

    def message(self, name: str) -> WsdlMessage:
        for message in self.messages:
            if message.name == name:
                return message
        raise WsdlError(f"document {self.name!r} has no message {name!r}")

    def port_type(self, name: str) -> WsdlPortType:
        for port_type in self.port_types:
            if port_type.name == name:
                return port_type
        raise WsdlError(f"document {self.name!r} has no portType {name!r}")

    def binding(self, name: str) -> WsdlBinding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise WsdlError(f"document {self.name!r} has no binding {name!r}")

    def service(self, name: str) -> WsdlService:
        for service in self.services:
            if service.name == name:
                return service
        raise WsdlError(f"document {self.name!r} has no service {name!r}")

    # -- structure helpers -------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity; raises :class:`WsdlError` on failure.

        * every binding references a defined portType
        * every binding operation references an operation of that portType
        * every port references a defined binding
        * every operation's input/output reference defined messages
        * names within each section are unique
        """
        for section, names in (
            ("message", [m.name for m in self.messages]),
            ("portType", [p.name for p in self.port_types]),
            ("binding", [b.name for b in self.bindings]),
            ("service", [s.name for s in self.services]),
        ):
            dupes = {n for n in names if names.count(n) > 1}
            if dupes:
                raise WsdlError(f"duplicate {section} names: {sorted(dupes)}")
        message_names = {m.name for m in self.messages}
        for port_type in self.port_types:
            for op in port_type.operations:
                if op.input_message and op.input_message not in message_names:
                    raise WsdlError(
                        f"operation {op.name!r} input references undefined "
                        f"message {op.input_message!r}"
                    )
                if op.output_message and op.output_message not in message_names:
                    raise WsdlError(
                        f"operation {op.name!r} output references undefined "
                        f"message {op.output_message!r}"
                    )
        port_type_names = {p.name for p in self.port_types}
        for binding in self.bindings:
            if binding.port_type not in port_type_names:
                raise WsdlError(
                    f"binding {binding.name!r} references undefined portType "
                    f"{binding.port_type!r}"
                )
            declared_ops = set(self.port_type(binding.port_type).operation_names())
            for bop in binding.operations:
                if bop.name not in declared_ops:
                    raise WsdlError(
                        f"binding {binding.name!r} declares operation {bop.name!r} "
                        f"not present in portType {binding.port_type!r}"
                    )
        binding_names = {b.name for b in self.bindings}
        for service in self.services:
            for port in service.ports:
                if port.binding not in binding_names:
                    raise WsdlError(
                        f"port {port.name!r} references undefined binding "
                        f"{port.binding!r}"
                    )

    def abstract_part(self) -> "WsdlDocument":
        """The implementation-independent half (messages + portTypes)."""
        return replace(self, bindings=(), services=())

    def concrete_part(self) -> "WsdlDocument":
        """The implementation-dependent half (bindings + services)."""
        return replace(self, messages=(), port_types=())

    def merge(self, other: "WsdlDocument") -> "WsdlDocument":
        """Recombine split documents (abstract + concrete reuse, Section 4)."""
        merged = replace(
            self,
            messages=self.messages + other.messages,
            port_types=self.port_types + other.port_types,
            bindings=self.bindings + other.bindings,
            services=self.services + other.services,
        )
        merged.validate()
        return merged

    def with_service(self, service: WsdlService) -> "WsdlDocument":
        """A copy with *service* appended."""
        return replace(self, services=self.services + (service,))

    def with_binding(self, binding: WsdlBinding) -> "WsdlDocument":
        """A copy with *binding* appended."""
        return replace(self, bindings=self.bindings + (binding,))

    def ports_by_protocol(self) -> dict[str, list[tuple[WsdlService, WsdlPort]]]:
        """Index every port in the document by its binding's protocol tag."""
        index: dict[str, list[tuple[WsdlService, WsdlPort]]] = {}
        for service in self.services:
            for port in service.ports:
                protocol = self.binding(port.binding).protocol
                index.setdefault(protocol, []).append((service, port))
        return index
