"""C9 wire-path concurrency — multiplexed vs serialized XDR/TCP.

The protocol-v2 wire path tags every frame with a correlation id so many
in-flight requests share a socket, and the server offloads decode/dispatch
to a pool instead of handling frames head-of-line.  This experiment
measures what that buys: N client threads hammer ONE stub whose service op
holds the connection for a small, GIL-releasing service time (modelling an
I/O- or compute-bound component), once over the multiplexed transport and
once over ``multiplex=False`` (one socket + serial lock — the protocol-v1
behaviour, kept as the A/B baseline).

Expected shape: serialized throughput is flat (~1/service_time) no matter
how many client threads pile up, multiplexed throughput scales with
concurrency until the server pool saturates, and at concurrency 1 the two
are indistinguishable — the correlation header costs nanoseconds.

Acceptance (asserted in ``test_report_c9``): multiplexed throughput at
concurrency 8 is **>= 3x** serialized, and single-client p50 latency is
within **10%** of the serialized baseline.

Runs under pytest (``pytest benchmarks/bench_c9_concurrency.py``) and as a
script (``python benchmarks/bench_c9_concurrency.py [--quick]`` — the CI
smoke, exits nonzero if multiplexing does not beat the serialized
baseline at concurrency 8).  Writes ``BENCH_c9.json`` next to this file.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.encoding.registry import XdrMessageCodec
from repro.transport.tcp import TcpTransport

#: service time per call; time.sleep releases the GIL, so a concurrent
#: server can overlap calls while a serialized wire path cannot
SERVICE_TIME_S = 0.002

#: REPRO_BENCH_PAYLOAD_N pins the argument size across before/after runs
#: (same knob benchmarks/conftest.py exposes to fixture-based benchmarks)
PAYLOAD_N = int(os.environ.get("REPRO_BENCH_PAYLOAD_N", 64))

LEVELS = [1, 2, 4, 8, 16, 32]
QUICK_LEVELS = [1, 8]

#: connection-scale sweep: N callers, each with its OWN socket, against the
#: reactor core vs the thread-per-connection baseline at equal worker count
SCALE_LEVELS = [64, 256, 1024]
QUICK_SCALE_LEVELS = [16, 64]
#: worker-pool size both server cores get in the scale/saturation sweeps
SCALE_WORKERS = 8
#: the thread-per-connection baseline is not measured past this many
#: connections (it would need one OS thread per socket; the reactor row is
#: the point of the 1024 level)
BASELINE_MAX_CALLERS = 256

#: saturation sweep: a deliberately small reactor (capacity = workers +
#: queue_max in flight) under rising offered load; excess must shed as
#: typed ServerBusyError, admitted calls must keep a bounded p99
SATURATION_WORKERS = 4
SATURATION_QUEUE_MAX = 8
SATURATION_LEVELS = [8, 32, 128]
QUICK_SATURATION_LEVELS = [8, 32]

RESULT_PATH = Path(__file__).with_name("BENCH_c9.json")


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script (python benchmarks/bench_c9_concurrency.py)
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


class SlowService:
    """A component whose operations take real (GIL-releasing) time."""

    def work(self, data: str) -> int:
        time.sleep(SERVICE_TIME_S)
        return len(data)

    def echo(self, data: str) -> int:
        # instant: the scale sweep measures the wire path + scheduler, not
        # service time, so both cores carry identical Python work per call
        return len(data)


def _measure_level(port: int, concurrency: int, calls_per_thread: int, multiplex: bool) -> dict:
    """Throughput + latency percentiles for one (transport mode, level)."""
    transport = TcpTransport(f"tcp://127.0.0.1:{port}", multiplex=multiplex)
    stub = TransportStub(("work",), "svc", XdrMessageCodec(), transport, "xdr")
    payload = "x" * PAYLOAD_N
    barrier = threading.Barrier(concurrency + 1)
    latencies_s: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[BaseException] = []

    def worker(slot: int) -> None:
        try:
            barrier.wait()
            for _ in range(calls_per_thread):
                t0 = time.perf_counter()
                assert stub.work(payload) == PAYLOAD_N
                latencies_s[slot].append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(concurrency)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed_s = time.perf_counter() - t0
    stub.close()
    if errors:
        raise errors[0]

    flat = sorted(x for per_thread in latencies_s for x in per_thread)
    return {
        "concurrency": concurrency,
        "calls": concurrency * calls_per_thread,
        "throughput_rps": round(concurrency * calls_per_thread / elapsed_s, 1),
        "p50_ms": round(statistics.median(flat) * 1e3, 3),
        "p99_ms": round(flat[min(len(flat) - 1, int(len(flat) * 0.99))] * 1e3, 3),
    }


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[min(len(sorted_values) - 1, int(len(sorted_values) * p))]


def _drive_callers(port: int, callers: int, calls_per_caller: int, op: str) -> dict:
    """N callers, each with its own socket, hammering *op* concurrently.

    Unlike :func:`_measure_level` (one shared stub, multiplexed frames) this
    is the connection-scale shape: every caller dials its own
    ``TcpTransport`` so the server holds *callers* open sockets for the
    duration.  Shed requests (typed :class:`ServerBusyError`) are counted
    separately from successes; any other exception fails the run.
    """
    from repro.util.errors import ServerBusyError

    transports, stubs = [], []
    for _ in range(callers):  # sequential dials: no listen-backlog stampede
        transport = TcpTransport(f"tcp://127.0.0.1:{port}", pool_size=1)
        transports.append(transport)
        stubs.append(TransportStub((op,), "svc", XdrMessageCodec(), transport, "xdr"))
    payload = "x" * PAYLOAD_N
    barrier = threading.Barrier(callers + 1)
    ok_latencies: list[list[float]] = [[] for _ in range(callers)]
    shed_latencies: list[list[float]] = [[] for _ in range(callers)]
    errors: list[BaseException] = []

    def worker(slot: int) -> None:
        invoke = getattr(stubs[slot], op)
        try:
            barrier.wait()
            for _ in range(calls_per_caller):
                t0 = time.perf_counter()
                try:
                    assert invoke(payload) == PAYLOAD_N
                except ServerBusyError:
                    shed_latencies[slot].append(time.perf_counter() - t0)
                else:
                    ok_latencies[slot].append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(callers)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed_s = time.perf_counter() - t0
    for transport in transports:
        transport.close()
    if errors:
        raise errors[0]

    ok = sorted(x for per in ok_latencies for x in per)
    shed = sorted(x for per in shed_latencies for x in per)
    total = callers * calls_per_caller
    assert len(ok) + len(shed) == total, "lost calls"
    return {
        "callers": callers,
        "calls": total,
        "ok": len(ok),
        "shed": len(shed),
        "throughput_rps": round(len(ok) / elapsed_s, 1),
        "p50_ms": round(_percentile(ok, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(ok, 0.99) * 1e3, 3),
        "shed_p99_ms": round(_percentile(shed, 0.99) * 1e3, 3),
    }


def _with_server(reactor: bool, workers: int, queue_max: int, measure) -> dict:
    """Run *measure(port)* against a fresh listener of the requested core."""
    dispatcher = ObjectDispatcher()
    dispatcher.register("svc", SlowService())
    server = BindingServer(dispatcher)
    listener = server.expose_xdr_tcp(
        reactor=reactor, workers=workers, queue_max=queue_max
    )
    try:
        row = measure(listener.port)
        if reactor:
            # the scaling claim: server-side threads stay O(workers) no
            # matter how many sockets are open (loop thread + pool)
            row["server_threads"] = sum(
                t.name.startswith("tcp-reactor") for t in threading.enumerate()
            )
        return row
    finally:
        server.close()


def run_scale(levels: list[int], calls_per_caller: int = 10) -> dict:
    """Connection-scale A/B: reactor vs thread-per-connection, equal workers.

    Both cores get ``SCALE_WORKERS`` pool workers and a queue deep enough
    that nothing is shed — this sweep isolates what socket handling costs,
    not admission policy.  The baseline needs one OS thread per connection,
    so it is only measured up to :data:`BASELINE_MAX_CALLERS`; the larger
    reactor-only rows demonstrate thousands of sockets on a fixed thread
    count (one reactor thread + the pool).
    """
    rows = []
    for callers in levels:
        queue_max = 2 * callers + 16  # never shed in this sweep
        reactor_row = _with_server(
            True, SCALE_WORKERS, queue_max,
            lambda port: _drive_callers(port, callers, calls_per_caller, "echo"),
        )
        assert reactor_row["shed"] == 0, "scale sweep must not shed"
        row = {"reactor": reactor_row, "threaded": None}
        if callers <= BASELINE_MAX_CALLERS:
            threaded_row = _with_server(
                False, SCALE_WORKERS, queue_max,
                lambda port: _drive_callers(port, callers, calls_per_caller, "echo"),
            )
            assert threaded_row["shed"] == 0, "scale sweep must not shed"
            row["threaded"] = threaded_row
        rows.append(row)
    return {
        "workers": SCALE_WORKERS,
        "calls_per_caller": calls_per_caller,
        "levels": rows,
    }


def run_saturation(levels: list[int], calls_per_caller: int = 10) -> dict:
    """Graceful-degradation sweep: offered load past a tiny fixed capacity.

    The listener admits at most ``workers + queue_max`` in-flight requests;
    every caller above that must get an *immediate* typed busy frame.  The
    interesting numbers are the admitted-call p99 (must stay bounded as
    offered load grows — no collapse) and the shed-reply p99 (must stay
    tiny — shedding happens at admission, not after queueing).
    """
    rows = []
    for callers in levels:
        rows.append(
            _with_server(
                True, SATURATION_WORKERS, SATURATION_QUEUE_MAX,
                lambda port: _drive_callers(port, callers, calls_per_caller, "work"),
            )
        )
    return {
        "workers": SATURATION_WORKERS,
        "queue_max": SATURATION_QUEUE_MAX,
        "capacity_inflight": SATURATION_WORKERS + SATURATION_QUEUE_MAX,
        "service_time_ms": SERVICE_TIME_S * 1e3,
        "calls_per_caller": calls_per_caller,
        "levels": rows,
    }


def run_sweep(levels: list[int], calls_per_thread: int = 25) -> dict:
    """The full A/B sweep; returns the machine-readable result document."""
    dispatcher = ObjectDispatcher()
    dispatcher.register("svc", SlowService())
    server = BindingServer(dispatcher)
    listener = server.expose_xdr_tcp()
    try:
        rows = []
        for level in levels:
            serialized = _measure_level(listener.port, level, calls_per_thread, multiplex=False)
            multiplexed = _measure_level(listener.port, level, calls_per_thread, multiplex=True)
            rows.append({"serialized": serialized, "multiplexed": multiplexed})
    finally:
        server.close()
    return {
        "experiment": "C9 wire-path concurrency (XDR/TCP)",
        "service_time_ms": SERVICE_TIME_S * 1e3,
        "payload_chars": PAYLOAD_N,
        "calls_per_thread": calls_per_thread,
        "levels": rows,
    }


def _speedup_at(result: dict, concurrency: int) -> float:
    for row in result["levels"]:
        if row["serialized"]["concurrency"] == concurrency:
            return row["multiplexed"]["throughput_rps"] / row["serialized"]["throughput_rps"]
    raise KeyError(f"no level {concurrency} in sweep")


def _report(result: dict) -> None:
    rows = []
    for row in result["levels"]:
        ser, mux = row["serialized"], row["multiplexed"]
        rows.append([
            ser["concurrency"],
            f"{ser['throughput_rps']:.0f}", f"{mux['throughput_rps']:.0f}",
            f"{mux['throughput_rps'] / ser['throughput_rps']:.2f}x",
            f"{ser['p50_ms']:.2f}", f"{mux['p50_ms']:.2f}",
            f"{mux['p99_ms']:.2f}",
        ])
    _print_table(
        f"C9: one stub, N threads (service time {result['service_time_ms']:.1f} ms)",
        ["threads", "ser rps", "mux rps", "speedup", "ser p50 ms", "mux p50 ms", "mux p99 ms"],
        rows,
    )


def _report_scale(scale: dict) -> None:
    rows = []
    for row in scale["levels"]:
        reactor, threaded = row["reactor"], row["threaded"]
        rows.append([
            reactor["callers"],
            f"{reactor['throughput_rps']:.0f}",
            f"{threaded['throughput_rps']:.0f}" if threaded else "collapses",
            f"{reactor['p99_ms']:.1f}",
            f"{threaded['p99_ms']:.1f}" if threaded else "-",
            reactor.get("server_threads", "-"),
        ])
    _print_table(
        f"C9 scale: N sockets, reactor vs thread-per-connection ({scale['workers']} workers)",
        ["callers", "reactor rps", "threaded rps", "reactor p99 ms", "threaded p99 ms", "srv threads"],
        rows,
    )


def _report_saturation(saturation: dict) -> None:
    rows = []
    for row in saturation["levels"]:
        rows.append([
            row["callers"], row["ok"], row["shed"],
            f"{row['throughput_rps']:.0f}",
            f"{row['p99_ms']:.1f}", f"{row['shed_p99_ms']:.1f}",
        ])
    _print_table(
        f"C9 saturation: capacity {saturation['capacity_inflight']} in flight "
        f"({saturation['workers']} workers + {saturation['queue_max']} queue), "
        f"{saturation['service_time_ms']:.0f} ms service",
        ["callers", "ok", "shed", "admitted rps", "admitted p99 ms", "shed p99 ms"],
        rows,
    )


def _write_json(result: dict) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


# -- gates -----------------------------------------------------------------------------
#
# This host note is part of the gate design: client and server share one
# process (and typically one CPU), so *throughput* at equal Python work is
# GIL-bound and near-identical across server cores.  What the reactor buys
# — and what is gated — is the tail (p99 at 256 sockets), survival at 1024
# sockets (the thread-per-connection core suffers connection resets there,
# which is why its column says "collapses"), a fixed server thread count,
# and graceful shedding under overload.  ``budget`` relaxes every bound
# (2.0 in --quick mode per the CI smoke contract).


def _check_scale_gates(scale: dict, budget: float = 1.0) -> list[str]:
    failures = []
    for row in scale["levels"]:
        reactor, threaded = row["reactor"], row["threaded"]
        callers = reactor["callers"]
        if reactor["ok"] != reactor["calls"]:
            failures.append(f"scale {callers}: reactor lost calls ({reactor['ok']}/{reactor['calls']})")
        if reactor.get("server_threads", 0) > scale["workers"] + 1:
            failures.append(
                f"scale {callers}: reactor used {reactor['server_threads']} server threads "
                f"(cap: {scale['workers']} workers + 1 loop)"
            )
        if threaded is not None:
            if reactor["p99_ms"] > threaded["p99_ms"] * budget:
                failures.append(
                    f"scale {callers}: reactor p99 {reactor['p99_ms']:.1f} ms worse than "
                    f"thread-per-connection {threaded['p99_ms']:.1f} ms (budget {budget:g}x)"
                )
            if reactor["throughput_rps"] < threaded["throughput_rps"] * 0.6 / budget:
                failures.append(
                    f"scale {callers}: reactor throughput {reactor['throughput_rps']:.0f} rps "
                    f"under {0.6 / budget:.2f}x of threaded {threaded['throughput_rps']:.0f} rps"
                )
        else:
            if reactor["p99_ms"] > 1500.0 * budget:
                failures.append(
                    f"scale {callers}: reactor-only p99 {reactor['p99_ms']:.1f} ms "
                    f"over the {1500.0 * budget:.0f} ms bound"
                )
    return failures


def _check_saturation_gates(saturation: dict, budget: float = 1.0) -> list[str]:
    failures = []
    capacity = saturation["capacity_inflight"]
    for row in saturation["levels"]:
        callers = row["callers"]
        if row["ok"] + row["shed"] != row["calls"]:
            failures.append(f"saturation {callers}: lost calls")
        if callers > capacity and row["shed"] == 0:
            failures.append(
                f"saturation {callers}: offered load over capacity {capacity} yet nothing shed"
            )
        if row["p99_ms"] > 200.0 * budget:
            failures.append(
                f"saturation {callers}: admitted p99 {row['p99_ms']:.1f} ms over "
                f"the {200.0 * budget:.0f} ms bound (queueing not bounded?)"
            )
        if row["shed"] and row["shed_p99_ms"] > 100.0 * budget:
            failures.append(
                f"saturation {callers}: shed replies took {row['shed_p99_ms']:.1f} ms p99 "
                f"(shedding must answer at admission, bound {100.0 * budget:.0f} ms)"
            )
    return failures


# -- pytest entry point ----------------------------------------------------------------


def test_report_c9_concurrency():
    result = run_sweep(QUICK_LEVELS)
    result["scale"] = run_scale(QUICK_SCALE_LEVELS)
    result["saturation"] = run_saturation(QUICK_SATURATION_LEVELS)
    _report(result)
    _report_scale(result["scale"])
    _report_saturation(result["saturation"])
    _write_json(result)

    speedup = _speedup_at(result, 8)
    assert speedup >= 3.0, (
        f"multiplexed throughput at 8 threads is only {speedup:.2f}x serialized (need >= 3x)"
    )

    single = result["levels"][0]
    assert single["serialized"]["concurrency"] == 1
    ser_p50, mux_p50 = single["serialized"]["p50_ms"], single["multiplexed"]["p50_ms"]
    assert mux_p50 <= ser_p50 * 1.10, (
        f"single-client p50 regressed: {mux_p50:.3f} ms multiplexed "
        f"vs {ser_p50:.3f} ms serialized (budget: +10%)"
    )

    failures = _check_scale_gates(result["scale"], budget=2.0)
    failures += _check_saturation_gates(result["saturation"], budget=2.0)
    assert not failures, "; ".join(failures)


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: reduced caller counts, 2x gate budgets (used by CI)",
    )
    options = parser.parse_args(argv)

    quick = options.quick
    budget = 2.0 if quick else 1.0
    result = run_sweep(
        QUICK_LEVELS if quick else LEVELS, calls_per_thread=15 if quick else 25
    )
    result["scale"] = run_scale(
        QUICK_SCALE_LEVELS if quick else SCALE_LEVELS,
        calls_per_caller=5 if quick else 10,
    )
    result["saturation"] = run_saturation(
        QUICK_SATURATION_LEVELS if quick else SATURATION_LEVELS,
        calls_per_caller=5 if quick else 10,
    )
    _report(result)
    _report_scale(result["scale"])
    _report_saturation(result["saturation"])
    _write_json(result)

    failures = []
    speedup = _speedup_at(result, 8)
    print(f"\nspeedup at concurrency 8: {speedup:.2f}x")
    if speedup <= 1.0:
        failures.append("multiplexed wire path is not faster than the serialized baseline")
    failures += _check_scale_gates(result["scale"], budget=budget)
    failures += _check_saturation_gates(result["saturation"], budget=budget)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
