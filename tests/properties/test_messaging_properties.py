"""Property-based conformance for the mailbox delivery contracts.

Three normative claims from DESIGN.md §15, each checked across all three
bindings under randomized interleavings:

- ``first-reader``: every published message is acked exactly once, no
  matter how subscribers churn (subscribe / consume / close mid-stream);
- ``all-readers``: each subscriber observes every publisher's messages in
  that publisher's publish order;
- ``tap``: publishing never raises and never blocks, whatever the
  capacity, and what a tap observes is in order.

Bindings are built inside the test body (not as function-scoped fixtures,
which Hypothesis rejects for good reason), so every example starts from a
fresh broker.
"""

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.util.errors import HarnessTimeoutError
from tests.messaging.test_bindings import BINDINGS, open_binding

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def drain_acking(sub, acked, expect_total, wall_budget_s=8.0):
    """Receive-and-ack until `expect_total` seqs are acked (or budget ends)."""
    deadline = time.monotonic() + wall_budget_s
    while len(acked) < expect_total and time.monotonic() < deadline:
        try:
            delivery = sub.receive(timeout=0.2)
        except HarnessTimeoutError:
            continue
        sub.ack(delivery)
        acked.append(delivery.seq)


@pytest.mark.parametrize("kind", BINDINGS)
@SETTINGS
@given(data=st.data())
def test_first_reader_acks_each_message_exactly_once_under_churn(kind, data):
    ops = data.draw(st.lists(
        st.sampled_from(["publish", "subscribe", "consume", "close"]),
        min_size=5, max_size=25))
    with open_binding(kind) as client:
        client.open("jobs", capacity=64, overflow="reject")
        subs = [client.subscribe("jobs", subscriber="s0")]
        published = 0
        acked = []
        for op in ops:
            if op == "publish" and published < 40:
                client.publish("jobs", {"n": published})
                published += 1
            elif op == "subscribe" and len(subs) < 4:
                subs.append(client.subscribe(
                    "jobs", subscriber=f"s{len(subs)}"))
            elif op == "consume" and subs:
                idx = data.draw(st.integers(0, len(subs) - 1))
                delivery = subs[idx].try_receive()
                if delivery is not None:
                    subs[idx].ack(delivery)
                    acked.append(delivery.seq)
            elif op == "close" and len(subs) > 1:
                idx = data.draw(st.integers(1, len(subs) - 1))
                subs.pop(idx).close(requeue=True)  # unacked must requeue
        # churn over: everyone but the survivor leaves, survivor drains
        for sub in subs[1:]:
            sub.close(requeue=True)
        drain_acking(subs[0], acked, published)
        assert sorted(acked) == list(range(1, published + 1)), (
            f"exactly-once violated: published {published}, "
            f"acked {sorted(acked)}")


@pytest.mark.parametrize("kind", BINDINGS)
@SETTINGS
@given(data=st.data())
def test_all_readers_preserves_per_publisher_order(kind, data):
    authors = data.draw(st.lists(
        st.sampled_from(["alpha", "beta"]), min_size=5, max_size=20))
    with open_binding(kind) as client:
        client.open("news", mode="all-readers", capacity=64, overflow="reject")
        readers = [client.subscribe("news", subscriber="r0"),
                   client.subscribe("news", subscriber="r1")]
        expected = {"alpha": [], "beta": []}
        for n, author in enumerate(authors):
            seq = client.publish("news", {"n": n}, publisher=author)
            expected[author].append(seq)
        for reader in readers:
            got_seqs = []
            drain_acking(reader, got_seqs, len(authors))
            for author in ("alpha", "beta"):
                observed = [s for s in got_seqs if s in set(expected[author])]
                assert observed == expected[author], (
                    f"reader saw {author}'s messages out of publish order: "
                    f"{observed} != {expected[author]}")
            assert sorted(got_seqs) == sorted(
                expected["alpha"] + expected["beta"])


@pytest.mark.parametrize("kind", BINDINGS)
@SETTINGS
@given(data=st.data())
def test_tap_never_blocks_and_observes_in_order(kind, data):
    capacity = data.draw(st.integers(1, 4))
    count = data.draw(st.integers(5, 15))
    with open_binding(kind) as client:
        client.open("trace", mode="tap", capacity=capacity, overflow="reject")
        sub = client.subscribe("trace", subscriber="observer")
        started = time.monotonic()
        seqs = [client.publish("trace", i) for i in range(count)]  # never raises
        assert time.monotonic() - started < 5.0  # and never parks the publisher
        assert seqs == sorted(seqs)
        observed = []
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            delivery = sub.try_receive()
            if delivery is None:
                break
            observed.append(delivery.seq)
        assert observed == sorted(observed)  # in order
        assert set(observed) <= set(seqs)  # lossy, never invented
        assert client.stats("trace")["published"] == count
