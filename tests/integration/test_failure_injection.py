"""Failure injection across the stack: crashes, partitions, recovery.

The paper motivates Harness with "improving robustness … and adaptation";
these tests drive the failure paths: node crashes mid-protocol, network
partitions, service faults, and recovery after healing.
"""

import numpy as np
import pytest

from repro.core.builder import HarnessDvm
from repro.dvm.state import DecentralizedState, FullSynchronyState, NeighborhoodState
from repro.netsim import lan
from repro.netsim.fabric import HostDownError
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import CoherencyError, PluginError


class TestCoherencyUnderPartition:
    def test_full_synchrony_update_fails_cleanly_across_partition(self):
        net = lan(4)
        members = [f"node{i}" for i in range(4)]
        protocol = FullSynchronyState(net, members)
        protocol.update("node0", "k", "before")
        net.partition({"node0", "node1"}, {"node2", "node3"})
        with pytest.raises(CoherencyError):
            protocol.update("node0", "k", "after")
        # pre-partition state still readable locally everywhere
        for member in members:
            assert protocol.get(member, "k") in ("before", "after")

    def test_decentralized_survives_partition_with_stale_reads(self):
        net = lan(4)
        members = [f"node{i}" for i in range(4)]
        protocol = DecentralizedState(net, members)
        protocol.update("node0", "k", "v1")
        net.partition({"node0", "node1"}, {"node2", "node3"})
        protocol.update("node0", "k", "v2")  # local write always succeeds
        # same side sees the new value; the other side sees nothing newer
        assert protocol.get("node1", "k") == "v2"
        assert protocol.get("node2", "k") is None  # v1 only lived on node0
        net.heal()
        assert protocol.get("node3", "k") == "v2"  # convergence after heal

    def test_neighborhood_heals_after_partition(self):
        net = lan(6)
        members = [f"node{i}" for i in range(6)]
        protocol = NeighborhoodState(net, members, radius=1)
        net.partition({"node0", "node1", "node5"}, {"node2", "node3", "node4"})
        protocol.update("node0", "k", "v")  # replicates within its side
        assert protocol.get("node1", "k") == "v"
        net.heal()
        assert protocol.get("node3", "k") == "v"  # flood finds it post-heal


class TestDvmNodeCrash:
    def test_remote_call_to_crashed_host_fails_fast(self, rng):
        net = lan(3)
        with HarnessDvm("crash1", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", MatMul)
            stub = harness.stub("node0", "MatMul")
            net.host("node1").crash()
            with pytest.raises(HostDownError):
                stub.multiply(np.eye(2), np.eye(2))
            stub.close()

    def test_service_recovers_after_restart(self, rng):
        net = lan(3)
        with HarnessDvm("crash2", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", MatMul)
            stub = harness.stub("node0", "MatMul")
            net.host("node1").crash()
            with pytest.raises(HostDownError):
                stub.multiply(np.eye(2), np.eye(2))
            net.host("node1").restart()
            a = rng.random((3, 3))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()

    def test_migration_away_from_failing_node(self):
        """Adaptation: move a component off a node before taking it down."""
        net = lan(3)
        with HarnessDvm("crash3", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", CounterService)
            harness.stub("node1", "CounterService").increment(4)
            harness.move("CounterService", "node2")
            net.host("node1").crash()
            stub = harness.stub("node0", "CounterService")
            assert stub.value() == 4  # state survived the evacuation
            stub.close()

    def test_kernel_message_to_crashed_host(self):
        net = lan(2)
        with HarnessDvm("crash4", net) as harness:
            harness.add_nodes("node0", "node1")
            from repro.plugins import PingPlugin

            harness.load_plugin_everywhere(PingPlugin)
            net.host("node1").crash()
            ping = harness.kernel("node0").get_service("ping")
            with pytest.raises(HostDownError):
                ping.ping("node1", 1)


class TestServiceFaults:
    def test_component_exception_does_not_kill_the_endpoint(self, rng):
        net = lan(2)
        with HarnessDvm("fault1", net) as harness:
            harness.add_nodes("node0", "node1")
            harness.deploy("node1", MatMul)
            stub = harness.stub("node0", "MatMul")
            from repro.util.errors import EncodingError

            with pytest.raises(EncodingError):
                stub.getResult(np.arange(3.0), np.arange(3.0))  # not square
            # endpoint still serves good requests afterwards
            a = rng.random((2, 2))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()

    def test_pvm_recv_timeout_is_clean(self):
        net = lan(2)
        with HarnessDvm("fault2", net) as harness:
            harness.add_nodes("node0", "node1")
            from repro.plugins import BASELINE_PLUGINS
            from repro.plugins.hpvmd import PvmDaemonPlugin
            from repro.util.errors import HarnessTimeoutError

            for plugin in BASELINE_PLUGINS:
                harness.load_plugin_everywhere(plugin)
            harness.load_plugin("node0", PvmDaemonPlugin())
            pvmd = harness.kernel("node0").get_service("pvm")
            console = pvmd.mytid()
            with pytest.raises(HarnessTimeoutError):
                pvmd._recv_for(console, None, 0.05)

    def test_mpi_rank_failure_reported_with_rank_id(self):
        net = lan(1)
        with HarnessDvm("fault3", net) as harness:
            harness.add_nodes("node0")
            from repro.plugins import BASELINE_PLUGINS
            from repro.plugins.hmpi import MpiPlugin

            for plugin in BASELINE_PLUGINS:
                harness.load_plugin_everywhere(plugin)
            harness.load_plugin("node0", MpiPlugin())
            mpi = harness.kernel("node0").get_service("mpi")

            def crash_rank_one(ctx):
                if ctx.rank == 1:
                    raise RuntimeError("simulated rank crash")
                return "ok"

            with pytest.raises(PluginError, match="rank 1"):
                mpi.run(crash_rank_one, world_size=3)


class TestRegistryRecovery:
    def test_reregistration_after_neighborhood_node_loss(self):
        from repro.registry.distributed import NeighborhoodLookup
        from repro.tools.wsdlgen import generate_wsdl

        net = lan(5)
        lookup = NeighborhoodLookup(net, replication=1)
        lookup.register("node0", generate_wsdl(MatMul, bindings=("soap",)))
        # both node0 and its replica die
        net.host("node0").crash()
        net.host("node1").crash()
        assert lookup.discover("node3", "//portType[@name='MatMulPortType']") == []
        # supplier recovers and re-registers elsewhere
        lookup.register("node2", generate_wsdl(MatMul, bindings=("soap",)))
        found = lookup.discover("node3", "//portType[@name='MatMulPortType']")
        assert [d.name for d in found] == ["MatMul"]


class TestLossyLinks:
    def test_coherency_converges_over_lossy_links_with_retries(self):
        # idempotent state ops + bounded resends: full synchrony still
        # completes on a fabric dropping 15% of messages per leg (seeded)
        net = lan(4, seed=21)
        net.set_default_faults(drop_rate=0.15)
        members = [f"node{i}" for i in range(4)]
        protocol = FullSynchronyState(net, members, send_retries=8)
        for i in range(20):
            protocol.update("node0", f"k{i}", i)
        for member in members:
            assert protocol.get(member, "k19") == 19

    def test_stub_policy_rides_out_drops(self):
        from repro.bindings.policy import InvocationPolicy

        net = lan(2, seed=3)
        with HarnessDvm("lossy1", net) as harness:
            harness.add_nodes("node0", "node1")
            harness.deploy("node1", MatMul, bindings=("sim",))
            net.set_link_faults("node0", "node1", drop_rate=0.25)
            policy = InvocationPolicy(
                max_attempts=8, backoff_base_s=0.0, backoff_max_s=0.0, jitter=0.0,
                idempotent=True, breaker_threshold=0,
            )
            stub = harness.stub("node0", "MatMul", prefer=("sim",), policy=policy)
            a = np.eye(3)
            for _ in range(10):  # seeded fabric: deterministic drop pattern
                assert np.allclose(stub.multiply(a, a), a)
            stub.close()

    def test_unpolicied_stub_surfaces_drops(self):
        from repro.netsim.fabric import MessageDroppedError

        net = lan(2, seed=3)
        with HarnessDvm("lossy2", net) as harness:
            harness.add_nodes("node0", "node1")
            harness.deploy("node1", MatMul, bindings=("sim",))
            net.set_link_faults("node0", "node1", drop_rate=1.0, symmetric=False)
            stub = harness.stub("node0", "MatMul", prefer=("sim",))
            with pytest.raises(MessageDroppedError):
                stub.multiply(np.eye(2), np.eye(2))
            stub.close()


class TestCircuitBreaking:
    def test_breaker_fails_fast_on_dead_host_and_recovers(self):
        """Breaker cooldown on a virtual clock: the test advances time
        explicitly instead of really sleeping past the cooldown."""
        from repro.bindings.policy import InvocationPolicy
        from repro.util.clock import VirtualClock
        from repro.util.errors import CircuitOpenError

        clock = VirtualClock()
        net = lan(2)
        with HarnessDvm("breaker1", net, clock=clock) as harness:
            harness.add_nodes("node0", "node1")
            harness.deploy("node1", CounterService, bindings=("sim",))
            policy = InvocationPolicy(
                max_attempts=1, breaker_threshold=2, breaker_cooldown_s=0.05,
            )
            stub = harness.stub("node0", "CounterService", prefer=("sim",), policy=policy)
            net.host("node1").crash()
            for _ in range(2):
                with pytest.raises(HostDownError):
                    stub.increment(1)
            with pytest.raises(CircuitOpenError):  # breaker open: no fabric traffic
                stub.increment(1)
            net.host("node1").restart()
            clock.advance(0.06)  # cooldown elapses; half-open probe succeeds
            assert stub.increment(1) == 1
            stub.close()


class TestSelfHealing:
    def test_end_to_end_recovery_from_node_crash(self):
        """The acceptance scenario: crash the node hosting a restartable
        component mid-workload; the detector evicts it, the failover manager
        revives the component from its checkpoint on a surviving node, and a
        pre-existing stub completes its next call without the caller ever
        handling the failure."""
        net = lan(3)
        with HarnessDvm("heal1", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy(
                "node0", CounterService, name="counter",
                bindings=("local-instance", "sim"), restartable=True,
            )
            detector, failover = harness.enable_self_healing(
                observer="node2", suspect_after=1, evict_after=2,
            )
            stub = harness.stub("node1", "counter", resilient=True)
            assert stub.increment(5) == 5   # workload in progress
            failover.checkpoint()

            net.host("node0").crash()
            evicted = []
            for _ in range(4):
                evicted += detector.tick()
            assert evicted == ["node0"]

            # same stub object, no caller-side error handling
            assert stub.increment(1) == 6
            index = harness.dvm.component_index("node1")
            assert index["counter"] in ("node1", "node2")
            assert failover.recovered[0]["service"] == "counter"
            stub.close()

    def test_recovery_preserves_checkpointed_not_post_checkpoint_state(self):
        net = lan(3)
        with HarnessDvm("heal2", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy(
                "node0", CounterService, name="counter",
                bindings=("local-instance", "sim"), restartable=True,
            )
            detector, failover = harness.enable_self_healing(
                observer="node2", suspect_after=1, evict_after=1,
            )
            stub = harness.stub("node1", "counter", resilient=True)
            stub.increment(5)
            failover.checkpoint()
            stub.increment(100)  # never checkpointed: lost with the node

            net.host("node0").crash()
            while not detector.tick():
                pass
            assert stub.increment(1) == 6  # resumed from the last checkpoint
            stub.close()

    def test_dead_kernel_removed_from_harness(self):
        net = lan(3)
        with HarnessDvm("heal3", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy(
                "node0", CounterService, name="counter",
                bindings=("local-instance", "sim"), restartable=True,
            )
            detector, failover = harness.enable_self_healing(observer="node2",
                                                             suspect_after=1,
                                                             evict_after=1)
            failover.checkpoint()
            net.host("node0").crash()
            detector.tick()
            assert "node0" not in harness.kernels
            assert harness.dvm.nodes() == ["node1", "node2"]

    def test_periodic_self_healing_on_virtual_clock(self):
        """The same periodic loop the daemon threads run, driven by a
        virtual clock: each callback reschedules itself at its interval, the
        test advances time, and the outcome is exact — no real sleeping, no
        wall-clock polling loops, no flaky deadlines."""
        from repro.util.clock import VirtualClock

        clock = VirtualClock()
        net = lan(3)
        with HarnessDvm("heal4", net, clock=clock) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy(
                "node0", CounterService, name="counter",
                bindings=("local-instance", "sim"), restartable=True,
            )
            detector, failover = harness.enable_self_healing(
                observer="node2", suspect_after=1, evict_after=2,
                heartbeat_interval_s=0.02, checkpoint_interval_s=0.02,
            )

            def tick_loop() -> None:
                detector.tick()
                clock.call_at(clock.now() + detector.interval_s, tick_loop)

            def checkpoint_loop() -> None:
                failover.checkpoint()
                clock.call_at(clock.now() + failover.interval_s, checkpoint_loop)

            clock.call_at(detector.interval_s, tick_loop)
            clock.call_at(failover.interval_s, checkpoint_loop)

            stub = harness.stub("node1", "counter", resilient=True)
            stub.increment(3)
            clock.advance(0.05)  # ≥ one checkpoint lands, at count 3
            net.host("node0").crash()
            clock.advance(0.06)  # two missed heartbeats: suspected, then dead
            assert "node0" not in harness.dvm.nodes()
            # recovered from the checkpoint taken at exactly 3
            assert stub.increment(1) == 4
            stub.close()
