"""F8 — the MatMul service across bindings and sizes (Figure 8 / Section 5).

Claim: "The standard SOAP binding introduces an encoding overhead as well
as several intermediate steps in the execution that are generally
unacceptable for high performance distributed computations … High
performance applications might take advantage of the local, unencoded
access provided by the Java binding."

Reproduced series: end-to-end ``getResult`` time by binding × matrix size.
Expected shape: local < xdr < soap at every size; the *relative* overhead
of the network bindings shrinks as O(n³) compute grows past O(n²) data —
the crossover where offloading becomes worthwhile even over SOAP.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.plugins.services import MatMul

SIZES = [16, 64, 256]


@pytest.fixture(scope="module")
def stubs():
    container = LightweightContainer("f8-bench", host="f8host")
    handle = container.deploy(MatMul, bindings=("local-instance", "xdr", "soap"))
    co_located = DynamicStubFactory(
        ClientContext(container_uri=container.uri, host="f8host")
    )
    remote = DynamicStubFactory(ClientContext(host="f8client"))
    out = {
        "local-instance": co_located.create(handle.document),
        "xdr": remote.create(handle.document, prefer=("xdr",)),
        "soap": remote.create(handle.document, prefer=("soap",)),
    }
    yield out
    for stub in out.values():
        stub.close()
    container.close()


@pytest.mark.parametrize("protocol", ["local-instance", "xdr", "soap"])
@pytest.mark.parametrize("n", SIZES, ids=[f"n{n}" for n in SIZES])
def test_matmul_benchmark(benchmark, stubs, protocol, n, rng):
    a = rng.random(n * n)
    b = rng.random(n * n)
    benchmark(stubs[protocol].getResult, a, b)


def test_report_f8_binding_crossover(stubs, rng):
    rows = []
    medians: dict[tuple[str, int], float] = {}
    for n in SIZES + [512]:
        a = rng.random(n * n)
        b = rng.random(n * n)
        for protocol, stub in stubs.items():
            stub.getResult(a, b)  # warm
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                stub.getResult(a, b)
                samples.append(time.perf_counter() - start)
            samples.sort()
            medians[(protocol, n)] = samples[len(samples) // 2]
        overhead = medians[("soap", n)] / medians[("local-instance", n)]
        rows.append([
            n,
            f"{medians[('local-instance', n)] * 1e3:.3f}ms",
            f"{medians[('xdr', n)] * 1e3:.3f}ms",
            f"{medians[('soap', n)] * 1e3:.3f}ms",
            f"{overhead:.1f}x",
        ])
    print_table("F8: MatMul getResult by binding and size",
                ["n", "local-instance", "xdr", "soap", "soap overhead"], rows)

    for n in SIZES + [512]:
        assert medians[("local-instance", n)] <= medians[("xdr", n)]
        assert medians[("xdr", n)] < medians[("soap", n)]
    # relative SOAP penalty shrinks as computation dominates communication
    small_penalty = medians[("soap", 16)] / medians[("local-instance", 16)]
    large_penalty = medians[("soap", 512)] / medians[("local-instance", 512)]
    assert large_penalty < small_penalty
