"""``hproc`` — the process-management plugin (Figure 2's "process spawning").

Wraps a :class:`~repro.runner.ThreadRunnerBox` per kernel and accepts
remote spawn requests (by import path) over the kernel channel, which is
how ``hpvmd`` places PVM tasks on other hosts.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.plugin import Plugin
from repro.runner.box import ThreadRunnerBox
from repro.runner.tasks import TaskSpec, TaskStatus
from repro.util.errors import PluginError

__all__ = ["ProcessManagementPlugin"]


class ProcessManagementPlugin(Plugin):
    """Local task spawning + remote spawn-by-import-path."""

    plugin_name = "hproc"
    provides = ("process-management",)

    def __init__(self) -> None:
        super().__init__()
        self._runner: ThreadRunnerBox | None = None

    def on_load(self, kernel) -> None:
        self._runner = ThreadRunnerBox(name=f"hproc@{kernel.host_name}")

    @property
    def runner(self) -> ThreadRunnerBox:
        if self._runner is None:
            raise PluginError("hproc is not loaded")
        return self._runner

    # -- local API -------------------------------------------------------------

    def spawn(self, fn: Callable, *args: Any, name: str = "", **kwargs: Any) -> str:
        """Run a callable on this kernel's runner; returns the task id."""
        return self.runner.run(TaskSpec.from_callable(fn, *args, name=name, **kwargs))

    def spawn_path(self, import_path: str, *args: Any, name: str = "") -> str:
        """Run ``pkg.module:function`` on this kernel's runner."""
        return self.runner.run(TaskSpec.from_import_path(import_path, *args, name=name))

    def spawn_remote(self, dst_host: str, import_path: str, *args: Any) -> str:
        """Spawn by import path on another kernel; returns the remote task id."""
        if self.kernel is None:
            raise PluginError("hproc is not attached")
        return self.kernel.send(dst_host, "process-management", {
            "op": "spawn", "path": import_path, "args": list(args),
        })

    def status(self, task_id: str) -> TaskStatus:
        return self.runner.status(task_id)

    def wait(self, task_id: str, timeout: float = 30.0) -> TaskStatus:
        return self.runner.wait(task_id, timeout=timeout)

    def status_remote(self, dst_host: str, task_id: str) -> dict:
        if self.kernel is None:
            raise PluginError("hproc is not attached")
        return self.kernel.send(dst_host, "process-management", {
            "op": "status", "task_id": task_id,
        })

    # -- inter-kernel -----------------------------------------------------------------

    def handle_message(self, src_host: str, payload: dict) -> Any:
        op = payload.get("op")
        if op == "spawn":
            return self.spawn_path(payload["path"], *payload.get("args", ()))
        if op == "status":
            status = self.status(payload["task_id"])
            return {
                "task_id": status.task_id,
                "state": status.state.value,
                "error": status.error,
            }
        raise PluginError(f"hproc: unknown operation {op!r}")
