"""In-process and netsim bindings for the mailbox layer.

Both expose the *same client surface* as the TCP binding
(:class:`~repro.messaging.tcpbind.MailboxTcpClient`):
``open`` / ``publish`` / ``subscribe`` / ``stats`` on the client,
``receive`` / ``try_receive`` / ``ack`` / ``nack`` / ``close`` on the
subscription — which is what lets the conformance battery parametrize one
test body over {inproc, sim, tcp}.

:class:`InprocMailboxClient` is a veneer over a local
:class:`~repro.messaging.broker.MessageBroker` — zero marshalling, the
reference semantics.

:class:`SimMailboxHost` binds a broker to a
:class:`~repro.netsim.fabric.VirtualHost` endpoint (``sim://<host>/mbox``)
and :class:`SimMailboxClient` talks to it through
``VirtualNetwork.request`` — every operation is charged simulated
latency/bytes, faults are re-raised typed on the client side, and blocking
``receive``/``publish`` turn into deterministic poll loops on the
VirtualClock, so scenario runs stay byte-reproducible.  Consumer liveness
rides **leases**: every client op renews its subscription's lease, the
broker sweeps expired leases before handling each request, and a consumer
whose host crashed simply stops renewing — its unacked messages requeue
for the survivors, the sim-world analogue of the TCP binding's
connection-death hook.
"""

from __future__ import annotations

from typing import Any

from repro.encoding.xdr import pack_value, unpack_value
from repro.messaging.broker import Delivery, Message, MessageBroker, Subscription
from repro.obs import trace as _trace
from repro.transport.base import TransportMessage
from repro.util.clock import Clock
from repro.util.errors import (
    HarnessTimeoutError,
    MailboxFullError,
    MessagingError,
)

__all__ = ["InprocMailboxClient", "SimMailboxHost", "SimMailboxClient"]

CT_SIM_MBOX = "application/x-harness-mbox"

#: Simulated seconds between receive polls — the sim binding's pull cadence.
SIM_POLL_S = 0.001

#: Default subscription lease in simulated seconds; a consumer silent for
#: this long is declared dead and its unacked messages requeue.
DEFAULT_LEASE_S = 5.0


# -- in-process ---------------------------------------------------------------


class InprocMailboxClient:
    """Direct broker access with the common client surface."""

    def __init__(self, broker: MessageBroker):
        self.broker = broker

    def open(self, name: str, mode: str = "first-reader", capacity: int = 64,
             overflow: str = "reject") -> None:
        self.broker.open(name, mode=mode, capacity=capacity, overflow=overflow)

    def publish(self, name: str, payload: Any, timeout_s: float | None = None,
                publisher: str = "") -> int:
        return self.broker.publish(name, payload, timeout_s=timeout_s,
                                   publisher=publisher)

    def subscribe(self, name: str, subscriber: str = "",
                  prefetch: int = 0, lease_s: float | None = None) -> Subscription:
        return self.broker.subscribe(name, subscriber=subscriber, lease_s=lease_s)

    def stats(self, name: str) -> dict:
        return self.broker.stats(name).as_dict()

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


# -- netsim host side ---------------------------------------------------------


def _fault_dict(exc: Exception) -> dict:
    out = {"fault": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, MailboxFullError):
        out["mailbox"] = exc.mailbox
        out["capacity"] = exc.capacity
    return out


def _raise_fault(reply: dict) -> None:
    name = reply.get("fault", "MessagingError")
    if name == "MailboxFullError":
        raise MailboxFullError(reply.get("mailbox", "?"), int(reply.get("capacity", 0)))
    if name == "HarnessTimeoutError":
        raise HarnessTimeoutError(reply.get("message", name))
    raise MessagingError(reply.get("message", name))


class SimMailboxHost:
    """Serves a broker at ``sim://<host>/mbox`` on the virtual fabric."""

    ENDPOINT = "mbox"

    def __init__(self, network, host: str, broker: MessageBroker | None = None,
                 events=None):
        self.network = network
        self.host = host
        self.broker = broker or MessageBroker(clock=_NetClock(network),
                                              events=events, node=host)
        self.url = network.host(host).bind(self.ENDPOINT, self._handle)

    def close(self) -> None:
        self.network.host(self.host).unbind(self.ENDPOINT)

    def _handle(self, message: TransportMessage) -> TransportMessage:
        # liveness first: requeue from any consumer whose lease lapsed, so
        # the very request that follows a crash already sees the backlog
        self.broker.sweep_leases()
        try:
            reply = self._dispatch(unpack_value(bytes(message.payload)))
        except Exception as exc:
            reply = _fault_dict(exc)
        return TransportMessage(CT_SIM_MBOX, pack_value(reply))

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        broker = self.broker
        if op == "open":
            broker.open(request["name"], mode=request.get("mode", "first-reader"),
                        capacity=int(request.get("capacity", 64)),
                        overflow=request.get("overflow", "reject"))
            return {"ok": True}
        if op == "publish":
            seq = broker.publish(request["name"], request.get("payload"),
                                 timeout_s=request.get("timeout_s"),
                                 publisher=request.get("publisher", ""),
                                 trace=request.get("trace") or None)
            return {"ok": True, "seq": seq}
        if op == "subscribe":
            sub = broker.subscribe(request["name"],
                                   subscriber=request.get("subscriber", ""),
                                   lease_s=request.get("lease_s", DEFAULT_LEASE_S))
            return {"ok": True, "sub_id": sub.sub_id}
        if op == "receive":
            sub = Subscription(broker, request["name"], int(request["sub_id"]), "")
            delivery = sub.try_receive()
            if delivery is None:
                return {"ok": True, "empty": True}
            msg = delivery.message
            return {"ok": True, "empty": False, "mailbox": delivery.mailbox,
                    "delivery_id": delivery.delivery_id, "seq": msg.seq,
                    "payload": msg.payload, "publisher": msg.publisher,
                    "trace": msg.trace, "redelivered": delivery.redelivered,
                    "attempt": delivery.attempt}
        if op == "ack":
            Subscription(broker, request["name"], int(request["sub_id"]), "").ack(
                int(request["delivery_id"]))
            return {"ok": True}
        if op == "nack":
            Subscription(broker, request["name"], int(request["sub_id"]), "").nack(
                int(request["delivery_id"]))
            return {"ok": True}
        if op == "unsubscribe":
            broker._close_sub(request["name"], int(request["sub_id"]),
                              requeue=bool(request.get("requeue", True)))
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": broker.stats(request["name"]).as_dict()}
        raise MessagingError(f"unknown mailbox op {op!r}")


class _NetClock:
    """Clock view over the fabric's simulated time.

    Exposes ``advance`` so the broker's blocking paths treat it as a
    virtual clock (deterministic poll-and-advance, never a condition-
    variable park that nothing in a single-threaded sim would signal).
    """

    def __init__(self, network):
        self._network = network

    def now(self) -> float:
        return self._network.simulated_time

    def sleep(self, seconds: float) -> None:
        self._network.simulated_time += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        self.sleep(seconds)


# -- netsim client side -------------------------------------------------------


class SimSubscription:
    """Pull-based subscription handle over the fabric."""

    def __init__(self, client: "SimMailboxClient", mailbox: str, sub_id: int):
        self._client = client
        self.mailbox = mailbox
        self.sub_id = sub_id
        self.closed = False

    def receive(self, timeout: float | None = None) -> Delivery:
        return self._client._receive(self, timeout)

    def try_receive(self) -> Delivery | None:
        try:
            return self._client._receive(self, 0)
        except HarnessTimeoutError:
            return None

    def ack(self, delivery: Delivery | int) -> None:
        delivery_id = delivery.delivery_id if isinstance(delivery, Delivery) else delivery
        self._client._call({"op": "ack", "name": self.mailbox,
                            "sub_id": self.sub_id, "delivery_id": delivery_id})

    def nack(self, delivery: Delivery | int) -> None:
        delivery_id = delivery.delivery_id if isinstance(delivery, Delivery) else delivery
        self._client._call({"op": "nack", "name": self.mailbox,
                            "sub_id": self.sub_id, "delivery_id": delivery_id})

    def close(self, requeue: bool = True) -> None:
        if self.closed:
            return
        self.closed = True
        self._client._call({"op": "unsubscribe", "name": self.mailbox,
                            "sub_id": self.sub_id, "requeue": requeue})

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class SimMailboxClient:
    """Talks to a :class:`SimMailboxHost` through the virtual fabric."""

    def __init__(self, network, src_host: str, broker_host: str,
                 clock: Clock | None = None,
                 request_timeout_s: float | None = None):
        self.network = network
        self.src_host = src_host
        self.broker_host = broker_host
        self.clock = clock if clock is not None else _NetClock(network)
        self.request_timeout_s = request_timeout_s

    def open(self, name: str, mode: str = "first-reader", capacity: int = 64,
             overflow: str = "reject") -> None:
        self._call({"op": "open", "name": name, "mode": mode,
                    "capacity": capacity, "overflow": overflow})

    def publish(self, name: str, payload: Any, timeout_s: float | None = None,
                publisher: str = "") -> int:
        trace = b""
        if _trace.ENABLED:
            ctx = _trace.current()
            if ctx is not None:
                trace = _trace.to_bytes(ctx)
        reply = self._call({"op": "publish", "name": name, "payload": payload,
                            "timeout_s": timeout_s,
                            "publisher": publisher or self.src_host,
                            "trace": trace})
        return int(reply["seq"])

    def subscribe(self, name: str, subscriber: str = "",
                  prefetch: int = 0,
                  lease_s: float | None = DEFAULT_LEASE_S) -> SimSubscription:
        reply = self._call({"op": "subscribe", "name": name,
                            "subscriber": subscriber or self.src_host,
                            "lease_s": lease_s})
        return SimSubscription(self, name, int(reply["sub_id"]))

    def stats(self, name: str) -> dict:
        return self._call({"op": "stats", "name": name})["stats"]

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- plumbing --------------------------------------------------------------

    def _call(self, body: dict) -> dict:
        message = TransportMessage(CT_SIM_MBOX, pack_value(body))
        response = self.network.request(
            self.src_host, self.broker_host, SimMailboxHost.ENDPOINT, message,
            timeout=self.request_timeout_s)
        reply = unpack_value(bytes(response.payload))
        if "fault" in reply:
            _raise_fault(reply)
        return reply

    def _receive(self, sub: SimSubscription, timeout: float | None) -> Delivery:
        deadline = None if timeout is None else self.clock.now() + timeout
        while True:
            reply = self._call({"op": "receive", "name": sub.mailbox,
                                "sub_id": sub.sub_id})
            if not reply.get("empty"):
                msg = Message(int(reply["seq"]), reply.get("payload"),
                              reply.get("publisher", ""),
                              bytes(reply.get("trace") or b""), 0.0)
                return Delivery(msg, reply["mailbox"], int(reply["delivery_id"]),
                                bool(reply.get("redelivered")),
                                int(reply.get("attempt", 1)))
            if timeout is not None and timeout <= 0:
                raise HarnessTimeoutError(
                    f"receive on {sub.mailbox!r} timed out after {timeout}s "
                    f"(queue empty)")
            if deadline is not None and self.clock.now() >= deadline:
                raise HarnessTimeoutError(
                    f"receive on {sub.mailbox!r} timed out after {timeout}s")
            step = SIM_POLL_S
            if deadline is not None:
                step = min(step, max(deadline - self.clock.now(), 0.0)) or SIM_POLL_S
            self.clock.sleep(step)
