"""Runner boxes — the Resource Abstraction Layer (Figure 6, lowest layer).

"The runner box defines only the limited functionality required by the
Harness system to enroll a computational resource.  The functionality of
the runner box is minimized so that existing incompatible implementations
of computational resources (e.g. rsh daemon, grid resource managers etc.)
could be modeled as a single runner box Web Service."

:class:`RunnerBox` is that minimum: ``run`` / ``status`` / ``stop`` /
``describe``.  Three adapters model three kinds of substrate:

* :class:`ThreadRunnerBox` — in-process threads (a multiprocessor node);
* :class:`SubprocessRunnerBox` — OS processes (an rsh-daemon stand-in);
* :class:`SimHostRunnerBox` — a :class:`~repro.netsim.VirtualHost`
  (grid-managed remote resource, executed eagerly but accounted to the
  simulated host).
"""

from __future__ import annotations

import importlib
import subprocess
import threading
from typing import Callable

from repro.runner.tasks import TaskKind, TaskSpec, TaskState, TaskStatus
from repro.util.errors import RunnerError
from repro.util.ids import new_id

__all__ = ["RunnerBox", "ThreadRunnerBox", "SubprocessRunnerBox", "SimHostRunnerBox"]


def _resolve_import_path(path: str) -> Callable:
    module_name, sep, attr = path.partition(":")
    if not sep:
        module_name, _, attr = path.rpartition(".")
    if not module_name or not attr:
        raise RunnerError(f"malformed import path {path!r}")
    try:
        module = importlib.import_module(module_name)
        fn = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise RunnerError(f"cannot resolve task {path!r}: {exc}") from exc
    if not callable(fn):
        raise RunnerError(f"{path!r} is not callable")
    return fn


class RunnerBox:
    """Abstract resource: run/status/stop plus a one-line description.

    Subclasses implement :meth:`_launch`; bookkeeping is shared.
    """

    resource_kind = "abstract"

    def __init__(self, name: str = ""):
        self.name = name or new_id("runner")
        self._lock = threading.RLock()
        self._tasks: dict[str, TaskStatus] = {}

    # -- the minimal web-service interface ----------------------------------------

    def run(self, spec: TaskSpec) -> str:
        """Submit a task; returns its task id immediately."""
        task_id = new_id("task")
        status = TaskStatus(task_id, TaskState.PENDING, name=spec.name)
        with self._lock:
            self._tasks[task_id] = status
        self._launch(spec, status)
        return task_id

    def status(self, task_id: str) -> TaskStatus:
        """Current status of *task_id*."""
        with self._lock:
            status = self._tasks.get(task_id)
        if status is None:
            raise RunnerError(f"unknown task {task_id!r} on {self.name}")
        return status

    def stop(self, task_id: str) -> bool:
        """Request task termination; True if a transition happened."""
        status = self.status(task_id)
        with self._lock:
            if status.state.terminal:
                return False
            status.state = TaskState.STOPPED
        self._kill(task_id)
        return True

    def describe(self) -> dict:
        """Resource description published at registration (Section 1's
        'resources … described with sufficient semantic information')."""
        with self._lock:
            active = sum(1 for t in self._tasks.values() if not t.state.terminal)
        return {
            "name": self.name,
            "kind": self.resource_kind,
            "active_tasks": active,
            "total_tasks": len(self._tasks),
        }

    def wait(self, task_id: str, timeout: float = 30.0) -> TaskStatus:
        """Block until the task reaches a terminal state."""
        from repro.util.concurrent import wait_for

        wait_for(lambda: self.status(task_id).state.terminal, timeout=timeout)
        return self.status(task_id)

    def tasks(self) -> list[TaskStatus]:
        with self._lock:
            return list(self._tasks.values())

    # -- subclass hooks --------------------------------------------------------------

    def _launch(self, spec: TaskSpec, status: TaskStatus) -> None:
        raise NotImplementedError

    def _kill(self, task_id: str) -> None:
        """Best-effort termination hook (default: cooperative only)."""


class ThreadRunnerBox(RunnerBox):
    """Runs callable tasks on daemon threads."""

    resource_kind = "thread"

    def _launch(self, spec: TaskSpec, status: TaskStatus) -> None:
        if spec.kind is TaskKind.ARGV:
            raise RunnerError("ThreadRunnerBox cannot run argv tasks")
        fn = spec.payload if spec.kind is TaskKind.CALLABLE else _resolve_import_path(spec.payload)
        if not callable(fn):
            raise RunnerError(f"task payload is not callable: {fn!r}")

        def body() -> None:
            with self._lock:
                if status.state is TaskState.STOPPED:
                    return
                status.state = TaskState.RUNNING
            try:
                result = fn(*spec.args, **spec.kwargs)
            except Exception as exc:
                with self._lock:
                    if status.state is not TaskState.STOPPED:
                        status.state = TaskState.FAILED
                        status.error = f"{type(exc).__name__}: {exc}"
                return
            with self._lock:
                if status.state is not TaskState.STOPPED:
                    status.state = TaskState.DONE
                    status.result = result

        threading.Thread(target=body, name=f"{self.name}-{status.task_id}", daemon=True).start()


class SubprocessRunnerBox(RunnerBox):
    """Runs argv tasks as OS subprocesses (the rsh-daemon analogue)."""

    resource_kind = "subprocess"

    def __init__(self, name: str = "", timeout: float = 60.0):
        super().__init__(name)
        self._timeout = timeout
        self._procs: dict[str, subprocess.Popen] = {}

    def _launch(self, spec: TaskSpec, status: TaskStatus) -> None:
        if spec.kind is not TaskKind.ARGV:
            raise RunnerError("SubprocessRunnerBox only runs argv tasks")

        def body() -> None:
            with self._lock:
                if status.state is TaskState.STOPPED:
                    return
                status.state = TaskState.RUNNING
            try:
                proc = subprocess.Popen(
                    spec.payload, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
                )
                with self._lock:
                    self._procs[status.task_id] = proc
                out, err = proc.communicate(timeout=self._timeout)
            except Exception as exc:
                with self._lock:
                    if status.state is not TaskState.STOPPED:
                        status.state = TaskState.FAILED
                        status.error = f"{type(exc).__name__}: {exc}"
                return
            finally:
                with self._lock:
                    self._procs.pop(status.task_id, None)
            with self._lock:
                if status.state is TaskState.STOPPED:
                    return
                if proc.returncode == 0:
                    status.state = TaskState.DONE
                    status.result = out
                else:
                    status.state = TaskState.FAILED
                    status.error = err.strip() or f"exit code {proc.returncode}"

        threading.Thread(target=body, name=f"{self.name}-{status.task_id}", daemon=True).start()

    def _kill(self, task_id: str) -> None:
        with self._lock:
            proc = self._procs.get(task_id)
        if proc is not None:
            proc.terminate()


class SimHostRunnerBox(RunnerBox):
    """Models a grid-managed resource on a simulated host.

    Tasks execute eagerly in the caller's thread (deterministic), but the
    runner charges the submission round trip to the virtual network so DVM
    experiments account for remote task placement.
    """

    resource_kind = "sim-host"

    def __init__(self, network, host_name: str, name: str = ""):
        super().__init__(name or f"runner@{host_name}")
        self._network = network
        self.host_name = host_name

    def _launch(self, spec: TaskSpec, status: TaskStatus) -> None:
        from repro.transport.base import TransportMessage

        if spec.kind is TaskKind.ARGV:
            raise RunnerError("SimHostRunnerBox cannot run argv tasks")
        fn = spec.payload if spec.kind is TaskKind.CALLABLE else _resolve_import_path(spec.payload)
        # charge the submission message (spec description) to the fabric
        self._network._charge("client", self.host_name, 256)
        status.state = TaskState.RUNNING
        try:
            status.result = fn(*spec.args, **spec.kwargs)
            status.state = TaskState.DONE
        except Exception as exc:
            status.state = TaskState.FAILED
            status.error = f"{type(exc).__name__}: {exc}"
