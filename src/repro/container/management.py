"""Management facades: the container and DVM as Web Services.

Figure 6's text: "Containers constitute a special category of services.
They represent an aggregation point, provide local component management,
define a local name space and supply appropriate lookup capabilities.
However, they are full-fledged services themselves.  The service provider
can either expose them to the public or keep them for private use, e.g.
inside a departmental metacomputer."

:class:`ContainerManagementService` is that service: a component whose
operations are the container's management interface (describe, list,
query, deploy-by-type, lifecycle control).  Deploying it into its own
container — :func:`expose_management` — makes the container reachable
through any binding like any other component, WSDL description included.
:class:`DvmManagementService` does the same for the distributed container
layer (status, membership, component index).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.errors import ContainerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.container import ComponentContainer
    from repro.dvm.machine import DistributedVirtualMachine

__all__ = [
    "ContainerManagementService",
    "DvmManagementService",
    "expose_management",
    "MANAGEMENT_SERVICE_NAME",
]

MANAGEMENT_SERVICE_NAME = "ContainerManagement"


class ContainerManagementService:
    """The container's management interface as an invocable component.

    All operations take/return plain serialisable values so every binding
    (SOAP/XDR/MIME/local) can carry them.
    """

    def __init__(self, container: "ComponentContainer | None" = None):
        # the default constructor exists so the local binding can
        # instantiate the type; a real deployment injects the container
        self._container = container

    def _require(self) -> "ComponentContainer":
        if self._container is None:
            raise ContainerError("management service is not attached to a container")
        return self._container

    def on_start(self, container: "ComponentContainer") -> None:
        """Lifecycle hook: bind to the hosting container on deployment."""
        self._container = container

    # -- query operations ---------------------------------------------------------

    def describe(self) -> dict:
        """The container's status summary (uri, kind, components)."""
        return self._require().describe()

    def listComponents(self) -> list:
        """Names and states of every deployed component."""
        return [
            {"name": handle.name, "instance_id": handle.instance_id,
             "state": handle.state.value}
            for handle in self._require().components()
        ]

    def queryRegistry(self, expression: str) -> list:
        """Names of public services whose WSDL matches the XML query."""
        return [entry.name for entry in self._require().registry.find(expression)]

    def getWsdl(self, service_name: str) -> str:
        """The WSDL text of a deployed public service."""
        from repro.wsdl.io import document_to_string

        entry = self._require().registry.lookup_name(service_name)
        return document_to_string(entry.document, indent=False)

    # -- management operations ----------------------------------------------------------

    def deployType(self, type_name: str, service_name: str = "", bindings: list | None = None) -> str:
        """Deploy a component by import path; returns its instance id."""
        from repro.bindings.stubs import load_type

        cls = load_type(type_name)
        handle = self._require().deploy(
            cls,
            name=service_name or None,
            bindings=tuple(bindings) if bindings else ("local-instance",),
        )
        return handle.instance_id

    def stopComponent(self, instance_id: str) -> bool:
        self._require().stop_component(instance_id)
        return True

    def startComponent(self, instance_id: str) -> bool:
        self._require().start_component(instance_id)
        return True

    def undeployComponent(self, instance_id: str) -> bool:
        self._require().undeploy(instance_id)
        return True

    def setExposure(self, instance_id: str, exposure: str) -> bool:
        self._require().set_exposure(instance_id, exposure)
        return True


def expose_management(
    container: "ComponentContainer",
    bindings: tuple[str, ...] = ("local-instance", "soap"),
    exposure: str = "public",
):
    """Deploy the container's management service into the container itself.

    Returns the component handle; the container is now a "full-fledged
    service" with a WSDL description and the requested access points.
    """
    facade = ContainerManagementService(container)
    return container.deploy(
        facade, name=MANAGEMENT_SERVICE_NAME, bindings=bindings, exposure=exposure
    )


class DvmManagementService:
    """The distributed container layer as a service (status/lookup/index)."""

    def __init__(self, dvm: "DistributedVirtualMachine | None" = None, node: str = ""):
        self._dvm = dvm
        self._node = node

    def _require(self) -> "DistributedVirtualMachine":
        if self._dvm is None:
            raise ContainerError("DVM management service is not attached")
        return self._dvm

    def status(self) -> dict:
        """The DVM status as observed from this facade's node."""
        return self._require().status(self._node)

    def members(self) -> list:
        return self._require().members_seen_by(self._node)

    def componentIndex(self) -> dict:
        return self._require().component_index(self._node)

    def locate(self, service_name: str) -> dict:
        """Owning node + WSDL text for a component in the unified namespace."""
        from repro.wsdl.io import document_to_string

        owner, document = self._require().lookup(self._node, service_name)
        return {"node": owner, "wsdl": document_to_string(document, indent=False)}
