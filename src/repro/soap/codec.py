"""SOAP message codec plugging into the content-type codec registry."""

from __future__ import annotations

from typing import Any

from repro.soap import envelope as env
from repro.util.errors import SoapFaultError

__all__ = ["SoapMessageCodec"]


class SoapMessageCodec:
    """RPC call/reply codec speaking SOAP 1.1 envelopes.

    ``array_mode`` selects how numeric arrays are serialized: ``"base64"``
    (SOAP's default XSD base64Binary, per the paper) or ``"items"``
    (element-per-value SOAP-ENC arrays).  The content type carries the mode
    so both ends agree.
    """

    def __init__(self, array_mode: str = "base64"):
        self.array_mode = array_mode
        self.content_type = (
            "text/xml" if array_mode == "base64" else f"text/xml; arrays={array_mode}"
        )

    def encode_call(self, target: str, operation: str, args: tuple | list) -> bytes:
        return env.build_call_envelope(target, operation, args, self.array_mode)

    def decode_call(self, data: bytes) -> tuple[str, str, list]:
        # the zero-copy TCP path hands memoryview payloads; XML parsing needs bytes
        if not isinstance(data, (bytes, bytearray, str)):
            data = bytes(data)
        return env.parse_call_envelope(data)

    def encode_reply(self, result: Any = None, fault: str | None = None) -> bytes:
        if fault is not None:
            return env.build_fault_envelope("soapenv:Server", fault)
        return env.build_reply_envelope(result, array_mode=self.array_mode)

    def decode_reply(self, data: bytes) -> Any:
        if not isinstance(data, (bytes, bytearray, str)):
            data = bytes(data)
        return env.parse_reply_envelope(data)

    @staticmethod
    def fault_to_exception(data: bytes) -> SoapFaultError | None:
        """Parse *data*; return the fault it carries, or None for a success reply."""
        try:
            env.parse_reply_envelope(data)
            return None
        except SoapFaultError as fault:
            return fault
