"""Recovery experiment — the cost and latency of the self-healing DVM.

Two questions about the robustness layer:

1. **Time-to-recovery vs heartbeat interval.**  With the failure detector
   and failover manager running on their wall-clock threads, how long after
   a node crash does a restartable component answer again from its new
   home?  Expected shape: recovery time scales with ``evict_after x
   heartbeat_interval`` — detection dominates, the failover itself (pickle
   revive + re-publish) is microseconds.

2. **Fault-free fast-path overhead.**  An :class:`InvocationPolicy` on a
   stub must be nearly free when nothing fails: the added work is one
   breaker ``allow()``, one closure, one ``record_success()``.  Acceptance
   criterion: **<5%** over the bare stub on the sim transport path.

Runs under pytest (``pytest benchmarks/bench_recovery.py``) and as a
script (``python benchmarks/bench_recovery.py [--quick]`` — the CI smoke).
"""

from __future__ import annotations

import argparse
import gc
import threading
import time

from repro.bindings.policy import InvocationPolicy
from repro.core.builder import HarnessDvm
from repro.netsim.topology import lan
from repro.plugins.services import CounterService

EVICT_AFTER = 3
INTERVALS_S = [0.02, 0.05, 0.10]
QUICK_INTERVALS_S = [0.02, 0.05]


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script (python benchmarks/bench_recovery.py)
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


# -- 1. time-to-recovery ---------------------------------------------------------------


def measure_recovery_time(heartbeat_s: float, timeout_s: float = 30.0) -> float:
    """Seconds from node crash to the component answering from its new home."""
    net = lan(3, seed=11)
    hosts = [h.name for h in net.hosts()]
    with HarnessDvm("bench-recovery", net) as harness:
        harness.add_nodes(*hosts)
        harness.deploy(
            hosts[0], CounterService, name="counter",
            bindings=("local-instance", "sim"), restartable=True,
        )
        stub = harness.stub(hosts[1], "counter", resilient=True)
        stub.increment(1)

        recovered = threading.Event()
        harness.events.subscribe("recovery.failover", lambda event: recovered.set())
        detector, failover = harness.enable_self_healing(
            observer=hosts[2],
            evict_after=EVICT_AFTER,
            heartbeat_interval_s=heartbeat_s,
            checkpoint_interval_s=heartbeat_s,
        )
        failover.checkpoint()  # baseline snapshot before the threads spin up
        detector.start()
        failover.start()

        start = time.perf_counter()
        net.host(hosts[0]).crash()
        if not recovered.wait(timeout_s):
            raise RuntimeError(f"no recovery within {timeout_s}s at interval {heartbeat_s}")
        assert stub.increment(1) >= 2  # the pre-existing stub keeps working
        elapsed = time.perf_counter() - start
        stub.close()
        return elapsed


def recovery_rows(intervals: list[float]) -> list[list]:
    rows = []
    for interval in intervals:
        elapsed = measure_recovery_time(interval)
        rows.append([
            f"{interval * 1000:.0f}",
            f"{EVICT_AFTER * interval * 1000:.0f}",
            f"{elapsed * 1000:.1f}",
        ])
    return rows


def test_report_recovery_time():
    rows = recovery_rows(INTERVALS_S)
    _print_table(
        "time-to-recovery vs heartbeat interval (evict_after=3)",
        ["heartbeat (ms)", "detection floor (ms)", "recovery (ms)"],
        rows,
    )
    measured = [float(r[2]) for r in rows]
    # detection dominates: recovery can't beat (evict_after - 1) heartbeats …
    for interval, ms in zip(INTERVALS_S, measured):
        assert ms >= (EVICT_AFTER - 1) * interval * 1000
    # … so a 5x longer heartbeat must cost more wall-clock than the shortest
    assert measured[-1] > measured[0]


# -- 2. fault-free fast-path overhead ----------------------------------------------------


def _timed_calls(stub, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        stub.increment(1)
    return time.perf_counter() - start


def measure_fastpath_overhead(calls: int = 2000, repeats: int = 9) -> dict:
    """Bare stub vs policy-wrapped stub on the fault-free sim path.

    Overhead is the *median of paired ratios*: each repeat times the two
    stubs back-to-back and contributes one policy/bare ratio, so slow
    clock-speed drift cancels instead of polluting the comparison.
    """
    net = lan(2, seed=3)
    hosts = [h.name for h in net.hosts()]
    with HarnessDvm("bench-fastpath", net) as harness:
        harness.add_nodes(*hosts)
        harness.deploy(hosts[0], CounterService, name="counter", bindings=("sim",))
        bare = harness.stub(hosts[1], "counter", prefer=("sim",))
        policied = harness.stub(
            hosts[1], "counter", prefer=("sim",), policy=InvocationPolicy()
        )
        for stub in (bare, policied):  # warm up codec + dispatch caches
            _timed_calls(stub, calls // 10)
        bare_trials, policy_trials = [], []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                bare_trials.append(_timed_calls(bare, calls))
                policy_trials.append(_timed_calls(policied, calls))
        finally:
            if gc_was_enabled:
                gc.enable()
        ratios = sorted(p / b for p, b in zip(policy_trials, bare_trials))
        bare.close()
        policied.close()
    return {
        "bare_us": min(bare_trials) / calls * 1e6,
        "policy_us": min(policy_trials) / calls * 1e6,
        "overhead": ratios[len(ratios) // 2] - 1.0,
    }


def test_fastpath_overhead_under_5_percent():
    result = measure_fastpath_overhead()
    if result["overhead"] >= 0.05:
        # shared-box noise floor can exceed the signal (~1%): re-measure
        # with more statistical power before concluding the budget is blown
        result = measure_fastpath_overhead(calls=4000, repeats=15)
    _print_table(
        "fault-free invocation fast path (sim transport)",
        ["stub", "per-call (us)"],
        [
            ["bare", f"{result['bare_us']:.2f}"],
            ["policy", f"{result['policy_us']:.2f}"],
            ["overhead", f"{result['overhead'] * 100:+.2f}%"],
        ],
    )
    assert result["overhead"] < 0.05, (
        f"policy fast path costs {result['overhead'] * 100:.2f}% (budget: 5%)"
    )


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: fewer intervals and calls (used by CI)",
    )
    options = parser.parse_args(argv)

    intervals = QUICK_INTERVALS_S if options.quick else INTERVALS_S
    _print_table(
        "time-to-recovery vs heartbeat interval (evict_after=3)",
        ["heartbeat (ms)", "detection floor (ms)", "recovery (ms)"],
        recovery_rows(intervals),
    )

    calls = 500 if options.quick else 2000
    repeats = 3 if options.quick else 5
    result = measure_fastpath_overhead(calls=calls, repeats=repeats)
    _print_table(
        "fault-free invocation fast path (sim transport)",
        ["stub", "per-call (us)"],
        [
            ["bare", f"{result['bare_us']:.2f}"],
            ["policy", f"{result['policy_us']:.2f}"],
            ["overhead", f"{result['overhead'] * 100:+.2f}%"],
        ],
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
