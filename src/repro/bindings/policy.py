"""Invocation policies: retry, backoff, deadlines, circuit breaking.

The paper promises "improving robustness … and adaptation"; the stub layer
is where a metacomputing client first *sees* a fault, so this module makes
the reaction configurable instead of hard-coded.  An
:class:`InvocationPolicy` describes how a :class:`~repro.bindings.stubs.TransportStub`
should behave when a call fails:

* bounded retries with exponential backoff + jitter (seeded RNG → the
  schedule is deterministic in tests);
* an overall deadline from which each attempt's transport timeout is
  carved, so retrying never extends the caller's wait;
* a per-target :class:`CircuitBreaker` that opens after N consecutive
  failures, rejects calls instantly (:class:`CircuitOpenError`) while open,
  and lets a single probe through after a cooldown (half-open).

Retries are restricted to *idempotent-safe* failure points: a request that
provably never reached the service (:class:`HostDownError`, a request-phase
:class:`MessageDroppedError`) is always safe to resend; response-phase
losses and timeouts mean the service may have done the work, so they are
retried only when the policy declares the operations idempotent.

Every retry, breaker trip, and recovery is published on the
:class:`~repro.util.events.EventBus` under ``invoke.*`` topics (see
DESIGN.md's fault-tolerance section for the full list).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.obs import metrics as _metrics
from repro.util.clock import Clock, WallClock
from repro.util.errors import CircuitOpenError, HarnessTimeoutError
from repro.util.events import EventBus

__all__ = [
    "InvocationPolicy",
    "CircuitBreaker",
    "BreakerRegistry",
    "PolicyExecutor",
    "backoff_schedule",
    "retry_safe",
    "DEFAULT_POLICY",
]


@dataclass(frozen=True)
class InvocationPolicy:
    """How a stub reacts to invocation failures.

    ``max_attempts`` counts the first try: 1 disables retries entirely.
    ``deadline_s`` is the overall budget across all attempts (``None`` =
    unbounded); each attempt's transport timeout is the remaining budget.
    ``idempotent`` widens the retryable set to response-phase losses and
    timeouts — only declare it for operations that tolerate re-execution.
    ``breaker_threshold`` consecutive failures open the circuit for
    ``breaker_cooldown_s``; 0 disables circuit breaking.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1  # fraction of the step, added uniformly
    deadline_s: float | None = None
    idempotent: bool = False
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff_base_s and backoff_max_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered."""
        step = min(
            self.backoff_base_s * (self.backoff_multiplier ** attempt),
            self.backoff_max_s,
        )
        if self.jitter and rng is not None:
            step += rng.uniform(0.0, self.jitter * step)
        return step


#: Conservative default used when a caller asks for "a" policy: three
#: attempts, 50 ms base backoff, breaker after five consecutive failures.
DEFAULT_POLICY = InvocationPolicy()

_RETRIES = _metrics.registry.counter("invoke.retries")
_BREAKER_OPENED = _metrics.registry.counter("invoke.breaker.opened")
_BREAKER_RECLOSED = _metrics.registry.counter("invoke.breaker.reclosed")
_BREAKER_REJECTED = _metrics.registry.counter("invoke.breaker.rejected")


def backoff_schedule(
    policy: InvocationPolicy, attempts: int, rng: random.Random | None = None
) -> list[float]:
    """The first *attempts* retry delays — deterministic under a seeded RNG."""
    return [policy.backoff(i, rng) for i in range(attempts)]


def retry_safe(exc: BaseException, policy: InvocationPolicy) -> bool:
    """Is resending after *exc* idempotent-safe under *policy*?

    ``HostDownError`` and request-phase drops mean the operation never ran:
    always safe.  Response-phase drops and timeouts mean it *may* have run:
    safe only for operations the policy declares idempotent.
    """
    # imported lazily: netsim.fabric sits below the transport layer, and a
    # module-scope import here would close an import cycle through
    # repro.transport.sim
    from repro.netsim.fabric import HostDownError, MessageDroppedError

    if isinstance(exc, MessageDroppedError):
        return exc.phase == "request" or policy.idempotent
    if isinstance(exc, HostDownError):
        return True
    if isinstance(exc, HarnessTimeoutError):
        return policy.idempotent
    return False


class CircuitBreaker:
    """Per-target failure accountant: closed → open → half-open → closed.

    ``allow()`` answers "may a call proceed right now?"; callers must then
    report the outcome through :meth:`record_success` /
    :meth:`record_failure`.  While open, only after ``cooldown_s`` does a
    single half-open probe get through; its outcome closes or re-opens the
    circuit.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int, cooldown_s: float, clock: Clock | None = None):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock or WallClock()
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == self.OPEN
                and self._clock.now() - self._opened_at >= self.cooldown_s
            ):
                return self.HALF_OPEN
            return self._state

    def allow(self) -> bool:
        """May a call proceed?  Transitions open → half-open after cooldown."""
        # lock-free fast path: a closed breaker admits everything, and the
        # racy read is benign (a stale CLOSED at worst admits one extra call)
        if self._state == self.CLOSED:
            return True
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                return False  # a probe is already in flight; keep failing fast
            if self._clock.now() - self._opened_at >= self.cooldown_s:
                # admit exactly one probe; concurrent callers keep failing fast
                self._state = self.HALF_OPEN
                return True
            return False

    def record_success(self) -> bool:
        """Reset the circuit; True when this success re-closed an open one."""
        # lock-free fast path for the healthy steady state
        if self._state == self.CLOSED and not self._failures:
            return False
        with self._lock:
            reclosed = self._state != self.CLOSED
            self._failures = 0
            self._state = self.CLOSED
            return reclosed

    def record_failure(self) -> bool:
        """Count a failure; True when this one tripped the circuit open."""
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                self.threshold and self._failures >= self.threshold
            ):
                tripped = self._state != self.OPEN
                self._state = self.OPEN
                self._opened_at = self._clock.now()
                return tripped
            return False


class BreakerRegistry:
    """Shared per-target breakers, so every stub to a target sees one circuit."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock or WallClock()
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, target: str, policy: InvocationPolicy) -> CircuitBreaker | None:
        if not policy.breaker_threshold:
            return None
        with self._lock:
            breaker = self._breakers.get(target)
            if breaker is None:
                breaker = CircuitBreaker(
                    policy.breaker_threshold, policy.breaker_cooldown_s, self._clock
                )
                self._breakers[target] = breaker
            return breaker


class PolicyExecutor:
    """Applies an :class:`InvocationPolicy` around a transport call.

    The fault-free fast path is one ``allow()`` check, the call, and one
    ``record_success()`` — no allocation, no event, no clock read unless a
    deadline is configured (measured <5% overhead by
    ``benchmarks/bench_recovery.py``).
    """

    def __init__(
        self,
        policy: InvocationPolicy,
        target: str,
        breaker: CircuitBreaker | None = None,
        events: EventBus | None = None,
        clock: Clock | None = None,
        rng: random.Random | None = None,
    ):
        self.policy = policy
        self.target = target
        self.breaker = breaker
        self.events = events
        self.clock = clock or WallClock()
        self.rng = rng if rng is not None else random.Random()

    def call(
        self, attempt_fn, request=None, operation: str = "", base_timeout: float | None = None
    ):
        """Run ``attempt_fn(request, timeout)`` under the policy.

        ``request`` is opaque — typically the encoded transport message,
        passed through so callers need not allocate a closure per call.
        ``attempt_fn`` receives the per-attempt timeout (the smaller of the
        transport's own timeout and what remains of the overall deadline).
        The fault-free path is kept deliberately lean — no loop state, no
        clock read (unless a deadline is set), no allocation.
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            _BREAKER_REJECTED.inc()
            raise CircuitOpenError(
                f"circuit for {self.target!r} is open "
                f"(cooldown {self.policy.breaker_cooldown_s}s)"
            )
        if self.policy.deadline_s is None:
            deadline = None
            timeout = base_timeout
        else:
            deadline = self.clock.now() + self.policy.deadline_s
            timeout = self._attempt_timeout(base_timeout, deadline)
        try:
            result = attempt_fn(request, timeout)
        except Exception as exc:
            return self._retry_loop(attempt_fn, request, operation, base_timeout, deadline, exc)
        if breaker is not None and breaker.record_success():
            self._publish_close(operation)
        return result

    def _retry_loop(self, attempt_fn, request, operation, base_timeout, deadline, exc):
        """Failure path: account the first failure, then retry under policy."""
        policy = self.policy
        attempt = 0
        while True:
            self._record_failure(operation, exc)
            if not retry_safe(exc, policy):
                raise exc
            if attempt + 1 >= policy.max_attempts:
                raise exc
            if deadline is not None and self.clock.now() >= deadline:
                raise exc
            delay = policy.backoff(attempt, self.rng)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - self.clock.now()))
            if self.events is not None:
                self.events.publish(
                    "invoke.retry",
                    {
                        "target": self.target,
                        "operation": operation,
                        "attempt": attempt + 1,
                        "delay_s": delay,
                        "error": str(exc),
                    },
                    source=self.target,
                )
            self.clock.sleep(delay)
            _RETRIES.inc()
            attempt += 1
            if self.breaker is not None and not self.breaker.allow():
                _BREAKER_REJECTED.inc()
                raise CircuitOpenError(
                    f"circuit for {self.target!r} is open "
                    f"(cooldown {policy.breaker_cooldown_s}s)"
                )
            try:
                result = attempt_fn(request, self._attempt_timeout(base_timeout, deadline))
            except Exception as next_exc:
                exc = next_exc
                continue
            if self.breaker is not None and self.breaker.record_success():
                self._publish_close(operation)
            return result

    def _publish_close(self, operation: str) -> None:
        _BREAKER_RECLOSED.inc()
        if self.events is not None:
            self.events.publish(
                "invoke.breaker.close",
                {"target": self.target, "operation": operation},
                source=self.target,
            )

    def _attempt_timeout(
        self, base_timeout: float | None, deadline: float | None
    ) -> float | None:
        if deadline is None:
            return base_timeout
        remaining = max(0.0, deadline - self.clock.now())
        return remaining if base_timeout is None else min(base_timeout, remaining)

    def _record_failure(self, operation: str, exc: Exception) -> None:
        if self.breaker is not None and self.breaker.record_failure():
            _BREAKER_OPENED.inc()
            if self.events is not None:
                self.events.publish(
                    "invoke.breaker.open",
                    {"target": self.target, "operation": operation, "error": str(exc)},
                    source=self.target,
                )
