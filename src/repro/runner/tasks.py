"""Task specifications and status records for the resource layer.

A runner box "defines only the limited functionality required by the
Harness system to enroll a computational resource" (Section 6): run a task,
query it, stop it.  :class:`TaskSpec` is the least common denominator those
operations need — a callable (by import path or object) or an argv vector —
so rsh daemons, batch schedulers and plain threads can all hide behind the
same interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TaskKind", "TaskSpec", "TaskState", "TaskStatus"]


class TaskKind(enum.Enum):
    """What the payload of a :class:`TaskSpec` means."""

    CALLABLE = "callable"  # a Python callable object
    IMPORT_PATH = "import-path"  # "pkg.module:function" resolved at run time
    ARGV = "argv"  # an OS command vector


@dataclass(frozen=True)
class TaskSpec:
    """A unit of work submitted to a runner box."""

    kind: TaskKind
    payload: Any  # callable | str | list[str] according to kind
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str = ""

    @classmethod
    def from_callable(cls, fn: Callable, *args, name: str = "", **kwargs) -> "TaskSpec":
        return cls(TaskKind.CALLABLE, fn, args, dict(kwargs), name or getattr(fn, "__name__", "task"))

    @classmethod
    def from_import_path(cls, path: str, *args, name: str = "", **kwargs) -> "TaskSpec":
        return cls(TaskKind.IMPORT_PATH, path, args, dict(kwargs), name or path)

    @classmethod
    def from_argv(cls, argv: list[str], name: str = "") -> "TaskSpec":
        return cls(TaskKind.ARGV, list(argv), name=name or (argv[0] if argv else "argv"))


class TaskState(enum.Enum):
    """Lifecycle of a submitted task."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    STOPPED = "stopped"

    @property
    def terminal(self) -> bool:
        return self in (TaskState.DONE, TaskState.FAILED, TaskState.STOPPED)


@dataclass
class TaskStatus:
    """Point-in-time status of a task on a runner box."""

    task_id: str
    state: TaskState
    result: Any = None
    error: str = ""
    name: str = ""
