#!/usr/bin/env python
"""Figures 5 and 8: the MatMul service reached through every binding.

Deploys the paper's MatMul Web Service with SOAP, XDR and local-instance
ports, then times the same multiplication through each access path.  This
is the design argument of Section 5 made concrete: the standard SOAP
binding "introduces an encoding overhead as well as several intermediate
steps … generally unacceptable for high performance distributed
computations", while the local binding is unmediated.

Run:  python examples/matmul_bindings.py
"""

import time

import numpy as np

from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.plugins import MatMul


def time_calls(stub, a, b, repeats=5) -> float:
    """Median seconds per getResult round trip."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        stub.getResult(a, b)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def main() -> None:
    rng = np.random.default_rng(42)

    with LightweightContainer("matmul-host", host="server") as container:
        handle = container.deploy(MatMul, bindings=("local-instance", "xdr", "mime", "soap"))

        co_located = DynamicStubFactory(
            ClientContext(container_uri=container.uri, host="server")
        )
        remote = DynamicStubFactory(ClientContext(host="client"))

        print(f"{'n':>6} {'payload':>10} {'local-inst':>12} {'xdr':>12} "
              f"{'mime':>12} {'soap-b64':>12} {'soap/xdr':>9}")
        for n in (16, 64, 128, 256):
            a = rng.random(n * n)
            b = rng.random(n * n)
            payload = a.nbytes + b.nbytes

            local_stub = co_located.create(handle.document)
            xdr_stub = remote.create(handle.document, prefer=("xdr",))
            mime_stub = remote.create(handle.document, prefer=("mime",))
            soap_stub = remote.create(handle.document, prefer=("soap",))

            t_local = time_calls(local_stub, a, b)
            t_xdr = time_calls(xdr_stub, a, b)
            t_mime = time_calls(mime_stub, a, b)
            t_soap = time_calls(soap_stub, a, b)

            print(f"{n:>6} {payload:>9.0f}B {t_local * 1e3:>10.3f}ms "
                  f"{t_xdr * 1e3:>10.3f}ms {t_mime * 1e3:>10.3f}ms "
                  f"{t_soap * 1e3:>10.3f}ms {t_soap / t_xdr:>8.1f}x")

            xdr_stub.close()
            mime_stub.close()
            soap_stub.close()

        print("\nthe local-instance path is unmediated object access;")
        print("XDR pays binary encoding + loopback TCP;")
        print("MIME ships raw binary parts behind an XML manifest over HTTP;")
        print("SOAP additionally pays XML + base64 — the Section 5 ordering.")


if __name__ == "__main__":
    main()
