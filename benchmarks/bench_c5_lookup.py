"""C5 — the lookup/discovery spectrum (Section 5).

Claim: "At one extreme, there are centralized lookup services.  They are
easy to implement and use, but they introduce a single point of failure and
a potential scalability bottleneck.  At the other extreme, a completely
decentralized approach leads to a registration phase that is fully
localized and does not involve any network traffic, whereas the discovery
phase performs an active lookup that can be expensive."

Reproduced series: per-operation message costs of the three schemes as the
DVM grows, plus the failure experiment (kill the registry host).
"""

import pytest

from benchmarks.conftest import print_table
from repro.netsim import lan
from repro.netsim.fabric import HostDownError
from repro.plugins.services import MatMul, WSTime
from repro.registry.distributed import (
    CentralizedLookup,
    DecentralizedLookup,
    NeighborhoodLookup,
)
from repro.tools.wsdlgen import generate_wsdl

QUERY = "//portType[@name='MatMulPortType']"


_SCHEME_NAMES = ("centralized", "decentralized", "neighborhood")


def make_scheme(name: str, net):
    """Each scheme binds the per-host lookup endpoint: one scheme per fabric."""
    if name == "centralized":
        return CentralizedLookup(net, "node0")
    if name == "decentralized":
        return DecentralizedLookup(net)
    return NeighborhoodLookup(net, replication=2)


def _workload(lookup, n_nodes: int, services: int = 8, discoveries: int = 16) -> None:
    for i in range(services):
        doc = generate_wsdl(MatMul, service_name=f"MatMul{i}", bindings=("soap",))
        lookup.register(f"node{(i * 3) % n_nodes}", doc)
    for i in range(discoveries):
        lookup.discover(f"node{(i * 5) % n_nodes}", "//portType")


@pytest.mark.parametrize("scheme", _SCHEME_NAMES)
def test_lookup_workload_benchmark(benchmark, scheme):
    def run():
        net = lan(8)
        _workload(make_scheme(scheme, net), 8)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_report_c5_cost_spectrum():
    rows = []
    costs: dict[tuple[str, int, str], int] = {}
    for n_nodes in (4, 16):
        for name in _SCHEME_NAMES:
            net = lan(n_nodes)
            lookup = make_scheme(name, net)
            net.reset_stats()
            lookup.register("node1", generate_wsdl(MatMul, service_name=f"M-{name}", bindings=("soap",)))
            register_messages = net.total_messages
            net.reset_stats()
            lookup.discover(f"node{n_nodes - 1}", f"//portType[@name='M-{name}PortType']")
            discover_messages = net.total_messages
            costs[(name, n_nodes, "register")] = register_messages
            costs[(name, n_nodes, "discover")] = discover_messages
            rows.append([n_nodes, name, register_messages, discover_messages])
    print_table("C5: messages per registration / discovery",
                ["nodes", "scheme", "register", "discover"], rows)

    for n_nodes in (4, 16):
        # decentralized: registration fully localized (zero traffic)
        assert costs[("decentralized", n_nodes, "register")] == 0
        # centralized: O(1) discovery regardless of size
        assert costs[("centralized", n_nodes, "discover")] == 2
    # decentralized discovery grows with the DVM
    assert costs[("decentralized", 16, "discover")] > costs[("decentralized", 4, "discover")]
    # neighborhood: bounded registration, discovery ≤ flood
    assert costs[("neighborhood", 16, "register")] <= 2 * 2
    assert costs[("neighborhood", 16, "discover")] <= costs[("decentralized", 16, "discover")]


def test_report_c5_single_point_of_failure():
    outcomes = {}
    for name in _SCHEME_NAMES:
        net = lan(6)
        lookup = make_scheme(name, net)
        lookup.register("node2", generate_wsdl(MatMul, service_name=f"S-{name}", bindings=("soap",)))
        # kill the host the centralized registry happens to live on
        net.host("node0").crash()
        try:
            found = lookup.discover("node3", f"//portType[@name='S-{name}PortType']")
            outcomes[name] = f"ok ({len(found)} found)"
        except HostDownError:
            outcomes[name] = "FAILED (registry host down)"
    print_table("C5b: discovery after the registry host crashes",
                ["scheme", "outcome"],
                [[k, v] for k, v in sorted(outcomes.items())])
    assert outcomes["centralized"].startswith("FAILED")
    assert outcomes["decentralized"].startswith("ok (1")
    assert outcomes["neighborhood"].startswith("ok (1")


def test_report_c5_centralized_bottleneck():
    """All centralized traffic converges on one host — the scalability
    bottleneck quantified as that host's share of total messages."""
    n_nodes = 12
    net = lan(n_nodes)
    lookup = CentralizedLookup(net, "node0")
    _workload(lookup, n_nodes)
    through_hub = sum(
        stats.messages for (src, dst), stats in net.stats.items()
        if "node0" in (src, dst)
    )
    share = through_hub / net.total_messages
    print(f"\nC5c: centralized hub handles {share:.0%} of all lookup traffic")
    assert share == 1.0

    net2 = lan(n_nodes)
    decentralized = DecentralizedLookup(net2)
    _workload(decentralized, n_nodes)
    hub_share = max(
        sum(s.messages for (a, b), s in net2.stats.items() if h in (a, b))
        for h in (f"node{i}" for i in range(n_nodes))
    ) / net2.total_messages
    print(f"C5c: decentralized max per-host share: {hub_share:.0%}")
    assert hub_share < 0.6
