"""XmlElement tree model."""

import pytest

from repro.util.errors import XmlError
from repro.xmlkit import NS_WSDL, QName, XmlElement


class TestQName:
    def test_clark_round_trip(self):
        q = QName(NS_WSDL, "binding")
        assert QName.parse(q.clark()) == q

    def test_parse_bare_name(self):
        assert QName.parse("foo") == QName("", "foo")

    def test_parse_with_default_namespace(self):
        assert QName.parse("foo", "urn:x") == QName("urn:x", "foo")

    def test_malformed_clark_rejected(self):
        with pytest.raises(ValueError):
            QName.parse("{urn:x")

    def test_unqualified_clark(self):
        assert QName("", "a").clark() == "a"


class TestAttributes:
    def test_set_get_by_string(self):
        el = XmlElement("root")
        el.set("name", "x")
        assert el.get("name") == "x"

    def test_values_stringified(self):
        el = XmlElement("root", {"port": 8080})
        assert el.get("port") == "8080"

    def test_qualified_attribute(self):
        q = QName(NS_WSDL, "type")
        el = XmlElement("root").set(q, "v")
        assert el.get(q) == "v"
        # bare local name falls back across namespaces
        assert el.get("type") == "v"

    def test_get_default(self):
        assert XmlElement("r").get("missing", "d") == "d"
        assert XmlElement("r").get("missing") is None

    def test_require_raises(self):
        with pytest.raises(XmlError):
            XmlElement("r").require("missing")


class TestTree:
    def test_element_builder(self):
        root = XmlElement("root")
        child = root.element("child", {"a": "1"}, text="hello")
        assert child.parent is root
        assert root.children == (child,)
        assert child.text == "hello"

    def test_append_rejects_reparenting(self):
        root = XmlElement("root")
        child = root.element("c")
        other = XmlElement("other")
        with pytest.raises(XmlError):
            other.append(child)

    def test_detach_allows_reparenting(self):
        root = XmlElement("root")
        child = root.element("c")
        other = XmlElement("other")
        other.append(child.detach())
        assert root.children == ()
        assert child.parent is other

    def test_find_and_find_all(self):
        root = XmlElement("root")
        root.element("a", {"i": "1"})
        root.element("b")
        root.element("a", {"i": "2"})
        assert root.find("a").get("i") == "1"
        assert [e.get("i") for e in root.find_all("a")] == ["1", "2"]
        assert root.find("zzz") is None

    def test_first_raises_when_absent(self):
        with pytest.raises(XmlError):
            XmlElement("root").first("missing")

    def test_find_by_qname_is_namespace_strict(self):
        root = XmlElement("root")
        root.element(QName(NS_WSDL, "binding"))
        assert root.find(QName(NS_WSDL, "binding")) is not None
        assert root.find(QName("urn:other", "binding")) is None
        assert root.find("binding") is not None  # bare name is lenient

    def test_iter_preorder(self):
        root = XmlElement("r")
        a = root.element("a")
        a.element("b")
        root.element("c")
        assert [e.name.local for e in root.iter()] == ["r", "a", "b", "c"]

    def test_path(self):
        root = XmlElement("r")
        leaf = root.element("a").element("b")
        assert leaf.path() == "/r/a/b"

    def test_text_content_concatenates(self):
        root = XmlElement("r", text="x")
        root.element("a", text="y").element("b", text="z")
        assert root.text_content() == "xyz"

    def test_copy_is_deep_and_detached(self):
        root = XmlElement("r", {"k": "v"})
        root.element("a", text="t")
        dup = root.copy()
        assert dup.parent is None
        assert dup.structurally_equal(root)
        dup.children[0].text = "changed"
        assert root.children[0].text == "t"

    def test_structural_equality(self):
        a = XmlElement("r", {"x": "1"}, children=[XmlElement("c")])
        b = XmlElement("r", {"x": "1"}, children=[XmlElement("c")])
        assert a.structurally_equal(b)
        b.children[0].set("y", "2")
        assert not a.structurally_equal(b)
