"""HarnessName namespace semantics and id generation."""

import pytest

from repro.util.ids import HarnessName, new_id, new_uuid_key


class TestNewId:
    def test_monotonic_unique(self):
        ids = [new_id() for _ in range(100)]
        assert len(set(ids)) == 100

    def test_prefix(self):
        assert new_id("task").startswith("task-")

    def test_uuid_key_unique_and_prefixed(self):
        a, b = new_uuid_key("svc"), new_uuid_key("svc")
        assert a != b
        assert a.startswith("svc:")

    def test_thread_safety(self):
        from repro.util.concurrent import run_all

        results = run_all([lambda: [new_id() for _ in range(200)] for _ in range(8)])
        flat = [i for chunk in results for i in chunk]
        assert len(set(flat)) == len(flat)


class TestHarnessName:
    def test_parse_from_string(self):
        name = HarnessName("/dvm/nodeA/matmul")
        assert name.parts == ("dvm", "nodeA", "matmul")

    def test_str_round_trip(self):
        assert str(HarnessName("/a/b")) == "/a/b"
        assert HarnessName(str(HarnessName(["x", "y"]))) == HarnessName(["x", "y"])

    def test_root(self):
        root = HarnessName.root()
        assert str(root) == "/"
        assert len(root) == 0

    def test_root_leaf_raises(self):
        with pytest.raises(ValueError):
            HarnessName.root().leaf

    def test_child_and_truediv(self):
        name = HarnessName.root() / "dvm" / "node"
        assert name == HarnessName("/dvm/node")
        assert name.leaf == "node"

    def test_parent(self):
        assert HarnessName("/a/b/c").parent == HarnessName("/a/b")
        assert HarnessName.root().parent == HarnessName.root()

    def test_ancestor(self):
        base = HarnessName("/dvm")
        assert base.is_ancestor_of(HarnessName("/dvm/node"))
        assert not base.is_ancestor_of(HarnessName("/dvm"))
        assert not base.is_ancestor_of(HarnessName("/other/node"))

    def test_relative_to(self):
        name = HarnessName("/dvm/node/svc")
        assert name.relative_to(HarnessName("/dvm")) == HarnessName("/node/svc")
        with pytest.raises(ValueError):
            name.relative_to(HarnessName("/x"))

    def test_invalid_component_rejected(self):
        with pytest.raises(ValueError):
            HarnessName(["a/b"])
        with pytest.raises(ValueError):
            HarnessName([""])

    def test_equality_with_string(self):
        assert HarnessName("/a/b") == "/a/b"
        assert HarnessName("/a/b") != "/a/c"

    def test_hashable(self):
        assert len({HarnessName("/a"), HarnessName("/a"), HarnessName("/b")}) == 2

    def test_iter(self):
        assert list(HarnessName("/x/y")) == ["x", "y"]

    def test_multi_component_child(self):
        # child() accepts only single components
        with pytest.raises(ValueError):
            HarnessName("/a").child("b/c")
