"""Dynamic code loading — plugins and components shipped as source.

Section 3: "some plug-ins are provided as part of the system distribution,
while others might be developed by individual users for special situations,
while yet other plug-ins might be obtained from third-party repositories."
The Java Harness pulled class files over the network; the Python analogue
is loading *source text* into a synthetic module at run time.

:func:`load_source_module` compiles source into a uniquely named module
registered in :data:`sys.modules`, which keeps the loaded classes fully
importable afterwards — crucially, ``load_type`` (the local binding's
"classloader") and pickle-based migration keep working for source-loaded
components, because their ``__module__`` resolves.

A :class:`PluginRepository` is the third-party repository itself: named
source bundles that kernels can install from, locally or — registered as a
component — over any binding.
"""

from __future__ import annotations

import sys
import threading
import types

from repro.util.errors import PluginLoadError
from repro.util.ids import new_id

__all__ = ["load_source_module", "load_class_from_source", "PluginRepository"]

_MODULE_PREFIX = "repro_dynamic"
_lock = threading.Lock()


def load_source_module(source: str, module_name: str | None = None) -> types.ModuleType:
    """Compile *source* into a new module registered in ``sys.modules``.

    The module name is uniqued (``repro_dynamic.<n>``) unless given, so
    repeated loads of evolving source never collide — the reconfigurability
    story applied to code itself.
    """
    name = module_name or f"{_MODULE_PREFIX}_{new_id('mod').replace('-', '_')}"
    with _lock:
        if name in sys.modules:
            raise PluginLoadError(f"dynamic module name already in use: {name!r}")
        module = types.ModuleType(name)
        module.__dict__["__source__"] = source
        try:
            code = compile(source, f"<{name}>", "exec")
            exec(code, module.__dict__)
        except SyntaxError as exc:
            raise PluginLoadError(f"dynamic source does not compile: {exc}") from exc
        except Exception as exc:
            raise PluginLoadError(
                f"dynamic source raised during import: {type(exc).__name__}: {exc}"
            ) from exc
        sys.modules[name] = module
    return module


def load_class_from_source(source: str, class_name: str) -> type:
    """Load *source* and return the class named *class_name* from it."""
    module = load_source_module(source)
    obj = getattr(module, class_name, None)
    if not isinstance(obj, type):
        raise PluginLoadError(
            f"dynamic source defines no class {class_name!r}"
        )
    return obj


class PluginRepository:
    """A third-party repository of plugin/component source bundles.

    Deliberately simple: named entries of ``(source, class_name)``.  It is
    an ordinary object, so deploying it into a container turns it into a
    remote repository any kernel can install from (its operations take and
    return plain strings).
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[str, str]] = {}
        self._lock = threading.Lock()

    def publish(self, name: str, source: str, class_name: str) -> bool:
        """Publish a source bundle; validates that it compiles and defines
        the class *before* accepting it."""
        load_class_from_source(source, class_name)  # validation load
        with self._lock:
            self._entries[name] = (source, class_name)
        return True

    def catalog(self) -> list:
        with self._lock:
            return sorted(self._entries)

    def fetch(self, name: str) -> dict:
        """The bundle as a plain dict (travels over any binding)."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise PluginLoadError(f"repository has no bundle {name!r}")
        return {"name": name, "source": entry[0], "class_name": entry[1]}

    def materialize(self, name: str) -> type:
        """Fetch + load in one step (local use)."""
        bundle = self.fetch(name)
        return load_class_from_source(bundle["source"], bundle["class_name"])
