"""Heartbeat failure detection for the DVM — the "robustness" half of §1.

The paper motivates Harness with "improving robustness … and adaptation"
through dynamic reconfiguration of the DVM; reconfiguration needs a trigger.
:class:`FailureDetector` provides it: an observer node pings every other
enrolled member over the fabric's ``dvm-ping`` endpoint and tracks
consecutive misses per member — a miss-count accrual detector, the discrete
cousin of the φ-accrual detectors used by later grid middleware.  A member
accrues suspicion monotonically:

    ALIVE --(suspect_after misses)--> SUSPECTED --(evict_after)--> DEAD

Reaching DEAD triggers :meth:`DistributedVirtualMachine.evict_node`: the
member leaves the coherency protocol, its components are deregistered from
the unified namespace, and ``dvm.member.dead`` is published — which is the
event the recovery layer's failover manager listens for.

Two SWIM-style refinements make the detector scale to gossip-sized fleets:

* **Indirect probing** (``indirect_probes=k``): when a direct ping would
  push a member over the suspicion threshold, the observer first asks *k*
  random healthy members to ping the target on its behalf over the
  ``dvm-probe`` endpoint.  One ack refutes the suspicion — a slow or lossy
  observer→target path no longer triggers eviction storms; only a member no
  proxy can reach keeps accruing misses.
* **Event coalescing** (``coalesce_after``): each tick batches its
  suspicion/recovery/eviction outcomes.  Below the threshold the familiar
  per-member events are published (back compatible); at or above it one
  batched event per topic carries the whole cohort — 1k simultaneous
  suspicions are one bus publication, and the evictions go through
  :meth:`DistributedVirtualMachine.evict_nodes` as one membership event.

``sample=m`` additionally bounds a tick to ``m`` members drawn from a
seeded randomized round-robin cycle (every member is still probed within
``ceil(n/m)`` ticks), so a 10k-member detector does no O(n) scan per tick.

The detector is *tick-driven* for determinism (tests and the simulated
fabric advance it explicitly); :meth:`start` runs the same ticks on a
daemon thread for wall-clock deployments.
"""

from __future__ import annotations

import enum
import random
import threading

from repro.netsim.fabric import VirtualNetwork
from repro.obs import metrics as _metrics
from repro.transport.base import TransportMessage
from repro.util.errors import DvmError, TransportError

__all__ = [
    "NodeHealth",
    "FailureDetector",
    "PING_ENDPOINT",
    "PROBE_ENDPOINT",
    "bind_ping_endpoint",
    "bind_probe_endpoint",
]

PING_ENDPOINT = "dvm-ping"
PROBE_ENDPOINT = "dvm-probe"
_CT = "application/x-harness-ping"

_MISSES = _metrics.registry.counter("dvm.detector.misses")
_SUSPECTED = _metrics.registry.counter("dvm.detector.suspected")
_EVICTED = _metrics.registry.counter("dvm.detector.evicted")
_RECOVERED = _metrics.registry.counter("dvm.detector.recovered")
_PROBES = _metrics.registry.counter("dvm.detector.indirect_probes")
_REFUTED = _metrics.registry.counter("dvm.detector.refuted")


def bind_ping_endpoint(network: VirtualNetwork, host_name: str) -> None:
    """Expose the heartbeat endpoint on a host (idempotent)."""

    def pong(message: TransportMessage) -> TransportMessage:
        return TransportMessage(_CT, message.payload)

    host = network.host(host_name)
    host.unbind(PING_ENDPOINT)
    host.bind(PING_ENDPOINT, pong)


def bind_probe_endpoint(network: VirtualNetwork, host_name: str) -> None:
    """Expose the SWIM ping-req endpoint: ping a named target on request.

    The payload is the target's host name; the proxy pings it over its own
    fabric path and answers ``ack``/``nack`` — a different network route
    than the suspicious observer's, which is the whole point.
    """

    def probe(message: TransportMessage) -> TransportMessage:
        target = message.payload.decode("utf-8")
        try:
            network.request(
                host_name, target, PING_ENDPOINT, TransportMessage(_CT, b"ping")
            )
            return TransportMessage(_CT, b"ack")
        except TransportError:
            return TransportMessage(_CT, b"nack")

    host = network.host(host_name)
    host.unbind(PROBE_ENDPOINT)
    host.bind(PROBE_ENDPOINT, probe)


class NodeHealth(enum.Enum):
    """Detector-side view of a member's liveness."""

    ALIVE = "alive"
    SUSPECTED = "suspected"
    DEAD = "dead"


class FailureDetector:
    """Pings DVM members and evicts the ones that stop answering.

    ``suspect_after`` consecutive missed heartbeats mark a member SUSPECTED
    (``dvm.member.suspected`` published, nothing evicted yet — a suspected
    member that answers again is fully rehabilitated); ``evict_after``
    misses mark it DEAD and trigger eviction.  The *observer* defaults to
    the first enrolled node and falls over to the next alive member if the
    observer itself dies.

    ``indirect_probes=k`` enables SWIM confirmation: a member about to cross
    the suspicion threshold is first probed through ``k`` random healthy
    proxies, and one ack refutes the miss entirely.  ``sample=m`` probes
    only ``m`` members per tick (randomized round-robin, seeded).
    ``coalesce_after`` is the batching threshold: a tick producing at least
    that many suspicions/recoveries/evictions publishes one batched event
    per topic instead of per-member events.

    In wall-clock mode (:meth:`start`) each round waits ``interval_s``
    scaled by a uniformly drawn ±``jitter`` factor, so a fleet of detectors
    never phase-locks its ping bursts onto the fabric.  The jitter stream is
    seeded (``seed``) and therefore reproducible: :meth:`next_interval`
    yields the exact same schedule for the same seed.
    """

    def __init__(
        self,
        dvm,
        observer: str | None = None,
        suspect_after: int = 2,
        evict_after: int = 3,
        interval_s: float = 0.5,
        jitter: float = 0.1,
        seed: int | None = None,
        indirect_probes: int = 0,
        sample: int | None = None,
        coalesce_after: int = 8,
    ):
        if suspect_after < 1 or evict_after < suspect_after:
            raise DvmError("need 1 <= suspect_after <= evict_after")
        if not 0.0 <= jitter < 1.0:
            raise DvmError("need 0 <= jitter < 1")
        if indirect_probes < 0:
            raise DvmError("indirect_probes must be >= 0")
        if sample is not None and sample < 1:
            raise DvmError("sample must be >= 1 (or None for every member)")
        if coalesce_after < 1:
            raise DvmError("coalesce_after must be >= 1")
        self.dvm = dvm
        self.observer = observer
        self.suspect_after = suspect_after
        self.evict_after = evict_after
        self.interval_s = interval_s
        self.jitter = jitter
        self.indirect_probes = indirect_probes
        self.sample = sample
        self.coalesce_after = coalesce_after
        self._rng = random.Random(seed)
        self._misses: dict[str, int] = {}
        self._health: dict[str, NodeHealth] = {}
        self._probe_cycle: list[str] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- introspection ------------------------------------------------------------

    def health(self, member: str) -> NodeHealth:
        return self._health.get(member, NodeHealth.ALIVE)

    def statuses(self) -> dict[str, NodeHealth]:
        return {m: self.health(m) for m in self.dvm.nodes()}

    def contactable(self, member: str) -> bool:
        """Whether *member* may be sent a non-heartbeat request.

        SUSPECTED members are still contacted (they may merely be slow and
        a successful call rehabilitates nothing the detector tracks), DEAD
        ones are not — the cluster metrics collector uses this to avoid
        hanging a pull on a corpse and marks the node STALE instead.
        """
        return self.health(member) is not NodeHealth.DEAD

    # -- one heartbeat round -------------------------------------------------------

    def _pick_observer(self) -> str | None:
        members = self.dvm.nodes()
        if not members:
            return None
        if self.observer in members and self.dvm.network.host(self.observer).up:
            return self.observer
        for member in members:
            if self.dvm.network.host(member).up:
                return member
        return None

    def _probe_targets(self, observer: str) -> list[str]:
        """The members to ping this tick: all of them, or a ``sample`` drawn
        from a seeded randomized round-robin cycle (full coverage every
        ``ceil(n/sample)`` ticks, no O(n) scan per tick)."""
        members = [m for m in self.dvm.nodes() if m != observer]
        if self.sample is None or self.sample >= len(members):
            return members
        current = set(members)
        cycle = [m for m in self._probe_cycle if m in current]
        picked: list[str] = []
        while len(picked) < self.sample:
            if not cycle:
                cycle = members[:]
                self._rng.shuffle(cycle)
            candidate = cycle.pop()
            if candidate not in picked:
                picked.append(candidate)
        self._probe_cycle = cycle
        return picked

    def tick(self) -> list[str]:
        """One heartbeat round; returns the members evicted this round.

        Outcomes are gathered over the whole round and published coalesced:
        fewer than ``coalesce_after`` per topic keeps the per-member events,
        at or above it one batched event carries the cohort and evictions go
        through :meth:`~DistributedVirtualMachine.evict_nodes` as a single
        membership change.
        """
        observer = self._pick_observer()
        if observer is None:
            return []
        suspected: list[dict] = []
        recovered: list[str] = []
        dead: list[str] = []
        for member in self._probe_targets(observer):
            alive = self._ping(observer, member)
            if (
                not alive
                and self.indirect_probes
                and self._misses.get(member, 0) + 1 >= self.suspect_after
            ):
                # SWIM: before suspecting, ask k proxies to try their path
                alive = self._indirectly_reachable(observer, member)
            if alive:
                self._misses.pop(member, None)
                # full rehabilitation: a suspected member that answers, or a
                # previously-evicted one that re-enrolled, is ALIVE again
                if self._health.get(member, NodeHealth.ALIVE) is not NodeHealth.ALIVE:
                    self._health[member] = NodeHealth.ALIVE
                    _RECOVERED.inc()
                    recovered.append(member)
                continue
            misses = self._misses.get(member, 0) + 1
            self._misses[member] = misses
            _MISSES.inc()
            if misses >= self.evict_after:
                self._health[member] = NodeHealth.DEAD
                _EVICTED.inc()
                self._misses.pop(member, None)
                dead.append(member)
            elif misses >= self.suspect_after and (
                self._health.get(member) is not NodeHealth.SUSPECTED
            ):
                self._health[member] = NodeHealth.SUSPECTED
                _SUSPECTED.inc()
                suspected.append({"node": member, "misses": misses})
        self._publish_coalesced("dvm.member.suspected", suspected)
        self._publish_coalesced("dvm.member.recovered", recovered)
        if dead:
            if len(dead) >= self.coalesce_after:
                self.dvm.evict_nodes(dead, by=observer)
            else:
                for member in dead:
                    self.dvm.evict_node(member, by=observer)
        return dead

    def _publish_coalesced(self, topic: str, items: list) -> None:
        if not items:
            return
        if len(items) < self.coalesce_after:
            for item in items:
                self.dvm.events.publish(topic, item, source=self.dvm.name)
        else:
            self.dvm.events.publish(
                topic,
                {"nodes": items, "count": len(items), "coalesced": True},
                source=self.dvm.name,
            )

    def _indirectly_reachable(self, observer: str, member: str) -> bool:
        """Ask up to ``indirect_probes`` healthy proxies to ping *member*."""
        candidates = [
            m
            for m in self.dvm.nodes()
            if m != observer
            and m != member
            and self._health.get(m, NodeHealth.ALIVE) is NodeHealth.ALIVE
        ]
        if not candidates:
            return False
        proxies = self._rng.sample(
            candidates, min(self.indirect_probes, len(candidates))
        )
        for proxy in proxies:
            _PROBES.inc()
            try:
                reply = self.dvm.network.request(
                    observer,
                    proxy,
                    PROBE_ENDPOINT,
                    TransportMessage(_CT, member.encode("utf-8")),
                )
            except TransportError:
                continue
            if reply.payload == b"ack":
                _REFUTED.inc()
                return True
        return False

    def _ping(self, observer: str, member: str) -> bool:
        try:
            self.dvm.network.request(
                observer, member, PING_ENDPOINT, TransportMessage(_CT, b"ping")
            )
            return True
        except TransportError:
            # HostDownError, MessageDroppedError, unbound endpoint: all count
            # as a missed heartbeat — the accrual threshold absorbs lossy
            # links, so a single dropped ping never evicts anybody.
            return False

    # -- wall-clock mode -----------------------------------------------------------

    def next_interval(self) -> float:
        """The next heartbeat wait: ``interval_s`` ± ``jitter`` (seeded)."""
        if self.jitter == 0.0:
            return self.interval_s
        return self.interval_s * (1.0 + self._rng.uniform(-self.jitter, self.jitter))

    def start(self) -> None:
        """Run ticks roughly every ``interval_s`` seconds on a daemon thread,
        each wait independently jittered (see :meth:`next_interval`)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.next_interval()):
                try:
                    self.tick()
                except Exception:
                    # detection must never kill the monitoring thread
                    pass

        self._thread = threading.Thread(target=loop, name="dvm-failure-detector", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "FailureDetector":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
