"""A small namespace-aware XML element model.

``xml.etree.ElementTree`` is used only at the parse/serialize boundary;
inside the framework we keep our own :class:`XmlElement` tree because the
registry query engine (:mod:`repro.xmlkit.query`) and the WSDL model need a
mutable, parent-linked, QName-keyed infoset that ElementTree does not offer.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.util.errors import XmlError
from repro.xmlkit.qname import QName

__all__ = ["XmlElement"]


class XmlElement:
    """One element in an XML document.

    * ``name`` — a :class:`QName`
    * ``attributes`` — dict mapping :class:`QName` (or plain local-name
      strings, normalised to unqualified QNames) to string values
    * ``children`` — ordered child elements (parent links maintained)
    * ``text`` — character content (concatenated, whitespace preserved)
    """

    __slots__ = ("name", "attributes", "_children", "text", "parent")

    def __init__(
        self,
        name: QName | str,
        attributes: dict | None = None,
        text: str = "",
        children: Iterable["XmlElement"] | None = None,
    ):
        self.name = name if isinstance(name, QName) else QName.parse(name)
        self.attributes: dict[QName, str] = {}
        if attributes:
            for key, value in attributes.items():
                self.set(key, value)
        self.text = text
        self.parent: XmlElement | None = None
        self._children: list[XmlElement] = []
        for child in children or ():
            self.append(child)

    # -- attribute access ---------------------------------------------------

    @staticmethod
    def _attr_key(key: QName | str) -> QName:
        return key if isinstance(key, QName) else QName.parse(key)

    def set(self, key: QName | str, value: object) -> "XmlElement":
        """Set an attribute; returns self for chaining."""
        self.attributes[self._attr_key(key)] = str(value)
        return self

    def get(self, key: QName | str, default: str | None = None) -> str | None:
        """Attribute value by QName or local name (unqualified)."""
        qkey = self._attr_key(key)
        if qkey in self.attributes:
            return self.attributes[qkey]
        if not qkey.namespace:
            # fall back to matching by local name regardless of namespace
            for attr, value in self.attributes.items():
                if attr.local == qkey.local:
                    return value
        return default

    def require(self, key: QName | str) -> str:
        """Attribute value or :class:`XmlError` if absent."""
        value = self.get(key)
        if value is None:
            raise XmlError(f"<{self.name.local}> missing required attribute {key!r}")
        return value

    # -- tree manipulation ----------------------------------------------------

    @property
    def children(self) -> tuple["XmlElement", ...]:
        return tuple(self._children)

    def append(self, child: "XmlElement") -> "XmlElement":
        """Append *child* and return it (handy for builder-style code)."""
        if child.parent is not None:
            raise XmlError("element already has a parent; detach it first")
        child.parent = self
        self._children.append(child)
        return child

    def element(self, name: QName | str, attributes: dict | None = None, text: str = "") -> "XmlElement":
        """Create, append and return a new child element."""
        return self.append(XmlElement(name, attributes, text))

    def detach(self) -> "XmlElement":
        """Remove this element from its parent; returns self."""
        if self.parent is not None:
            self.parent._children.remove(self)
            self.parent = None
        return self

    # -- navigation -----------------------------------------------------------

    def find(self, name: QName | str) -> "XmlElement | None":
        """First direct child whose name matches (namespace-insensitive if bare)."""
        for child in self._children:
            if _name_matches(child.name, name):
                return child
        return None

    def find_all(self, name: QName | str) -> list["XmlElement"]:
        """All direct children matching *name*."""
        return [c for c in self._children if _name_matches(c.name, name)]

    def first(self, name: QName | str) -> "XmlElement":
        """Like :meth:`find` but raises :class:`XmlError` when absent."""
        found = self.find(name)
        if found is None:
            raise XmlError(f"<{self.name.local}> has no <{name}> child")
        return found

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first pre-order traversal including self."""
        yield self
        for child in self._children:
            yield from child.iter()

    def path(self) -> str:
        """Slash path of local names from the root, for diagnostics."""
        parts = []
        node: XmlElement | None = self
        while node is not None:
            parts.append(node.name.local)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    # -- value helpers ----------------------------------------------------------

    def text_content(self) -> str:
        """Concatenated text of this element and all descendants."""
        return self.text + "".join(c.text_content() for c in self._children)

    def copy(self) -> "XmlElement":
        """Deep copy with no parent."""
        dup = XmlElement(self.name, dict(self.attributes), self.text)
        for child in self._children:
            dup.append(child.copy())
        return dup

    # -- equality (structural) ----------------------------------------------------

    def structurally_equal(self, other: "XmlElement") -> bool:
        """Deep equality of names, attributes, text and child order."""
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.text == other.text
            and len(self._children) == len(other._children)
            and all(a.structurally_equal(b) for a, b in zip(self._children, other._children))
        )

    def __repr__(self) -> str:
        return f"<XmlElement {self.name.local} attrs={len(self.attributes)} children={len(self._children)}>"


def _name_matches(name: QName, pattern: QName | str) -> bool:
    if isinstance(pattern, QName):
        return name == pattern
    # Bare string: match by local name only (convenient, namespace-lenient).
    return name.local == pattern
