"""SOAP message codec plugging into the content-type codec registry."""

from __future__ import annotations

from typing import Any

from repro.obs import trace as _trace
from repro.soap import envelope as env
from repro.util.errors import SoapFaultError

__all__ = ["SoapMessageCodec"]


def _with_trace(payload: bytes) -> bytes:
    """Splice the current trace context into *payload* as a SOAP Header.

    A no-op (and a single global read) when tracing is disabled, so the
    cached-template fast path keeps its byte-identical output.
    """
    if _trace.ENABLED:
        ctx = _trace.current()
        if ctx is not None:
            return _trace.splice_soap(payload, ctx)
    return payload


class SoapMessageCodec:
    """RPC call/reply codec speaking SOAP 1.1 envelopes.

    ``array_mode`` selects how numeric arrays are serialized: ``"base64"``
    (SOAP's default XSD base64Binary, per the paper) or ``"items"``
    (element-per-value SOAP-ENC arrays).  The content type carries the mode
    so both ends agree.
    """

    def __init__(self, array_mode: str = "base64"):
        self.array_mode = array_mode
        self.content_type = (
            "text/xml" if array_mode == "base64" else f"text/xml; arrays={array_mode}"
        )

    def encode_call(self, target: str, operation: str, args: tuple | list) -> bytes:
        return _with_trace(env.build_call_envelope(target, operation, args, self.array_mode))

    def call_encoder(self, target: str, operation: str):
        """A cached marshalling plan: every constant byte of the envelope
        (XML declaration, xmlns block, operation tag with its ``target``
        attribute) is rendered once; per call only the argument fragments
        are written.  Stubs probe for this and wire it into their
        per-operation plan exactly as they do for XDR."""
        encode = env.call_encoder(target, operation, self.array_mode).encode

        def encode_with_trace(args):
            # the trace header rides the encoder's own join — splicing it
            # into the finished envelope would re-copy the whole payload
            # (tens of microseconds on a 16k-element array)
            if _trace.ENABLED:
                ctx = _trace.current()
                if ctx is not None:
                    return encode(args, _trace.soap_header_block(ctx))
            return encode(args)

        return encode_with_trace

    def decode_call(self, data: bytes) -> tuple[str, str, list]:
        # the zero-copy TCP path hands memoryview payloads; XML parsing needs bytes
        if not isinstance(data, (bytes, bytearray, str)):
            data = bytes(data)
        return env.parse_call_envelope(data)

    def encode_reply(self, result: Any = None, fault: str | None = None) -> bytes:
        if fault is not None:
            return env.build_fault_envelope("soapenv:Server", fault)
        return env.build_reply_envelope(result, array_mode=self.array_mode)

    def decode_reply(self, data: bytes) -> Any:
        if not isinstance(data, (bytes, bytearray, str)):
            data = bytes(data)
        return env.parse_reply_envelope(data)

    def decode_reply_ex(self, data: bytes) -> tuple[Any, SoapFaultError | None]:
        """Decode a reply in a single parse, returning ``(result, fault)``.

        Exactly one of the pair is meaningful.  Callers that want to inspect
        a fault without unwinding (supervisors, retry policies) use this
        instead of calling ``decode_reply`` under ``try`` and re-parsing.
        """
        if not isinstance(data, (bytes, bytearray, str)):
            data = bytes(data)
        return env.parse_reply_envelope_ex(data)

    def fault_to_exception(self, data: bytes) -> SoapFaultError | None:
        """Parse *data* once; return the fault it carries, or None for a
        success reply."""
        return self.decode_reply_ex(data)[1]
