"""Distributed lookup schemes over the simulated fabric.

Section 5: "For the discovery mechanism, there is a whole range of
implementation approaches.  At one extreme, there are centralized lookup
services.  They are easy to implement and use, but they introduce a single
point of failure and a potential scalability bottleneck.  At the other
extreme, a completely decentralized approach leads to a registration phase
that is fully localized and does not involve any network traffic, whereas
the discovery phase performs an active lookup that can be expensive and
difficult to manage.  Most frameworks provide solutions that are
intermediate to these extremes."

Three schemes below realize the two extremes and one intermediate
(neighborhood replication).  All exchange *real serialized bytes* over the
:class:`~repro.netsim.VirtualNetwork` so the C5 benchmark's message/byte
accounting is honest.
"""

from __future__ import annotations

from repro.netsim.fabric import HostDownError, VirtualNetwork
from repro.registry.local import ServiceRegistry
from repro.transport.base import TransportMessage
from repro.util.errors import RegistryError, ServiceNotFoundError
from repro.wsdl.io import document_from_string, document_to_string
from repro.wsdl.model import WsdlDocument

__all__ = [
    "DistributedLookup",
    "CentralizedLookup",
    "DecentralizedLookup",
    "NeighborhoodLookup",
]

_SEP = b"\x1e"  # record separator between WSDL documents in responses
_QUERY_CT = "application/x-harness-query"
_WSDL_CT = "text/xml; wsdl"


class _LookupNode:
    """Per-host state: a local registry plus the network endpoint."""

    def __init__(self, scheme: "DistributedLookup", host_name: str):
        self.registry = ServiceRegistry(name=f"{host_name}.registry")
        self.host_name = host_name
        scheme.network.host(host_name).bind(scheme.endpoint, self._serve)

    def _serve(self, message: TransportMessage) -> TransportMessage:
        if message.content_type == _QUERY_CT:
            expression = message.payload.decode("utf-8")
            matches = self.registry.find(expression)
            payload = _SEP.join(
                document_to_string(m.document, indent=False).encode("utf-8")
                for m in matches
            )
            return TransportMessage(_WSDL_CT, payload)
        if message.content_type == _WSDL_CT:
            self.registry.register(document_from_string(message.payload))
            return TransportMessage("text/plain", b"ok")
        raise RegistryError(f"lookup node cannot handle {message.content_type!r}")


class DistributedLookup:
    """Base: one lookup node per host in the network."""

    #: endpoint name bound on every host
    endpoint = "lookup"
    #: per-host node type; schemes with richer endpoints (sharded) override
    node_class = _LookupNode

    def __init__(self, network: VirtualNetwork):
        self.network = network
        self.nodes: dict[str, _LookupNode] = {
            host.name: self.node_class(self, host.name) for host in network.hosts()
        }

    def register(self, host_name: str, document: WsdlDocument) -> None:
        """Publish *document* from *host_name* according to the scheme."""
        raise NotImplementedError

    def discover(self, host_name: str, expression: str) -> list[WsdlDocument]:
        """Find services matching the XML query, as seen from *host_name*."""
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------------

    def _node(self, host_name: str) -> _LookupNode:
        """The lookup node on *host_name*, or a typed fault — never KeyError."""
        try:
            return self.nodes[host_name]
        except KeyError:
            raise RegistryError(f"unknown lookup host {host_name!r}") from None

    def _send_wsdl(self, src: str, dst: str, document: WsdlDocument) -> None:
        payload = document_to_string(document, indent=False).encode("utf-8")
        self.network.request(src, dst, self.endpoint, TransportMessage(_WSDL_CT, payload))

    def _query(self, src: str, dst: str, expression: str) -> list[WsdlDocument]:
        response = self.network.request(
            src, dst, self.endpoint,
            TransportMessage(_QUERY_CT, expression.encode("utf-8")),
        )
        if not response.payload:
            return []
        return [document_from_string(chunk) for chunk in response.payload.split(_SEP)]


class CentralizedLookup(DistributedLookup):
    """One well-known registry host; everything flows through it.

    Easy and cheap to query (one round trip) but the registry host is a
    single point of failure and every operation serializes through it.
    """

    def __init__(self, network: VirtualNetwork, registry_host: str):
        super().__init__(network)
        if registry_host not in self.nodes:
            raise RegistryError(f"unknown registry host {registry_host!r}")
        self.registry_host = registry_host

    def register(self, host_name: str, document: WsdlDocument) -> None:
        self._node(host_name)  # typed fault for unknown hosts
        self._send_wsdl(host_name, self.registry_host, document)

    def discover(self, host_name: str, expression: str) -> list[WsdlDocument]:
        self._node(host_name)
        return self._query(host_name, self.registry_host, expression)


class DecentralizedLookup(DistributedLookup):
    """Registration is purely local; discovery floods the whole DVM.

    "a registration phase that is fully localized and does not involve any
    network traffic, whereas the discovery phase performs an active lookup
    that can be expensive" (Section 5).
    """

    def register(self, host_name: str, document: WsdlDocument) -> None:
        self._node(host_name).registry.register(document)  # zero messages

    def discover(self, host_name: str, expression: str) -> list[WsdlDocument]:
        results: list[WsdlDocument] = []
        seen: set[str] = set()
        # local check first (free), then flood every reachable peer
        for match in self._node(host_name).registry.find(expression):
            results.append(match.document)
            seen.add(match.name)
        for peer in self.nodes:
            if peer == host_name:
                continue
            try:
                for document in self._query(host_name, peer, expression):
                    if document.name not in seen:
                        seen.add(document.name)
                        results.append(document)
            except HostDownError:
                continue
        return results


class NeighborhoodLookup(DistributedLookup):
    """Intermediate scheme: replicate registrations to *k* ring neighbours.

    Registration costs k messages; discovery checks self + k neighbours and
    only floods the remainder when the neighbourhood misses — the paper's
    "full synchrony across small neighborhoods but … distributed queries
    for farther hosts" idea applied to lookup.
    """

    def __init__(self, network: VirtualNetwork, replication: int = 2):
        super().__init__(network)
        if replication < 1:
            raise RegistryError("replication factor must be >= 1")
        self.replication = replication
        self._ring = sorted(self.nodes)

    def _neighbors(self, host_name: str) -> list[str]:
        self._node(host_name)  # typed fault for unknown hosts
        index = self._ring.index(host_name)
        return [
            self._ring[(index + step) % len(self._ring)]
            for step in range(1, self.replication + 1)
            if self._ring[(index + step) % len(self._ring)] != host_name
        ]

    def register(self, host_name: str, document: WsdlDocument) -> None:
        self._node(host_name).registry.register(document)
        for neighbor in self._neighbors(host_name):
            try:
                self._send_wsdl(host_name, neighbor, document)
            except HostDownError:
                continue

    def discover(self, host_name: str, expression: str) -> list[WsdlDocument]:
        results: list[WsdlDocument] = []
        seen: set[str] = set()
        for match in self._node(host_name).registry.find(expression):
            seen.add(match.name)
            results.append(match.document)
        neighborhood = self._neighbors(host_name)
        for peer in neighborhood:
            try:
                documents = self._query(host_name, peer, expression)
            except HostDownError:
                continue
            for document in documents:
                if document.name not in seen:
                    seen.add(document.name)
                    results.append(document)
        if results:
            return results
        # neighbourhood miss: fall back to flooding the rest of the ring
        for peer in self._ring:
            if peer == host_name or peer in neighborhood:
                continue
            try:
                documents = self._query(host_name, peer, expression)
            except HostDownError:
                continue
            for document in documents:
                if document.name not in seen:
                    seen.add(document.name)
                    results.append(document)
        return results
