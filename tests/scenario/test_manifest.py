"""Manifest parsing: strict schema, typed failures, seeded copies."""

import pytest

from repro.scenario.manifest import (
    ScenarioManifest,
    load_manifest,
    parse_manifest,
)
from repro.util.errors import ScenarioError


def minimal(**overrides) -> dict:
    data = {
        "name": "t",
        "seed": 3,
        "duration_s": 2.0,
        "tick_s": 0.5,
        "topology": {"kind": "lan", "hosts": 3},
        "services": [
            {
                "name": "counter",
                "type": "repro.plugins.services:CounterService",
                "node": "node0",
            }
        ],
        "workload": {
            "service": "counter",
            "from_nodes": ["node1"],
            "ops": [{"op": "increment", "args": [1]}],
        },
        "faults": [{"at": 1.0, "action": "kill", "node": "node2"}],
        "checks": [{"check": "no_lost_calls"}],
    }
    data.update(overrides)
    return data


class TestParsing:
    def test_minimal_manifest_parses(self):
        manifest = parse_manifest(minimal())
        assert isinstance(manifest, ScenarioManifest)
        assert manifest.n_ticks == 4
        assert manifest.services[0].bindings == ("local-instance", "sim")
        assert manifest.faults[0].params == {"node": "node2"}
        assert manifest.checks[0].check == "no_lost_calls"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown keys"):
            parse_manifest(minimal(surprise=True))

    def test_unknown_fault_action_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault action"):
            parse_manifest(
                minimal(faults=[{"at": 1.0, "action": "meteor", "node": "node0"}])
            )

    def test_unknown_check_rejected(self):
        with pytest.raises(ScenarioError, match="unknown check"):
            parse_manifest(minimal(checks=[{"check": "vibes_good"}]))

    def test_fault_after_duration_rejected(self):
        with pytest.raises(ScenarioError, match="lands after"):
            parse_manifest(minimal(faults=[{"at": 99.0, "action": "heal"}]))

    def test_faults_sorted_by_time(self):
        manifest = parse_manifest(
            minimal(
                faults=[
                    {"at": 1.5, "action": "heal"},
                    {"at": 0.5, "action": "kill", "node": "node2"},
                ]
            )
        )
        assert [f.at for f in manifest.faults] == [0.5, 1.5]

    def test_rpc_workload_needs_ops(self):
        workload = {"service": "counter", "from_nodes": ["node1"]}
        with pytest.raises(ScenarioError, match="at least one op"):
            parse_manifest(minimal(workload=workload))

    def test_lookup_mode_needs_no_ops(self):
        workload = {"service": "counter", "from_nodes": ["node1"], "mode": "lookup"}
        manifest = parse_manifest(minimal(workload=workload))
        assert manifest.workload.mode == "lookup"

    def test_policy_jitter_defaults_to_zero(self):
        workload = minimal()["workload"]
        workload["policy"] = {"max_attempts": 3}
        manifest = parse_manifest(minimal(workload=workload))
        assert manifest.workload.policy["jitter"] == 0.0

    def test_unknown_policy_key_rejected(self):
        workload = minimal()["workload"]
        workload["policy"] = {"warp_factor": 9}
        with pytest.raises(ScenarioError, match="unknown keys"):
            parse_manifest(minimal(workload=workload))

    def test_bad_topology_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown kind"):
            parse_manifest(minimal(topology={"kind": "torus"}))

    def test_with_seed_is_a_copy(self):
        manifest = parse_manifest(minimal())
        reseeded = manifest.with_seed(99)
        assert reseeded.seed == 99 and manifest.seed == 3
        assert reseeded.name == manifest.name


class TestLoading:
    def test_load_json_file(self, tmp_path):
        import json

        path = tmp_path / "m.json"
        path.write_text(json.dumps(minimal()))
        assert load_manifest(path).name == "t"

    def test_invalid_json_is_typed(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_manifest(path)

    def test_non_mapping_is_typed(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("[1, 2]")
        with pytest.raises(ScenarioError, match="must be a mapping"):
            load_manifest(path)
