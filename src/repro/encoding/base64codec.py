"""BASE64 / hex codecs for XSD simple types.

The paper (Section 5, *data encoding issue*) singles out "the default BASE64
encoding adopted by SOAP for XSD data types" as introducing "unacceptable
overheads for scientific data both in terms of the network bandwidth and the
encoding/decoding time".  This module implements exactly that encoding so
the C1 benchmark can measure the overhead for real: numeric arrays are
converted to their big-endian byte representation and then base64-encoded
into element text, and back.

A deliberately slow *pure* implementation is kept alongside the numpy one as
the property-test reference.
"""

from __future__ import annotations

import base64
import binascii
import struct

import numpy as np

from repro.util.errors import EncodingError

__all__ = [
    "encode_array_base64",
    "encode_array_base64_bytes",
    "decode_array_base64",
    "encode_array_base64_pure",
    "decode_array_base64_pure",
    "encode_hex",
    "decode_hex",
    "XSD_TYPE_FOR_DTYPE",
]

#: XSD simple-type names advertised in WSDL for each supported dtype.
XSD_TYPE_FOR_DTYPE = {
    "float64": "xsd:double",
    "float32": "xsd:float",
    "int32": "xsd:int",
    "int64": "xsd:long",
    "uint32": "xsd:unsignedInt",
    "uint64": "xsd:unsignedLong",
    "uint8": "xsd:unsignedByte",
}


#: dtype name -> (native dtype, big-endian dtype); ``np.dtype(str)`` and
#: ``newbyteorder`` cost enough to matter on the per-message hot path
_DTYPE_PAIRS: dict[str, tuple[np.dtype, np.dtype]] = {}


def _dtype_pair(dtype: str) -> tuple[np.dtype, np.dtype]:
    pair = _DTYPE_PAIRS.get(dtype)
    if pair is None:
        native = np.dtype(dtype)
        pair = _DTYPE_PAIRS[dtype] = (native, native.newbyteorder(">"))
    return pair


def encode_array_base64(values, dtype: str = "float64") -> str:
    """Encode a numeric sequence as base64 text of big-endian machine values."""
    return encode_array_base64_bytes(values, dtype).decode("ascii")


def encode_array_base64_bytes(values, dtype: str = "float64") -> bytes:
    """Like :func:`encode_array_base64` but returns ASCII ``bytes``.

    The big-endian conversion is the only copy: ``b64encode`` reads the
    array buffer through ``memoryview`` (no ``tobytes()`` detour), and the
    streaming envelope writer splices the result into its output buffer
    without ever decoding to ``str``.
    """
    try:
        array = np.ascontiguousarray(values, dtype=_dtype_pair(dtype)[1])
    except (TypeError, ValueError) as exc:
        raise EncodingError(f"cannot encode as {dtype}: {exc}") from exc
    return base64.b64encode(memoryview(array).cast("B"))


def decode_array_base64(text: str, dtype: str = "float64") -> np.ndarray:
    """Decode base64 text back into a 1-D numpy array of *dtype*."""
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, ValueError) as exc:
        raise EncodingError(f"invalid base64 payload: {exc}") from exc
    try:
        dt, dt_be = _dtype_pair(dtype)
    except TypeError as exc:
        raise EncodingError(f"unsupported dtype: {dtype}") from exc
    if len(raw) % dt.itemsize:
        raise EncodingError(
            f"payload length {len(raw)} not a multiple of {dt.itemsize} ({dtype})"
        )
    return np.frombuffer(raw, dtype=dt_be).astype(dt, copy=True)


_STRUCT_FOR_DTYPE = {
    "float64": ">d",
    "float32": ">f",
    "int32": ">i",
    "int64": ">q",
    "uint32": ">I",
    "uint64": ">Q",
    "uint8": ">B",
}


def encode_array_base64_pure(values, dtype: str = "float64") -> str:
    """Per-element reference implementation (slow; used to validate the fast path)."""
    fmt = _STRUCT_FOR_DTYPE.get(dtype)
    if fmt is None:
        raise EncodingError(f"unsupported dtype: {dtype}")
    buf = bytearray()
    for value in values:
        buf += struct.pack(fmt, value)
    return base64.b64encode(bytes(buf)).decode("ascii")


def decode_array_base64_pure(text: str, dtype: str = "float64") -> list:
    """Per-element reference decoder matching :func:`encode_array_base64_pure`."""
    fmt = _STRUCT_FOR_DTYPE.get(dtype)
    if fmt is None:
        raise EncodingError(f"unsupported dtype: {dtype}")
    raw = base64.b64decode(text.encode("ascii"), validate=True)
    size = struct.calcsize(fmt)
    if len(raw) % size:
        raise EncodingError("payload length not a multiple of the item size")
    return [struct.unpack(fmt, raw[i : i + size])[0] for i in range(0, len(raw), size)]


def encode_hex(data: bytes) -> str:
    """xsd:hexBinary encoding."""
    return data.hex().upper()


def decode_hex(text: str) -> bytes:
    """xsd:hexBinary decoding."""
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise EncodingError(f"invalid hexBinary: {exc}") from exc
