"""The bundled manifest library: all parse, fast ones run, digests repeat."""

import pytest

from repro.scenario import library
from repro.util.errors import ScenarioError

#: fast subset used where running the whole library would be wasteful
SMOKE = ["partition-heal", "rolling-restart", "slow-consumer"]


class TestCatalog:
    def test_ships_at_least_ten_scenarios(self):
        assert len(library.scenario_names()) >= 10

    def test_every_manifest_parses_and_declares_checks(self):
        for name in library.scenario_names():
            manifest = library.load_scenario(name)
            assert manifest.name == name, f"{name}: manifest name mismatch"
            assert manifest.checks, f"{name}: scenario without pass criteria"
            assert manifest.claim, f"{name}: scenario without a paper claim"

    def test_unknown_name_is_typed(self):
        with pytest.raises(ScenarioError, match="no bundled scenario"):
            library.manifest_path("does-not-exist")

    def test_saturation_scenario_demonstrates_graceful_degradation(self):
        # the acceptance scenario: typed rejects under pressure, p99 bounded
        manifest = library.load_scenario("saturation-degradation")
        names = {c.check for c in manifest.checks}
        assert {"typed_faults_only", "p99_under", "max_call_s"} <= names


class TestExecution:
    def test_smoke_subset_passes(self):
        results = library.run_all(SMOKE)
        assert [r.name for r in results] == SMOKE
        for result in results:
            failed = [c for c in result.checks if not c.passed]
            assert result.passed, f"{result.name}: {[c.detail for c in failed]}"

    def test_verify_reproducible(self):
        identical, sha1, sha2 = library.verify_reproducible("partition-heal")
        assert identical and sha1 == sha2

    def test_run_all_detects_determinism_breaks(self, monkeypatch):
        # sabotage the second run via seed-dependent drift: patch run_scenario
        # to salt the digest on every other call
        calls = {"n": 0}
        real = library.run_scenario

        def flaky(manifest, out_dir=None, seed=None):
            result = real(manifest, out_dir=out_dir, seed=seed)
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                from dataclasses import replace

                result = replace(result, events_sha256="0" * 64)
            return result

        monkeypatch.setattr(library, "run_scenario", flaky)
        results = library.run_all(["partition-heal"], verify_determinism=True)
        assert not results[0].passed
        assert results[0].checks[-1].check == "reproducible_events"

    def test_run_all_writes_artifacts(self, tmp_path):
        library.run_all(["partition-heal"], out_root=tmp_path)
        assert (tmp_path / "partition-heal" / "events.jsonl").is_file()
        assert (tmp_path / "partition-heal" / "result.json").is_file()

    def test_progress_log_lines(self):
        lines = []
        library.run_all(["slow-consumer"], log=lines.append)
        assert len(lines) == 1 and lines[0].startswith("PASS slow-consumer")
