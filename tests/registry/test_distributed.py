"""Distributed lookup schemes: costs and failure modes (C5's mechanics)."""

import pytest

from repro.netsim import lan
from repro.plugins.services import MatMul, WSTime
from repro.registry.distributed import (
    CentralizedLookup,
    DecentralizedLookup,
    NeighborhoodLookup,
)
from repro.netsim.fabric import HostDownError
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import RegistryError


def matmul_doc():
    return generate_wsdl(MatMul, bindings=("soap",))


def time_doc():
    return generate_wsdl(WSTime, bindings=("soap",))


QUERY = "//portType[@name='MatMulPortType']"


class TestCentralized:
    def test_register_and_discover(self):
        net = lan(5)
        lookup = CentralizedLookup(net, "node0")
        lookup.register("node3", matmul_doc())
        found = lookup.discover("node4", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_all_traffic_flows_through_registry_host(self):
        net = lan(5)
        lookup = CentralizedLookup(net, "node0")
        lookup.register("node3", matmul_doc())
        lookup.discover("node4", QUERY)
        for (src, dst), stats in net.stats.items():
            assert "node0" in (src, dst), (src, dst)

    def test_registration_costs_messages(self):
        net = lan(3)
        lookup = CentralizedLookup(net, "node0")
        net.reset_stats()
        lookup.register("node2", matmul_doc())
        assert net.total_messages == 2  # request + ack

    def test_single_point_of_failure(self):
        net = lan(3)
        lookup = CentralizedLookup(net, "node0")
        lookup.register("node1", matmul_doc())
        net.host("node0").crash()
        with pytest.raises(HostDownError):
            lookup.discover("node2", QUERY)
        with pytest.raises(HostDownError):
            lookup.register("node2", time_doc())

    def test_unknown_registry_host(self):
        with pytest.raises(RegistryError):
            CentralizedLookup(lan(2), "ghost")


class TestDecentralized:
    def test_registration_is_free(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        net.reset_stats()
        lookup.register("node1", matmul_doc())
        assert net.total_messages == 0

    def test_discovery_floods(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        lookup.register("node1", matmul_doc())
        net.reset_stats()
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]
        assert net.total_messages == 2 * 3  # query+reply to each other node

    def test_local_hit_still_answers(self):
        net = lan(3)
        lookup = DecentralizedLookup(net)
        lookup.register("node0", matmul_doc())
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_survives_registry_node_crash(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        lookup.register("node1", matmul_doc())
        lookup.register("node2", time_doc())
        net.host("node2").crash()
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]  # node1's entry still found

    def test_dedup_across_hosts(self):
        net = lan(3)
        lookup = DecentralizedLookup(net)
        lookup.register("node0", matmul_doc())
        lookup.register("node1", matmul_doc())
        found = lookup.discover("node2", QUERY)
        assert len(found) == 1


class TestNeighborhood:
    def test_registration_replicates_to_k_neighbors(self):
        net = lan(5)
        lookup = NeighborhoodLookup(net, replication=2)
        net.reset_stats()
        lookup.register("node0", matmul_doc())
        assert net.total_messages == 2 * 2  # two replicas, request+ack each

    def test_neighborhood_hit_avoids_flood(self):
        net = lan(6)
        lookup = NeighborhoodLookup(net, replication=2)
        lookup.register("node0", matmul_doc())
        net.reset_stats()
        # node5's neighbours are node0, node1 (ring): replica hit
        found = lookup.discover("node5", QUERY)
        assert [d.name for d in found] == ["MatMul"]
        assert net.total_messages <= 2 * 2

    def test_miss_falls_back_to_flood(self):
        net = lan(8)
        lookup = NeighborhoodLookup(net, replication=1)
        lookup.register("node0", matmul_doc())
        found = lookup.discover("node4", QUERY)  # far from node0's replicas
        assert [d.name for d in found] == ["MatMul"]

    def test_negative_replication_rejected(self):
        with pytest.raises(RegistryError):
            NeighborhoodLookup(lan(3), replication=0)

    def test_discover_unregistered_returns_empty(self):
        net = lan(4)
        lookup = NeighborhoodLookup(net, replication=1)
        assert lookup.discover("node0", QUERY) == []


class TestNodeLoss:
    """Lookups while members are dying: answer from a replica or raise a
    typed fault — never a bare KeyError, never a hang (the simulated fabric
    is synchronous, so "no hang" here means every path terminates with a
    result or a :class:`~repro.util.errors.HarnessError`)."""

    def test_neighborhood_replica_answers_after_owner_dies(self):
        net = lan(5)
        lookup = NeighborhoodLookup(net, replication=2)
        lookup.register("node0", matmul_doc())  # replicas on node1, node2
        net.host("node0").crash()
        found = lookup.discover("node1", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_neighborhood_register_survives_dead_replica(self):
        net = lan(5)
        lookup = NeighborhoodLookup(net, replication=2)
        net.host("node1").crash()  # one of node0's replicas is already gone
        lookup.register("node0", matmul_doc())  # must not raise
        # the surviving replica (node2) still answers its neighbourhood
        found = lookup.discover("node3", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_neighborhood_flood_skips_dead_members(self):
        net = lan(8)
        lookup = NeighborhoodLookup(net, replication=1)
        lookup.register("node0", matmul_doc())
        net.host("node2").crash()
        net.host("node6").crash()
        # node4 is far from node0's replica: neighbourhood miss -> flood,
        # which must step over the two dead hosts and still find the entry
        found = lookup.discover("node4", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_decentralized_flood_with_majority_down(self):
        net = lan(5)
        lookup = DecentralizedLookup(net)
        lookup.register("node1", matmul_doc())
        for dead in ("node2", "node3", "node4"):
            net.host(dead).crash()
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_decentralized_entry_on_dead_host_vanishes_quietly(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        lookup.register("node1", matmul_doc())
        net.host("node1").crash()
        assert lookup.discover("node0", QUERY) == []

    def test_centralized_down_registry_is_a_typed_fault(self):
        from repro.util.errors import HarnessError

        net = lan(3)
        lookup = CentralizedLookup(net, "node0")
        net.host("node0").crash()
        with pytest.raises(HarnessError):
            lookup.discover("node1", QUERY)

    def test_unknown_host_raises_registry_error_not_keyerror(self):
        # fresh fabric per scheme: each binds the "lookup" endpoint
        for lookup in (
            CentralizedLookup(lan(3), "node0"),
            DecentralizedLookup(lan(3)),
            NeighborhoodLookup(lan(3), replication=1),
        ):
            with pytest.raises(RegistryError):
                lookup.register("ghost", matmul_doc())
            with pytest.raises(RegistryError):
                lookup.discover("ghost", QUERY)
