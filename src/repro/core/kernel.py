"""The Harness kernel — the software backplane (Figure 1).

One kernel runs per enrolled node.  It hosts plugins, wires their required
services to providers, owns the node's component container, and gives
plugins an inter-kernel messaging primitive (used by ``hmsg`` to build the
message-passing service the PVM plugin leans on).

Dynamic loading: plugins arrive as classes, instances, *or dotted import
strings* — "some plug-ins are provided as part of the system distribution,
while others might be developed by individual users … while yet other
plug-ins might be obtained from third-party repositories" (Section 3).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.bindings.stubs import load_type
from repro.container.container import ComponentContainer, LightweightContainer
from repro.core.plugin import Plugin, PluginState
from repro.encoding.xdr import pack_value, unpack_value
from repro.netsim.fabric import VirtualNetwork
from repro.transport.base import TransportMessage
from repro.util.errors import PluginError, PluginLoadError
from repro.util.events import EventBus

__all__ = ["HarnessKernel"]

_KERNEL_ENDPOINT = "harness-kernel"
_CT = "application/x-harness-kernel"


class HarnessKernel:
    """A per-node Harness kernel: plugin host + service backplane."""

    def __init__(
        self,
        host_name: str,
        network: VirtualNetwork | None = None,
        container: ComponentContainer | None = None,
        events: EventBus | None = None,
    ):
        self.host_name = host_name
        self.network = network
        self.events = events or EventBus()
        self.container = container or LightweightContainer(
            name=f"kernel-{host_name}", host=host_name, network=network
        )
        self._lock = threading.RLock()
        self._plugins: dict[str, Plugin] = {}
        self._services: dict[str, tuple[str, object]] = {}  # service -> (plugin, provider)
        self._closed = False
        if network is not None:
            network.host(host_name).bind(_KERNEL_ENDPOINT, self._serve)

    # -- plugin management -----------------------------------------------------------

    def load_plugin(self, plugin: Plugin | type | str, start: bool = True) -> Plugin:
        """Plug a module into the backplane.

        Accepts an instance, a Plugin subclass, or an import string
        (``pkg.module:Class``).  Required services must already be present;
        provided services must not clash.
        """
        if isinstance(plugin, str):
            cls = load_type(plugin)
            if not issubclass(cls, Plugin):
                raise PluginLoadError(f"{plugin!r} is not a Plugin subclass")
            plugin = cls()
        elif isinstance(plugin, type):
            if not issubclass(plugin, Plugin):
                raise PluginLoadError(f"{plugin.__name__} is not a Plugin subclass")
            plugin = plugin()
        name = plugin.name()
        with self._lock:
            if self._closed:
                raise PluginError(f"kernel {self.host_name} is shut down")
            if name in self._plugins:
                raise PluginLoadError(f"plugin {name!r} already loaded on {self.host_name}")
            missing = [r for r in plugin.requires if r not in self._services]
            if missing:
                raise PluginLoadError(
                    f"plugin {name!r} requires unavailable services: {missing}"
                )
            clashes = [p for p in plugin.provides if p in self._services]
            if clashes:
                raise PluginLoadError(
                    f"plugin {name!r} provides services already present: {clashes}"
                )
            self._plugins[name] = plugin
        plugin._attach(self)
        with self._lock:
            for service_name in plugin.provides:
                self._services[service_name] = (name, plugin.service(service_name))
        if start:
            plugin._start()
        self.events.publish("kernel.plugin.loaded", name, source=self.host_name)
        return plugin

    def load_plugin_source(self, source: str, class_name: str, start: bool = True) -> Plugin:
        """Load a plugin whose code arrives as *source text* — the
        "third-party repositories" path of Section 3."""
        from repro.core.loader import load_class_from_source

        cls = load_class_from_source(source, class_name)
        if not issubclass(cls, Plugin):
            raise PluginLoadError(f"{class_name!r} in dynamic source is not a Plugin")
        return self.load_plugin(cls, start=start)

    def unload_plugin(self, name: str) -> None:
        """Remove a plugin; refuses while dependants are loaded."""
        with self._lock:
            plugin = self._plugins.get(name)
            if plugin is None:
                raise PluginError(f"no plugin {name!r} on {self.host_name}")
            provided = set(plugin.provides)
            dependants = [
                other.name()
                for other in self._plugins.values()
                if other is not plugin and provided.intersection(other.requires)
            ]
            if dependants:
                raise PluginError(
                    f"cannot unload {name!r}: required by {sorted(dependants)}"
                )
            del self._plugins[name]
            for service_name in plugin.provides:
                self._services.pop(service_name, None)
        plugin._detach()
        self.events.publish("kernel.plugin.unloaded", name, source=self.host_name)

    def plugin(self, name: str) -> Plugin:
        with self._lock:
            plugin = self._plugins.get(name)
        if plugin is None:
            raise PluginError(f"no plugin {name!r} on {self.host_name}")
        return plugin

    def plugins(self) -> list[str]:
        with self._lock:
            return sorted(self._plugins)

    def get_service(self, service_name: str) -> object:
        """Provider object for *service_name* (backplane lookup)."""
        with self._lock:
            entry = self._services.get(service_name)
        if entry is None:
            raise PluginError(f"no service {service_name!r} on kernel {self.host_name}")
        return entry[1]

    def has_service(self, service_name: str) -> bool:
        with self._lock:
            return service_name in self._services

    def services(self) -> dict[str, str]:
        """service name → providing plugin name."""
        with self._lock:
            return {svc: plugin for svc, (plugin, _) in self._services.items()}

    # -- inter-kernel messaging --------------------------------------------------------

    def send(self, dst_host: str, service_name: str, payload: Any) -> Any:
        """Deliver *payload* to *service_name* on the kernel at *dst_host*.

        The remote provider's ``handle_message(src_host, payload)`` is
        invoked; its return value travels back.  Costs are charged to the
        virtual network (XDR-encoded both ways).
        """
        if self.network is None:
            raise PluginError(f"kernel {self.host_name} has no network")
        request = {"service": service_name, "src": self.host_name, "payload": payload}
        response = self.network.request(
            self.host_name, dst_host, _KERNEL_ENDPOINT,
            TransportMessage(_CT, pack_value(request)),
        )
        reply = unpack_value(response.payload)
        if reply.get("error"):
            raise PluginError(f"remote kernel {dst_host}: {reply['error']}")
        return reply.get("result")

    def _serve(self, message: TransportMessage) -> TransportMessage:
        request = unpack_value(message.payload)
        service_name = request["service"]
        try:
            provider = self.get_service(service_name)
            handler = getattr(provider, "handle_message", None)
            if handler is None:
                raise PluginError(
                    f"service {service_name!r} does not accept kernel messages"
                )
            result = handler(request["src"], request["payload"])
            reply: dict[str, Any] = {"result": result}
        except Exception as exc:
            reply = {"error": f"{type(exc).__name__}: {exc}"}
        return TransportMessage(_CT, pack_value(reply))

    # -- shutdown ------------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop and unload every plugin (reverse load order), close the container."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            plugins = list(self._plugins.values())
            self._plugins.clear()
            self._services.clear()
        for plugin in reversed(plugins):
            try:
                plugin._detach()
            except Exception:
                pass
        self.container.close()
        if self.network is not None:
            self.network.host(self.host_name).unbind(_KERNEL_ENDPOINT)

    def __enter__(self) -> "HarnessKernel":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False
