"""Mailbox chaos scenarios: the bundled manifests and their vocabulary.

Runs the two shipped mailbox manifests end to end (slow consumer under
back-pressure; consumer crash with lease-based redelivery) and pins the
manifest-validation rules for workload mode ``mailbox`` and the
``no_lost_messages`` / ``queue_depth_under`` checkers.
"""

import pytest

from repro.scenario.library import load_scenario, scenario_names, verify_reproducible
from repro.scenario.manifest import parse_manifest
from repro.scenario.runner import run_scenario
from repro.util.errors import ScenarioError


def mailbox_manifest(**overrides) -> dict:
    data = {
        "name": "mbox-test",
        "seed": 7,
        "duration_s": 2.0,
        "tick_s": 0.5,
        "topology": {"kind": "lan", "hosts": 3},
        "self_healing": {"enabled": False},
        "workload": {
            "service": "orders",
            "mode": "mailbox",
            "from_nodes": ["node0"],
            "calls_per_tick": 2,
            "broker_node": "node1",
            "consumers": ["node2"],
            "consume_per_tick": 2,
            "mailbox": {"mode": "first-reader", "capacity": 16,
                        "overflow": "reject"},
        },
        "checks": [{"check": "no_lost_messages"}],
    }
    data.update(overrides)
    return data


class TestBundledScenarios:
    def test_mailbox_manifests_are_bundled(self):
        names = scenario_names()
        assert "mailbox-slow-consumer" in names
        assert "mailbox-consumer-crash" in names

    def test_slow_consumer_back_pressure_passes(self):
        result = run_scenario(load_scenario("mailbox-slow-consumer"))
        assert result.passed, [c.detail for c in result.checks if not c.passed]
        by_name = {c.check: c for c in result.checks}
        # the run actually exercised back-pressure: publishes were rejected
        assert "MailboxFullError" in by_name["typed_faults_only"].detail
        assert by_name["queue_depth_under"].passed
        assert by_name["no_lost_messages"].passed

    def test_consumer_crash_redelivers_to_survivor(self):
        result = run_scenario(load_scenario("mailbox-consumer-crash"))
        assert result.passed, [c.detail for c in result.checks if not c.passed]
        by_name = {c.check: c for c in result.checks}
        assert by_name["no_lost_messages"].passed
        assert by_name["event_count"].passed  # mbox.redelivered fired
        assert "node2" not in result.final_members  # the corpse was evicted

    @pytest.mark.parametrize("name", ["mailbox-slow-consumer",
                                      "mailbox-consumer-crash"])
    def test_same_seed_is_byte_identical(self, name):
        identical, sha1, sha2 = verify_reproducible(name)
        assert identical, f"{name}: {sha1} != {sha2}"


class TestScenarioChecks:
    def test_no_lost_messages_catches_a_real_run(self):
        result = run_scenario(parse_manifest(mailbox_manifest()))
        assert result.passed, [c.detail for c in result.checks if not c.passed]

    def test_mailbox_checks_require_mailbox_workload(self):
        data = mailbox_manifest()
        data["services"] = [{"name": "counter",
                             "type": "repro.plugins.services:CounterService",
                             "node": "node1"}]
        data["workload"] = {"service": "counter", "from_nodes": ["node0"],
                            "calls_per_tick": 1,
                            "ops": [{"op": "increment", "args": [1],
                                     "weight": 1}]}
        result = run_scenario(parse_manifest(data))
        assert not result.passed
        failed = [c for c in result.checks if not c.passed]
        assert failed and "mailbox" in failed[0].detail


class TestManifestValidation:
    def test_mailbox_mode_requires_broker_and_consumers(self):
        data = mailbox_manifest()
        del data["workload"]["broker_node"]
        with pytest.raises(ScenarioError, match="broker_node"):
            parse_manifest(data)
        data = mailbox_manifest()
        data["workload"]["consumers"] = []
        with pytest.raises(ScenarioError, match="consumers"):
            parse_manifest(data)

    def test_mailbox_keys_rejected_outside_mailbox_mode(self):
        data = mailbox_manifest()
        data["workload"]["mode"] = "rpc"
        with pytest.raises(ScenarioError):
            parse_manifest(data)

    def test_unknown_mailbox_mode_and_overflow_rejected(self):
        data = mailbox_manifest()
        data["workload"]["mailbox"]["mode"] = "broadcast"
        with pytest.raises(ScenarioError, match="broadcast"):
            parse_manifest(data)
        data = mailbox_manifest()
        data["workload"]["mailbox"]["overflow"] = "explode"
        with pytest.raises(ScenarioError, match="explode"):
            parse_manifest(data)

    def test_nonpositive_tuning_rejected(self):
        data = mailbox_manifest()
        data["workload"]["consume_per_tick"] = 0
        with pytest.raises(ScenarioError, match="consume_per_tick"):
            parse_manifest(data)
        data = mailbox_manifest()
        data["workload"]["lease_s"] = -1.0
        with pytest.raises(ScenarioError, match="lease_s"):
            parse_manifest(data)
