"""Cluster observability plane: collector statuses, merge exactness,
Prometheus exposition, the console table, and churn behavior over a
live DVM (DESIGN.md §12)."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.builder import HarnessDvm
from repro.netsim.topology import lan
from repro.obs import metrics
from repro.obs.cluster import (
    ClusterCollector,
    NodeStatus,
    deploy_metrics_services,
    merge_metrics,
    prometheus_text,
    render_top,
)
from repro.util.clock import VirtualClock
from repro.util.errors import HarnessError


def _registry_like(counters=(), histogram_fills=()):
    """A per-node metrics mapping built from throwaway instruments."""
    out = {}
    for name, value in counters:
        counter = metrics.Counter(name)
        counter.inc(value)
        out[name] = counter.export()
    for name, values in histogram_fills:
        hist = metrics.Histogram(name)
        for v in values:
            hist.observe(v)
        out[name] = hist.export()
    return out


class TestClusterCollector:
    def test_fresh_pull_and_merge(self):
        clock = VirtualClock()
        data = {
            "a": _registry_like(counters=[("server.requests", 3)]),
            "b": _registry_like(counters=[("server.requests", 4)]),
        }
        collector = ClusterCollector(
            lambda: ["a", "b"], lambda node: data[node], clock=clock
        )
        snaps = collector.collect()
        assert {s.status for s in snaps.values()} == {NodeStatus.FRESH}
        merged = collector.cluster_snapshot()["merged"]
        assert merged["server.requests"]["value"] == 7
        assert merged["server.requests"]["nodes"] == {"a": 3, "b": 4}

    def test_unreachable_node_keeps_last_good_snapshot(self):
        clock = VirtualClock()
        down = set()

        def pull(node):
            if node in down:
                raise HarnessError(f"{node} gone")
            return _registry_like(counters=[("server.requests", 5)])

        collector = ClusterCollector(lambda: ["a"], pull, clock=clock)
        assert collector.collect()["a"].status is NodeStatus.FRESH
        down.add("a")
        clock.advance(30.0)
        snap = collector.collect()["a"]
        assert snap.status is NodeStatus.UNREACHABLE
        assert "HarnessError" in snap.error
        assert snap.age_s == pytest.approx(30.0)
        # the retained snapshot still counts in the merge
        merged = collector.cluster_snapshot()["merged"]
        assert merged["server.requests"]["value"] == 5

    def test_liveness_veto_marks_stale_without_pulling(self):
        pulled = []

        def pull(node):
            pulled.append(node)
            return {}

        collector = ClusterCollector(
            lambda: ["a", "b"], pull, liveness=lambda node: node != "b"
        )
        snaps = collector.collect()
        assert snaps["b"].status is NodeStatus.STALE
        assert "failure detector" in snaps["b"].error
        assert pulled == ["a"]  # the dead node was never contacted

    def test_evicted_member_stays_in_view_with_marker(self):
        members = ["a", "b"]
        collector = ClusterCollector(
            lambda: list(members),
            lambda node: _registry_like(counters=[("server.requests", 2)]),
        )
        collector.collect()
        members.remove("b")
        snaps = collector.collect()
        assert snaps["b"].status is NodeStatus.EVICTED
        assert snaps["a"].status is NodeStatus.FRESH
        # eviction keeps the last-known numbers under the marker
        assert collector.cluster_snapshot()["merged"]["server.requests"]["value"] == 4

    def test_snapshot_is_json_shaped(self):
        collector = ClusterCollector(
            lambda: ["a"], lambda node: _registry_like(counters=[("c", 1)])
        )
        doc = collector.cluster_snapshot()
        node = doc["nodes"]["a"]
        assert node["status"] == "fresh"
        assert node["metrics"]["c"]["value"] == 1


class TestMergeMetrics:
    def test_histogram_merge_is_exact(self):
        """The acceptance property: merged p50/p99/buckets equal a
        reference histogram holding the union of observations."""
        rng = random.Random(99)
        for _ in range(10):
            reference = metrics.Histogram("ref")
            per_node = {}
            for n in range(4):
                hist = metrics.Histogram("h")
                for _ in range(rng.randrange(10, 200)):
                    value = float(int(10 ** rng.uniform(0, 6.5)))
                    hist.observe(value)
                    reference.observe(value)
                per_node[f"node{n}"] = {"h": hist.export()}
            merged = merge_metrics(per_node)["h"]
            expected = reference.export()
            for key in ("buckets", "count", "sum", "min", "max", "p50", "p99"):
                assert merged[key] == expected[key], key

    def test_kind_mismatch_rejected(self):
        a = _registry_like(counters=[("x", 1)])
        b = _registry_like(histogram_fills=[("x", [1.0])])
        with pytest.raises(ValueError):
            merge_metrics({"a": a, "b": b})

    def test_exemplar_merge_keeps_max_per_bucket(self):
        metrics_trace_pairs = {}
        for node, value in (("a", 30.0), ("b", 40.0)):
            hist = metrics.Histogram("h")
            hist.observe(value)
            hist.exemplars[3] = (f"trace-{node}", value)  # bucket le=50
            metrics_trace_pairs[node] = {"h": hist.export()}
        merged = merge_metrics(metrics_trace_pairs)["h"]
        winner = merged["exemplars"]["50"]
        assert winner["node"] == "b"
        assert winner["value"] == 40.0


class TestPrometheusText:
    def test_renders_counters_histograms_and_node_up(self):
        per_node = {
            "n1": _registry_like(
                counters=[("server.requests", 3)],
                histogram_fills=[("server.handle_us", [7.0, 120.0])],
            )
        }
        text = prometheus_text(per_node, statuses={"n1": NodeStatus.FRESH})
        assert '# TYPE repro_server_requests_total counter' in text
        assert 'repro_server_requests_total{node="n1"} 3' in text
        assert 'repro_server_handle_us_bucket{node="n1",le="10"} 1' in text
        assert 'repro_server_handle_us_bucket{node="n1",le="+Inf"} 2' in text
        assert 'repro_server_handle_us_count{node="n1"} 2' in text
        assert 'repro_node_up{node="n1",status="fresh"} 1' in text

    def test_buckets_are_cumulative(self):
        per_node = {"n": _registry_like(histogram_fills=[("h", [7.0, 8.0, 120.0])])}
        text = prometheus_text(per_node)
        assert 'repro_h_bucket{node="n",le="10"} 2' in text
        assert 'repro_h_bucket{node="n",le="250"} 3' in text

    def test_empty_node_label_omitted(self):
        text = prometheus_text({"": _registry_like(counters=[("c", 1)])})
        assert "repro_c_total 1" in text
        assert 'node=""' not in text


class TestRenderTop:
    def test_table_has_per_node_and_merged_rows(self):
        collector = ClusterCollector(
            lambda: ["a", "b"],
            lambda node: _registry_like(
                counters=[("server.requests", 2), ("server.faults", 1)],
                histogram_fills=[("server.handle_us", [100.0])],
            ),
        )
        table = render_top(collector.collect())
        lines = table.splitlines()
        assert any(line.startswith("a") for line in lines)
        assert any(line.startswith("b") for line in lines)
        assert any("MERGED" in line for line in lines)
        merged_line = next(line for line in lines if "MERGED" in line)
        assert "4" in merged_line  # summed requests


class TestOverLiveDvm:
    def _build(self):
        network = lan(3)
        harness = HarnessDvm("obs-test", network)
        for host in ("node0", "node1", "node2"):
            harness.add_node(host)
        return harness

    def test_for_dvm_pulls_every_member(self):
        harness = self._build()
        try:
            deploy_metrics_services(harness)
            deploy_metrics_services(harness)  # idempotent: no duplicate deploys
            collector = ClusterCollector.for_dvm(harness, "node0")
            snaps = collector.collect()
            assert sorted(snaps) == ["node0", "node1", "node2"]
            assert all(s.status is NodeStatus.FRESH for s in snaps.values())
        finally:
            harness.close()

    def test_snapshot_while_evicting(self):
        """Collection mid-eviction: the evicted node flips to a typed
        marker instead of raising out of the collection round."""
        harness = self._build()
        try:
            deploy_metrics_services(harness)
            collector = ClusterCollector.for_dvm(harness, "node0")
            collector.collect()
            harness.dvm.evict_node("node2", by="node0")
            snaps = collector.collect()
            assert snaps["node2"].status is NodeStatus.EVICTED
            assert snaps["node0"].status is NodeStatus.FRESH
        finally:
            harness.close()

    def test_partitioned_node_reports_typed_staleness_without_hanging(self):
        harness = self._build()
        try:
            harness.enable_self_healing(
                observer="node0", suspect_after=1, evict_after=100,
                start_threads=False,
            )
            deploy_metrics_services(harness)
            collector = ClusterCollector.for_dvm(
                harness, "node0", detector=harness.detector
            )
            assert all(
                s.status is NodeStatus.FRESH for s in collector.collect().values()
            )
            harness.network.partition(["node0", "node1"], ["node2"])
            for _ in range(3):
                harness.detector.tick()
            # SUSPECTED members are still contacted; the cut makes the pull
            # fail *typed* instead of hanging the collection round
            from repro.dvm.failure import NodeHealth

            assert harness.detector.health("node2") is NodeHealth.SUSPECTED
            snaps = collector.collect()
            assert snaps["node2"].status is NodeStatus.UNREACHABLE
            assert snaps["node2"].error  # typed marker names the failure
            assert snaps["node0"].status is NodeStatus.FRESH
        finally:
            harness.close()

    def test_dead_member_is_vetoed_not_pulled(self):
        """A detector-DEAD member is never contacted: the collector marks
        it STALE off the liveness verdict alone."""
        from repro.dvm.failure import NodeHealth

        harness = self._build()
        try:
            harness.enable_self_healing(
                observer="node0", suspect_after=1, evict_after=2,
                start_threads=False,
            )
            deploy_metrics_services(harness)
            collector = ClusterCollector.for_dvm(
                harness, "node0", detector=harness.detector
            )
            collector.collect()
            detector = harness.detector
            detector._health["node2"] = NodeHealth.DEAD  # as mid-tick, pre-evict
            assert not detector.contactable("node2")
            snaps = collector.collect()
            assert snaps["node2"].status is NodeStatus.STALE
            assert "failure detector" in snaps["node2"].error
        finally:
            harness.close()


class TestRegistryUnderConcurrency:
    def test_threaded_writes_merge_to_exact_totals(self):
        """8 writer threads hammer striped counters and a histogram while
        snapshots run; the final merged totals are exact."""
        counter = metrics.registry.counter("churn.hits")
        hist = metrics.registry.histogram("churn.lat_us")
        per_thread, n_threads = 500, 8
        start = threading.Barrier(n_threads + 1)

        def writer(tid):
            start.wait()
            for i in range(per_thread):
                counter.inc()
                hist.observe(float((i % 100) + 1))

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        start.wait()
        mid_snapshots = [metrics.registry.snapshot("churn.") for _ in range(20)]
        for t in threads:
            t.join()
        final = metrics.registry.snapshot("churn.")
        assert final["churn.hits"]["value"] == per_thread * n_threads
        assert final["churn.lat_us"]["count"] == per_thread * n_threads
        assert sum(final["churn.lat_us"]["buckets"].values()) == per_thread * n_threads
        # snapshots taken mid-churn are internally sane (monotone counts)
        last = 0
        for snap in mid_snapshots:
            value = snap["churn.hits"]["value"]
            assert 0 <= last <= value <= per_thread * n_threads
            last = value
