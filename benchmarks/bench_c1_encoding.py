"""C1 — the data-encoding issue (Section 5).

Claim: "the default BASE64 encoding adopted by SOAP for XSD data types
introduces unacceptable overheads for scientific data both in terms of the
network bandwidth and the encoding/decoding time" [Govindaraju et al.].

Reproduced series: for float64 arrays from 1 K to 1 M elements, bytes on
the wire and encode+decode CPU time for

* XDR (the Harness II binding's codec, vectorised),
* SOAP with base64Binary arrays (SOAP's default),
* SOAP with element-per-item arrays (the fully-textual extreme).

Expected shape: XDR smallest and fastest at every size; SOAP/base64 ≈ 1.33×
the raw bytes and several× slower; SOAP/items an order of magnitude worse.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.encoding.registry import XdrMessageCodec
from repro.soap.codec import SoapMessageCodec
from repro.soap.mime import MimeMessageCodec

XDR = XdrMessageCodec()
MIME = MimeMessageCodec()
SOAP_B64 = SoapMessageCodec("base64")
SOAP_ITEMS = SoapMessageCodec("items")

CODECS = [
    ("xdr", XDR),
    ("mime", MIME),
    ("soap-base64", SOAP_B64),
    ("soap-items", SOAP_ITEMS),
]


def _array(n: int) -> np.ndarray:
    return np.random.default_rng(7).random(n)


def _round_trip(codec, array: np.ndarray) -> int:
    """Encode a call + decode it server-side + encode/decode the reply."""
    wire = codec.encode_call("svc", "getResult", (array,))
    _, _, args = codec.decode_call(wire)
    reply = codec.encode_reply(args[0])
    codec.decode_reply(reply)
    return len(wire) + len(reply)


# -- pytest-benchmark rows -------------------------------------------------------

@pytest.mark.parametrize("name,codec", CODECS, ids=[c[0] for c in CODECS])
@pytest.mark.parametrize("n", [1_024, 65_536], ids=["1K", "64K"])
def test_encode_decode_benchmark(benchmark, name, codec, n):
    array = _array(n)
    benchmark(_round_trip, codec, array)


@pytest.mark.parametrize(
    "name,codec", [CODECS[0], CODECS[1], CODECS[2]], ids=["xdr", "mime", "soap-base64"]
)
def test_encode_decode_benchmark_1m(benchmark, name, codec):
    array = _array(1_048_576)  # 8 MB payload; items mode excluded (minutes)
    benchmark(_round_trip, codec, array)


# -- the reported series ------------------------------------------------------------

def test_report_c1_encoding_overheads():
    sizes = [1_024, 16_384, 262_144, 1_048_576]
    rows = []
    measured: dict[tuple[str, int], tuple[float, float]] = {}
    for n in sizes:
        array = _array(n)
        raw = array.nbytes
        for name, codec in CODECS:
            if name == "soap-items" and n > 65_536:
                continue  # minutes of runtime; the trend is established below
            start = time.perf_counter()
            repeats = 3 if n <= 65_536 else 1
            for _ in range(repeats):
                wire_bytes = _round_trip(codec, array)
            elapsed = (time.perf_counter() - start) / repeats
            measured[(name, n)] = (wire_bytes, elapsed)
            rows.append([
                n, name, raw * 2, wire_bytes,
                f"{wire_bytes / (raw * 2):.2f}x",
                f"{elapsed * 1e3:.2f}ms",
            ])
    print_table(
        "C1: float64 call+reply — bytes on the wire and encode/decode time",
        ["elements", "codec", "raw bytes", "wire bytes", "expansion", "cpu"],
        rows,
    )

    for n in sizes:
        xdr_bytes, xdr_time = measured[("xdr", n)]
        mime_bytes, mime_time = measured[("mime", n)]
        b64_bytes, b64_time = measured[("soap-base64", n)]
        raw = _array(n).nbytes * 2
        # bandwidth claim: base64 expands ~4/3; XDR and MIME attachments
        # stay within a few % of raw (binary parts are unencoded)
        assert xdr_bytes < 1.05 * raw + 1024
        assert mime_bytes < 1.05 * raw + 4096
        assert b64_bytes > 1.30 * raw
        # time claim: XDR is several times faster at every size; the MIME
        # middle ground beats base64 on big arrays (no text expansion)
        assert b64_time > 2 * xdr_time, (n, b64_time, xdr_time)
        if n >= 262_144:
            assert mime_time < b64_time, (n, mime_time, b64_time)
        if ("soap-items", n) in measured:
            items_bytes, items_time = measured[("soap-items", n)]
            assert items_bytes > b64_bytes
            assert items_time > b64_time
