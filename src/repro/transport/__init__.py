"""Request/response transports: in-process, framed TCP, HTTP."""

from repro.transport.base import (
    ClientTransport,
    Listener,
    RequestHandler,
    TransportMessage,
    parse_url,
)
from repro.transport.http import HttpListener, HttpTransport
from repro.transport.inproc import InProcListener, InProcTransport, reset_inproc_namespace
from repro.transport.sim import SimListener, SimTransport
from repro.transport.tcp import TcpListener, TcpTransport

__all__ = [
    "ClientTransport",
    "Listener",
    "RequestHandler",
    "TransportMessage",
    "parse_url",
    "HttpListener",
    "HttpTransport",
    "InProcListener",
    "InProcTransport",
    "reset_inproc_namespace",
    "SimListener",
    "SimTransport",
    "TcpListener",
    "TcpTransport",
]


def connect(url: str) -> ClientTransport:
    """Dial *url* with the transport matching its scheme."""
    scheme, _ = parse_url(url)
    if scheme == "inproc":
        return InProcTransport(url)
    if scheme == "tcp":
        return TcpTransport(url)
    if scheme == "http":
        return HttpTransport(url)
    from repro.util.errors import TransportError

    raise TransportError(f"no transport for scheme {scheme!r}")
