"""Server-side invocation dispatch.

A :class:`Dispatcher` resolves a *target* string (the port/instance address
carried in every call message) to a live object and invokes an operation on
it.  All server-side bindings (SOAP/HTTP, XDR/TCP, in-proc) share one
dispatcher, which is what lets a single component be reachable through
several bindings simultaneously — the multi-port services of Figures 7/8.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.util.errors import BindingError, ServiceNotFoundError

__all__ = ["ObjectDispatcher", "exposed_operations"]


def exposed_operations(obj: object) -> list[str]:
    """Public callable attribute names of *obj* (its service operations).

    Lifecycle hooks (``on_*``) are container-invoked, never remotely
    callable, so they are excluded from the published interface.
    """
    ops = []
    for name in dir(obj):
        if name.startswith("_") or name.startswith("on_"):
            continue
        if callable(getattr(obj, name)):
            ops.append(name)
    return ops


class ObjectDispatcher:
    """Maps target names to objects and performs guarded invocation.

    Only operations enumerated at registration time are callable; this is
    the server-side contract derived from the WSDL portType, so a client
    cannot reach Python internals that were never published.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._objects: dict[str, tuple[object, frozenset[str]]] = {}

    def register(self, target: str, obj: object, operations: list[str] | None = None) -> None:
        """Expose *obj* under *target*, optionally restricting operations."""
        ops = frozenset(operations if operations is not None else exposed_operations(obj))
        with self._lock:
            if target in self._objects:
                raise BindingError(f"target already registered: {target!r}")
            self._objects[target] = (obj, ops)

    def unregister(self, target: str) -> None:
        with self._lock:
            self._objects.pop(target, None)

    def targets(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def lookup(self, target: str) -> object:
        """The registered object itself (used by the local-instance binding)."""
        with self._lock:
            entry = self._objects.get(target)
        if entry is None:
            raise ServiceNotFoundError(f"no such target: {target!r}")
        return entry[0]

    def invoke(self, target: str, operation: str, args: list | tuple) -> Any:
        """Call ``operation(*args)`` on the object registered as *target*."""
        with self._lock:
            entry = self._objects.get(target)
        if entry is None:
            raise ServiceNotFoundError(f"no such target: {target!r}")
        obj, ops = entry
        if operation not in ops:
            raise BindingError(f"operation {operation!r} not exposed by {target!r}")
        method = getattr(obj, operation, None)
        if method is None or not callable(method):
            raise BindingError(f"target {target!r} has no callable {operation!r}")
        return method(*args)
