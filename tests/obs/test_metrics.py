"""Unit tests for the lock-striped metrics registry."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("t.count")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_reset_zeroes_in_place(self):
        c = Counter("t.count")
        c.inc(7)
        c.reset()
        assert c.value() == 0
        c.inc()
        assert c.value() == 1

    def test_concurrent_increments_are_exact(self):
        c = Counter("t.count")
        per_thread = 2_000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8 * per_thread

    def test_export(self):
        c = Counter("t.count")
        c.inc(3)
        assert c.export() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t.level")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value() == 7

    def test_export_and_reset(self):
        g = Gauge("t.level")
        g.set(3.5)
        assert g.export() == {"type": "gauge", "value": 3.5}
        g.reset()
        assert g.value() == 0.0


class TestHistogram:
    def test_count_and_sum(self):
        h = Histogram("t.lat")
        for v in (3, 30, 300, 3000):
            h.observe(v)
        export = h.export()
        assert export["count"] == 4
        assert export["sum"] == pytest.approx(3333)
        assert export["min"] == 3
        assert export["max"] == 3000

    def test_bucket_assignment(self):
        h = Histogram("t.lat", bounds=(10, 100))
        h.observe(5)       # <= 10
        h.observe(10)      # <= 10 (bounds are upper-inclusive via bisect_left)
        h.observe(50)      # <= 100
        h.observe(1_000)   # +inf
        buckets = h.export()["buckets"]
        assert buckets == {"10": 2, "100": 1, "+inf": 1}

    def test_percentile_interpolates(self):
        h = Histogram("t.lat", bounds=(10, 100, 1000))
        for _ in range(100):
            h.observe(50)
        # every observation sits in the (10, 100] bucket
        assert 10 <= h.percentile(0.5) <= 100
        assert 10 <= h.percentile(0.99) <= 100

    def test_empty_percentile_is_zero(self):
        h = Histogram("t.lat")
        assert h.percentile(0.5) == 0.0
        assert h.export()["count"] == 0

    def test_values_above_last_bound_land_in_inf(self):
        h = Histogram("t.lat")
        h.observe(10 * DEFAULT_BUCKETS_US[-1])
        assert h.export()["buckets"]["+inf"] == 1

    def test_concurrent_observations_are_exact(self):
        h = Histogram("t.lat")
        per_thread = 1_000

        def worker(seed):
            for i in range(per_thread):
                h.observe((seed * 37 + i) % 5_000)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8 * per_thread

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            Histogram("t.lat", bounds=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert len(r) == 2

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_prefix_filter(self):
        r = MetricsRegistry()
        r.counter("tcp.client.dials").inc()
        r.counter("server.requests").inc(2)
        snap = r.snapshot("tcp.")
        assert list(snap) == ["tcp.client.dials"]
        assert snap["tcp.client.dials"]["value"] == 1
        assert len(r.snapshot()) == 2

    def test_reset_keeps_cached_references_live(self):
        r = MetricsRegistry()
        c = r.counter("kept")
        c.inc(5)
        r.reset()
        assert c.value() == 0
        c.inc()
        # the registry still sees the same (zeroed then bumped) instrument
        assert r.snapshot()["kept"]["value"] == 1
