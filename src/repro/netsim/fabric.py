"""Deterministic simulated network fabric.

The paper's testbed is a heterogeneous collection of hosts spread over
multiple administrative domains; we don't have one.  ``netsim`` substitutes
a *cost-modelled* fabric: any number of virtual hosts in one process,
message delivery is a synchronous function call, but every message is
charged ``latency + size/bandwidth`` seconds of simulated time and counted
in per-link statistics.  Experiments C4 and C5 (state coherency, lookup
schemes) compare protocols by *simulated* cost — message counts and
simulated seconds — which is exactly what distinguishes full synchrony from
decentralized queries, independent of wall-clock noise.

Failure injection: hosts can be crashed and links partitioned, which the
C5 benchmark uses to demonstrate the centralized registry's single point of
failure.  Links can also be *flaky* rather than binary up/down: a
:class:`LinkModel` carries probabilistic message drop and duplication rates
(plus latency jitter), all drawn from the network's seeded RNG so lossy
runs stay reproducible.

Scale: the fabric is sized for 10k-host gossip sweeps (C10).  Link models
resolve exact pair → host-group pair → default, so a clustered topology
needs O(groups²) rules instead of O(hosts²) entries; partition membership
is an O(1) dict probe, not a scan over groups; each message leg takes one
lock round-trip; and per-pair :class:`LinkStats` can be switched off
(``detail_stats=False``) when only the totals matter.  An opt-in per-host
service-time model (:meth:`VirtualNetwork.set_service_time` +
:meth:`VirtualNetwork.begin_burst`) charges queueing delay when many
requests land on one host in a burst — how a centralized registry's
bottleneck becomes visible in simulated latency percentiles.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace

from repro.transport.base import RequestHandler, TransportMessage
from repro.util.errors import HarnessTimeoutError, TransportError

__all__ = [
    "LinkModel",
    "LinkStats",
    "VirtualHost",
    "VirtualNetwork",
    "HostDownError",
    "MessageDroppedError",
]


class HostDownError(TransportError):
    """The destination host is crashed or unreachable (partitioned)."""


class MessageDroppedError(TransportError):
    """A message was lost on a lossy link.

    ``phase`` records where the loss happened: ``"request"`` means the
    message never reached the destination (the operation did *not* execute —
    retrying is always safe), ``"response"`` means the destination processed
    the request but the reply was lost (retrying is only safe for
    idempotent operations).
    """

    def __init__(self, src: str, dst: str, phase: str):
        super().__init__(f"message {src} -> {dst} dropped in {phase} phase")
        self.src = src
        self.dst = dst
        self.phase = phase


@dataclass(frozen=True)
class LinkModel:
    """Latency/bandwidth cost model for one direction of a link.

    ``cost(n)`` = ``latency_s + n / bandwidth_Bps`` (+ jitter drawn from a
    seeded RNG when ``jitter_s`` > 0, so runs stay reproducible).

    ``drop_rate`` / ``duplicate_rate`` make the link *flaky*: each message
    crossing it is independently lost (raising
    :class:`MessageDroppedError`) or delivered twice with the given
    probability, drawn from the owning network's seeded RNG.
    """

    latency_s: float = 1e-4
    bandwidth_Bps: float = 100e6  # ~100 MB/s LAN default
    jitter_s: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0

    def cost(self, nbytes: int, rng: random.Random | None = None) -> float:
        base = self.latency_s + nbytes / self.bandwidth_Bps
        if self.jitter_s and rng is not None:
            base += rng.uniform(0.0, self.jitter_s)
        return base


#: Within-host loopback: negligible but non-zero.
LOOPBACK = LinkModel(latency_s=1e-6, bandwidth_Bps=5e9)


@dataclass
class LinkStats:
    """Accumulated traffic on one (src, dst) host pair."""

    messages: int = 0
    bytes: int = 0
    simulated_s: float = 0.0


class VirtualHost:
    """One simulated machine: named endpoints plus an up/down flag."""

    def __init__(self, network: "VirtualNetwork", name: str):
        self._network = network
        self.name = name
        self._endpoints: dict[str, RequestHandler] = {}
        self.up = True

    def bind(self, endpoint: str, handler: RequestHandler) -> str:
        """Expose *handler* as ``sim://<host>/<endpoint>``; returns the URL."""
        if endpoint in self._endpoints:
            raise TransportError(f"endpoint {endpoint!r} already bound on {self.name}")
        self._endpoints[endpoint] = handler
        return f"sim://{self.name}/{endpoint}"

    def unbind(self, endpoint: str) -> None:
        self._endpoints.pop(endpoint, None)

    def crash(self) -> None:
        """Take the host down: all messages to it fail until :meth:`restart`."""
        self.up = False

    def restart(self) -> None:
        self.up = True

    def _dispatch(self, endpoint: str, message: TransportMessage) -> TransportMessage:
        handler = self._endpoints.get(endpoint)
        if handler is None:
            raise TransportError(f"host {self.name} has no endpoint {endpoint!r}")
        return handler(message)


class VirtualNetwork:
    """The fabric: hosts, links, partitions, and global traffic accounting."""

    def __init__(
        self,
        default_link: LinkModel | None = None,
        seed: int = 0,
        detail_stats: bool = True,
    ):
        self._hosts: dict[str, VirtualHost] = {}
        self._links: dict[tuple[str, str], LinkModel] = {}
        self._groups: dict[str, str] = {}
        self._group_links: dict[tuple[str, str], LinkModel] = {}
        self._default_link = default_link or LinkModel()
        self._partitions: list[set[str]] = []
        self._partition_of: dict[str, int] = {}
        self._service: dict[str, float] = {}
        self._queue_depth: dict[str, int] = {}
        self._rng = random.Random(seed)
        self._lock = threading.RLock()
        #: per-(src, dst) LinkStats; skipped entirely when False so 10k-host
        #: sweeps don't grow an O(pairs) dict (totals are still maintained)
        self.detail_stats = detail_stats
        self.stats: dict[tuple[str, str], LinkStats] = {}
        self.simulated_time = 0.0
        self.total_messages = 0
        self.total_bytes = 0

    # -- topology ---------------------------------------------------------------

    def add_host(self, name: str) -> VirtualHost:
        with self._lock:
            if name in self._hosts:
                raise TransportError(f"duplicate host name {name!r}")
            host = VirtualHost(self, name)
            self._hosts[name] = host
            return host

    def host(self, name: str) -> VirtualHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise TransportError(f"unknown host {name!r}") from None

    def hosts(self) -> list[VirtualHost]:
        return list(self._hosts.values())

    def set_link(self, src: str, dst: str, model: LinkModel, symmetric: bool = True) -> None:
        """Override the cost model between two hosts."""
        with self._lock:
            self._links[(src, dst)] = model
            if symmetric:
                self._links[(dst, src)] = model

    def set_links(
        self,
        pairs: "list[tuple[str, str]]",
        model: LinkModel,
        symmetric: bool = True,
    ) -> None:
        """Override many host pairs under one lock round-trip (bulk builders)."""
        with self._lock:
            links = self._links
            for src, dst in pairs:
                links[(src, dst)] = model
                if symmetric:
                    links[(dst, src)] = model

    def assign_group(self, host: str, group: str) -> None:
        """Tag *host* with a link group (see :meth:`set_group_link`)."""
        with self._lock:
            self._groups[host] = group

    def set_group_link(
        self, src_group: str, dst_group: str, model: LinkModel, symmetric: bool = True
    ) -> None:
        """Cost model between two host groups — one rule instead of O(n²) pairs.

        Resolution order is exact pair → group pair → network default, so a
        clustered topology declares cluster-internal links with a single rule
        and per-pair overrides (e.g. fault injection) still win.
        """
        with self._lock:
            self._group_links[(src_group, dst_group)] = model
            if symmetric:
                self._group_links[(dst_group, src_group)] = model

    def link_model(self, src: str, dst: str) -> LinkModel:
        if src == dst:
            return LOOPBACK
        model = self._links.get((src, dst))
        if model is not None:
            return model
        if self._group_links:
            src_group = self._groups.get(src)
            if src_group is not None:
                dst_group = self._groups.get(dst)
                if dst_group is not None:
                    model = self._group_links.get((src_group, dst_group))
                    if model is not None:
                        return model
        return self._default_link

    def set_link_faults(
        self,
        src: str,
        dst: str,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        jitter_s: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Make a link flaky, keeping its existing latency/bandwidth model."""
        for a, b in ((src, dst), (dst, src)) if symmetric else ((src, dst),):
            model = replace(
                self.link_model(a, b),
                drop_rate=drop_rate,
                duplicate_rate=duplicate_rate,
                jitter_s=jitter_s,
            )
            self.set_link(a, b, model, symmetric=False)

    def set_default_faults(
        self, drop_rate: float = 0.0, duplicate_rate: float = 0.0, jitter_s: float = 0.0
    ) -> None:
        """Make every link without an explicit override flaky."""
        with self._lock:
            self._default_link = replace(
                self._default_link,
                drop_rate=drop_rate,
                duplicate_rate=duplicate_rate,
                jitter_s=jitter_s,
            )

    # -- partitions --------------------------------------------------------------

    def partition(self, *groups: set[str] | list[str]) -> None:
        """Split the network: hosts can only reach others in their group."""
        with self._lock:
            self._partitions = [set(g) for g in groups]
            # host → index of the first group containing it: reachability
            # becomes two dict probes instead of a scan over the groups
            partition_of: dict[str, int] = {}
            for index, group in enumerate(self._partitions):
                for host in group:
                    partition_of.setdefault(host, index)
            self._partition_of = partition_of

    def heal(self) -> None:
        """Remove all partitions."""
        with self._lock:
            self._partitions = []
            self._partition_of = {}

    def _reachable(self, src: str, dst: str) -> bool:
        if not self._partition_of:
            return True
        src_part = self._partition_of.get(src)
        if src_part is None:
            # src not in any group: unrestricted
            return True
        return self._partition_of.get(dst) == src_part

    # -- messaging ---------------------------------------------------------------

    def request(
        self,
        src: str,
        dst: str,
        endpoint: str,
        message: TransportMessage,
        timeout: float | None = None,
    ) -> TransportMessage:
        """Synchronous request/response with cost accounting both ways.

        Flaky links may drop either leg (:class:`MessageDroppedError`) or
        duplicate the request — the handler then runs twice, which is what
        exercises idempotency downstream.  When *timeout* is given and the
        simulated round-trip exceeds it, :class:`HarnessTimeoutError` is
        raised *after* dispatch: the destination did the work, the caller
        just gave up waiting, exactly the ambiguity real timeouts carry.
        """
        n_request = len(message.payload)
        duplicated = False
        # One lock round-trip covers the whole forward leg: charge, liveness
        # and partition checks, drop/duplicate draws.  RNG draw order matches
        # the historical per-helper path (jitter → drop → duplicate) so
        # seeded fault patterns are stable across the refactor.
        with self._lock:
            forward = self.link_model(src, dst)
            elapsed = self._account(src, dst, n_request, forward)
            target = self._hosts.get(dst)
            if target is None:
                raise TransportError(f"unknown host {dst!r}")
            if not target.up:
                raise HostDownError(f"host {dst} is down")
            if not self._reachable(src, dst):
                raise HostDownError(f"{src} and {dst} are partitioned")
            if forward.drop_rate and self._rng.random() < forward.drop_rate:
                raise MessageDroppedError(src, dst, "request")
            if forward.duplicate_rate and self._rng.random() < forward.duplicate_rate:
                elapsed += self._account(src, dst, n_request, forward)
                duplicated = True
        if duplicated:
            target._dispatch(endpoint, message)  # duplicate delivery; reply discarded
        response = target._dispatch(endpoint, message)
        if self._service:
            elapsed += self._serve_cost(dst)
        with self._lock:
            backward = self.link_model(dst, src)
            elapsed += self._account(dst, src, len(response.payload), backward)
            if backward.drop_rate and self._rng.random() < backward.drop_rate:
                raise MessageDroppedError(dst, src, "response")
        if timeout is not None and elapsed > timeout:
            raise HarnessTimeoutError(
                f"request {src} -> {dst}/{endpoint} took {elapsed:.6f}s simulated "
                f"(timeout {timeout:.6f}s)"
            )
        return response

    def post(self, src: str, dst: str, endpoint: str, message: TransportMessage) -> None:
        """One-way message (events); charged once."""
        n_request = len(message.payload)
        duplicated = False
        with self._lock:
            forward = self.link_model(src, dst)
            self._account(src, dst, n_request, forward)
            target = self._hosts.get(dst)
            if target is None:
                raise TransportError(f"unknown host {dst!r}")
            if not target.up:
                raise HostDownError(f"host {dst} is down")
            if not self._reachable(src, dst):
                raise HostDownError(f"{src} and {dst} are partitioned")
            if forward.drop_rate and self._rng.random() < forward.drop_rate:
                raise MessageDroppedError(src, dst, "request")
            if forward.duplicate_rate and self._rng.random() < forward.duplicate_rate:
                self._account(src, dst, n_request, forward)
                duplicated = True
        if duplicated:
            target._dispatch(endpoint, message)
        target._dispatch(endpoint, message)

    def _deliverable(self, src: str, dst: str) -> VirtualHost:
        target = self.host(dst)
        with self._lock:
            if not target.up:
                raise HostDownError(f"host {dst} is down")
            if not self._reachable(src, dst):
                raise HostDownError(f"{src} and {dst} are partitioned")
        return target

    # -- service-time model -------------------------------------------------------

    def set_service_time(self, host: str, seconds: float) -> None:
        """Charge *seconds* of server time per request handled by *host*.

        Opt-in (zero cost when unused).  Combined with :meth:`begin_burst`
        this models queueing: the k-th request of a burst landing on one host
        waits behind the k−1 before it, so a centralized bottleneck shows up
        in simulated latency while sharded load stays flat.
        """
        with self._lock:
            if seconds <= 0:
                self._service.pop(host, None)
            else:
                self._service[host] = float(seconds)

    def begin_burst(self) -> None:
        """Reset queue depths: subsequent requests form one concurrent burst."""
        with self._lock:
            self._queue_depth.clear()

    def _serve_cost(self, dst: str) -> float:
        with self._lock:
            service_s = self._service.get(dst)
            if service_s is None:
                return 0.0
            depth = self._queue_depth.get(dst, 0)
            self._queue_depth[dst] = depth + 1
            cost = service_s * (depth + 1)
            self.simulated_time += cost
            return cost

    # -- accounting ---------------------------------------------------------------

    def charge(self, src: str, dst: str, nbytes: int) -> None:
        """Account a raw transfer without endpoint dispatch (bulk moves)."""
        self._charge(src, dst, nbytes)

    def _charge(self, src: str, dst: str, nbytes: int) -> float:
        with self._lock:
            return self._account(src, dst, nbytes, self.link_model(src, dst))

    def _account(
        self, src: str, dst: str, nbytes: int, model: LinkModel
    ) -> float:
        """Charge one message to the books; caller holds the lock."""
        cost = model.cost(nbytes, self._rng)
        if self.detail_stats:
            stats = self.stats.setdefault((src, dst), LinkStats())
            stats.messages += 1
            stats.bytes += nbytes
            stats.simulated_s += cost
        self.simulated_time += cost
        self.total_messages += 1
        self.total_bytes += nbytes
        return cost

    def reset_stats(self) -> None:
        """Zero the accounting (between benchmark phases)."""
        with self._lock:
            self.stats.clear()
            self.simulated_time = 0.0
            self.total_messages = 0
            self.total_bytes = 0
