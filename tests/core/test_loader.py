"""Dynamic source loading: third-party plugin repositories (§3)."""

import sys

import pytest

from repro.container import LightweightContainer
from repro.core.kernel import HarnessKernel
from repro.core.loader import (
    PluginRepository,
    load_class_from_source,
    load_source_module,
)
from repro.util.errors import PluginLoadError

COUNTER_SOURCE = '''
class DynamicCounter:
    """A stateful component delivered as source."""

    def __init__(self):
        self._n = 0

    def bump(self, k: int = 1) -> int:
        self._n += int(k)
        return self._n

    def total(self) -> int:
        return self._n
'''

PLUGIN_SOURCE = '''
from repro.core.plugin import Plugin


class GreeterPlugin(Plugin):
    plugin_name = "greeter"
    provides = ("greeting",)

    def greet(self, who: str) -> str:
        return f"hello, {who}"
'''


class TestLoadSourceModule:
    def test_module_registered_in_sys_modules(self):
        module = load_source_module("X = 41 + 1")
        assert module.X == 42
        assert sys.modules[module.__name__] is module
        assert module.__source__ == "X = 41 + 1"

    def test_unique_names_on_repeat_loads(self):
        a = load_source_module("V = 1")
        b = load_source_module("V = 2")
        assert a.__name__ != b.__name__
        assert a.V == 1 and b.V == 2

    def test_explicit_name_collision_rejected(self):
        load_source_module("pass", module_name="repro_dynamic_fixed_x")
        with pytest.raises(PluginLoadError):
            load_source_module("pass", module_name="repro_dynamic_fixed_x")

    def test_syntax_error_reported(self):
        with pytest.raises(PluginLoadError, match="compile"):
            load_source_module("def broken(:")

    def test_import_time_error_reported(self):
        with pytest.raises(PluginLoadError, match="ZeroDivisionError"):
            load_source_module("x = 1 / 0")

    def test_missing_class(self):
        with pytest.raises(PluginLoadError, match="no class"):
            load_class_from_source("x = 1", "Ghost")


class TestSourceLoadedComponents:
    def test_deploy_source_into_container(self):
        with LightweightContainer("dyn", host="dynhost") as container:
            handle = container.deploy_source(COUNTER_SOURCE, "DynamicCounter")
            stub = container.lookup("DynamicCounter")
            assert stub.bump(5) == 5
            assert stub.total() == 5
            # the WSDL's local binding names the dynamic module:class —
            # and load_type can resolve it, because the module is registered
            from repro.bindings.stubs import load_type
            from repro.wsdl.extensions import LocalInstanceBindingExt

            binding = handle.document.binding("DynamicCounterInstanceBinding")
            ext = binding.extension_of(LocalInstanceBindingExt)
            assert load_type(ext.type_name).__name__ == "DynamicCounter"

    def test_source_component_migrates_with_state(self):
        from repro.core.builder import HarnessDvm
        from repro.netsim import lan

        net = lan(2)
        with HarnessDvm("dynmig", net) as harness:
            harness.add_nodes("node0", "node1")
            container = harness.dvm.node("node0").container
            container.deploy_source(
                COUNTER_SOURCE, "DynamicCounter",
                bindings=("local-instance", "sim"),
            )
            harness.dvm.publish("node0", "DynamicCounter")
            harness.stub("node0", "DynamicCounter").bump(7)
            harness.move("DynamicCounter", "node1")
            assert harness.stub("node1", "DynamicCounter").total() == 7


class TestSourceLoadedPlugins:
    def test_kernel_loads_plugin_from_source(self):
        kernel = HarnessKernel("dynk")
        plugin = kernel.load_plugin_source(PLUGIN_SOURCE, "GreeterPlugin")
        assert plugin.name() == "greeter"
        assert kernel.get_service("greeting").greet("world") == "hello, world"
        kernel.shutdown()

    def test_non_plugin_source_rejected(self):
        kernel = HarnessKernel("dynk2")
        with pytest.raises(PluginLoadError, match="not a Plugin"):
            kernel.load_plugin_source(COUNTER_SOURCE, "DynamicCounter")
        kernel.shutdown()


class TestPluginRepository:
    def test_publish_validates(self):
        repository = PluginRepository()
        with pytest.raises(PluginLoadError):
            repository.publish("bad", "def x(:", "X")
        assert repository.catalog() == []

    def test_publish_fetch_materialize(self):
        repository = PluginRepository()
        repository.publish("counter", COUNTER_SOURCE, "DynamicCounter")
        assert repository.catalog() == ["counter"]
        bundle = repository.fetch("counter")
        assert bundle["class_name"] == "DynamicCounter"
        cls = repository.materialize("counter")
        assert cls().bump(3) == 3

    def test_fetch_unknown(self):
        with pytest.raises(PluginLoadError):
            PluginRepository().fetch("ghost")

    def test_repository_as_remote_service(self):
        """The §3 story end to end: a third-party repository is itself a
        component; a kernel on another host installs a plugin from it."""
        from repro.core.builder import HarnessDvm
        from repro.netsim import lan

        net = lan(2)
        with HarnessDvm("repo-dvm", net) as harness:
            harness.add_nodes("node0", "node1")
            repository = PluginRepository()
            repository.publish("greeter", PLUGIN_SOURCE, "GreeterPlugin")
            harness.deploy("node0", repository, name="Repository",
                           bindings=("local-instance", "sim"))

            # node1 fetches the bundle over the fabric and installs it
            stub = harness.stub("node1", "Repository")
            bundle = stub.fetch("greeter")
            stub.close()
            kernel = harness.kernel("node1")
            kernel.load_plugin_source(bundle["source"], bundle["class_name"])
            assert kernel.get_service("greeting").greet("node1") == "hello, node1"
