"""Golden-file checks: the checked-in Figure 7/8 WSDL documents stay in
sync with what wsdlgen generates (the repository's versions of the paper's
listings)."""

from pathlib import Path

import pytest

from repro.plugins.services import MatMul, WSTime
from repro.tools.wsdlgen import generate_wsdl
from repro.wsdl.io import document_from_string, document_to_string

FIGURES = Path(__file__).resolve().parents[2] / "docs" / "figures"

CASES = [
    (WSTime, "figure7_wstime.wsdl"),
    (MatMul, "figure8_matmul.wsdl"),
]


@pytest.mark.parametrize("cls,filename", CASES, ids=[c[1] for c in CASES])
class TestGoldenFigures:
    def test_golden_file_exists(self, cls, filename):
        assert (FIGURES / filename).is_file()

    def test_regeneration_matches_golden(self, cls, filename):
        generated = document_to_string(generate_wsdl(cls, bindings=("soap", "local")))
        golden = (FIGURES / filename).read_text()
        assert generated == golden, (
            f"{filename} is stale; regenerate with "
            f"python -m repro.tools wsdlgen {cls.__module__}:{cls.__name__}"
        )

    def test_golden_file_is_valid_wsdl(self, cls, filename):
        document = document_from_string((FIGURES / filename).read_text())
        document.validate()
        assert document.name == cls.__name__

    def test_golden_has_paper_structure(self, cls, filename):
        """The figures show: messages, a portType, a SOAP binding, and the
        non-standard local (java) binding."""
        document = document_from_string((FIGURES / filename).read_text())
        assert document.messages
        assert len(document.port_types) == 1
        protocols = {binding.protocol for binding in document.bindings}
        assert protocols == {"soap", "local"}
