#!/usr/bin/env python
"""The JavaSpaces emulation plugin (§3): a bag-of-tasks master/worker.

The master writes task entries into the tuple space hosted on node0;
workers on the other kernels ``take`` tasks, compute, and write result
entries back — the canonical JavaSpaces pattern, running on the Harness
plugin backplane.

Run:  python examples/tuple_space_workers.py
"""

import threading

import numpy as np

from repro import HarnessDvm, lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hspaces import TupleSpacePlugin


def worker(harness, host: str) -> int:
    """Drain the task bag: square matrices until no tasks remain."""
    space = harness.kernel(host).get_service("tuple-space")
    done = 0
    while True:
        task = space.take_if_exists({"kind": "task"})
        if task is None:
            return done
        matrix = np.asarray(task["matrix"])
        space.write({"kind": "result", "n": task["n"],
                     "trace": float(np.trace(matrix @ matrix)),
                     "worker": host})
        done += 1


def main() -> None:
    network = lan(3)
    with HarnessDvm("spaces-demo", network) as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, TupleSpacePlugin(space_host="node0"))

        master = harness.kernel("node0").get_service("tuple-space")
        rng = np.random.default_rng(11)
        matrices = {n: rng.random((8, 8)) for n in range(12)}
        for n, matrix in matrices.items():
            master.write({"kind": "task", "n": n, "matrix": matrix})
        print(f"master wrote {master.count({'kind': 'task'})} task entries")

        counts = {}
        threads = []
        for host in ("node1", "node2"):
            def run(host=host):
                counts[host] = worker(harness, host)

            thread = threading.Thread(target=run, daemon=True)
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        results = {}
        for _ in range(len(matrices)):
            entry = master.take({"kind": "result"}, timeout=10)
            results[entry["n"]] = entry["trace"]
        for n, matrix in matrices.items():
            expected = float(np.trace(matrix @ matrix))
            assert abs(results[n] - expected) < 1e-9
        print(f"collected {len(results)} correct results; "
              f"worker shares: {counts}")
        print(f"fabric: {network.total_messages} messages, "
              f"{network.total_bytes} bytes")


if __name__ == "__main__":
    main()
