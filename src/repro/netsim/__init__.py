"""Simulated multi-host network fabric with deterministic cost accounting."""

from repro.netsim.fabric import (
    HostDownError,
    LinkModel,
    LinkStats,
    MessageDroppedError,
    VirtualHost,
    VirtualNetwork,
)
from repro.netsim.topology import (
    LAN_LINK,
    WAN_LINK,
    lan,
    mesh_neighborhoods,
    random_regular,
    two_clusters,
    wan,
)

__all__ = [
    "HostDownError",
    "LinkModel",
    "LinkStats",
    "MessageDroppedError",
    "VirtualHost",
    "VirtualNetwork",
    "LAN_LINK",
    "WAN_LINK",
    "lan",
    "mesh_neighborhoods",
    "random_regular",
    "two_clusters",
    "wan",
]
