"""Exception hierarchy contracts."""

import pytest

from repro.util import errors as E


class TestHierarchy:
    def test_all_derive_from_harness_error(self):
        for name in E.__all__:
            exc_type = getattr(E, name)
            assert issubclass(exc_type, E.HarnessError), name

    def test_timeout_is_also_builtin_timeout(self):
        assert issubclass(E.HarnessTimeoutError, TimeoutError)

    def test_layer_groupings(self):
        assert issubclass(E.WsdlError, E.XmlError)
        assert issubclass(E.TransportClosedError, E.TransportError)
        assert issubclass(E.NoBindingAvailableError, E.BindingError)
        assert issubclass(E.ServiceNotFoundError, E.RegistryError)
        assert issubclass(E.DuplicateNameError, E.RegistryError)
        assert issubclass(E.ComponentStateError, E.ContainerError)
        assert issubclass(E.MembershipError, E.DvmError)
        assert issubclass(E.CoherencyError, E.DvmError)
        assert issubclass(E.PluginLoadError, E.PluginError)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(E.HarnessError):
            raise E.XdrError if hasattr(E, "XdrError") else E.EncodingError("x")


class TestSoapFaultError:
    def test_carries_fault_fields(self):
        fault = E.SoapFaultError("soapenv:Server", "kaboom", detail="trace")
        assert fault.faultcode == "soapenv:Server"
        assert fault.faultstring == "kaboom"
        assert fault.detail == "trace"
        assert "kaboom" in str(fault)
