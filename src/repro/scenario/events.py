"""The ``events.jsonl`` audit trail of a scenario run.

Every event that crosses the DVM's :class:`~repro.util.events.EventBus`
during a scenario — fault injections (``scenario.fault``), detector
transitions (``dvm.member.suspected``/``dead``/``recovered``), circuit
breaker flips (``invoke.breaker.*``), retries, checkpoint and failover
progress (``recovery.*``), workload tick summaries — lands here as one
JSON line, stamped with the *simulated* time it was delivered at.

Reproducibility contract: re-running the same manifest with the same seed
yields **byte-identical** canonical lines.  Two things make that hold:

* the log carries no wall-clock timestamps at all (wall timing lives in the
  separate ``result.json`` artifact), and
* payloads are *scrubbed* — process-lifetime identifiers (``instance_id``,
  ``trace_id``, ``span_id``) are dropped and non-JSON values are reduced to
  their stable ``name`` attribute or class name, so a handle deployed as
  ``h-17`` in one run and ``h-412`` in the next serializes identically.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path
from typing import Any

from repro.util.clock import Clock
from repro.util.events import Event, EventBus, Subscription

__all__ = ["EventLog", "scrub"]

#: payload keys whose values are process-lifetime ids, not run facts
_VOLATILE_KEYS = frozenset({"instance_id", "trace_id", "span_id"})

#: instance tags like ``counter#c-17`` embed a process-lifetime counter
#: (:func:`repro.util.ids.new_id`) inside strings — normalize the numeric
#: suffix away so stub targets serialize identically across runs
_ID_TAG = re.compile(r"#([A-Za-z]+)-\d+")

_MAX_DEPTH = 8


def scrub(value: Any, _depth: int = 0) -> Any:
    """Reduce *value* to deterministic, JSON-serializable form.

    Mappings and sequences recurse (volatile keys dropped, depth-capped);
    strings lose embedded instance-tag counters (``#c-17`` → ``#c``); other
    primitives pass through; anything else collapses to its ``name``
    attribute when that is a string, else its class name — stable across
    runs where a ``repr`` (object addresses, fresh ids) is not.
    """
    if isinstance(value, str):
        return _ID_TAG.sub(r"#\1", value)
    if value is None or isinstance(value, (bool, int, float)):
        return value
    if _depth >= _MAX_DEPTH:
        return "..."
    if isinstance(value, dict):
        return {
            str(k): scrub(v, _depth + 1)
            for k, v in value.items()
            if str(k) not in _VOLATILE_KEYS
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [scrub(v, _depth + 1) for v in items]
    if isinstance(value, (bytes, bytearray, memoryview)):
        return f"<{len(value)} bytes>"
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return f"<{type(value).__name__} {name}>"
    return f"<{type(value).__name__}>"


class EventLog:
    """Append-only, deterministic JSONL trail of one scenario run.

    Attach it to a bus with :meth:`attach` (it subscribes to every topic)
    and/or write entries directly with :meth:`record`.  The canonical byte
    form — what :meth:`sha256` hashes and :meth:`write_jsonl` writes — is
    one compact, key-sorted JSON object per line::

        {"payload":...,"seq":12,"source":"dvm","t":4.5,"topic":"dvm.member.dead"}
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._subscription: Subscription | None = None

    # -- collection ---------------------------------------------------------

    def attach(self, bus: EventBus) -> Subscription:
        """Subscribe to every topic on *bus*; returns the subscription."""
        self._subscription = bus.subscribe("", self._on_event)
        return self._subscription

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def _on_event(self, event: Event) -> None:
        self.record(event.topic, event.payload, source=event.source)

    def record(self, topic: str, payload: Any = None, source: str = "") -> dict:
        """Append one entry, stamped with the current simulated time."""
        with self._lock:
            entry = {
                "seq": len(self._records),
                "t": round(self._clock.now(), 9),
                "topic": topic,
                "source": scrub(source),
                "payload": scrub(payload),
            }
            self._records.append(entry)
            return entry

    # -- reading ------------------------------------------------------------

    def records(self, topic_prefix: str = "") -> list[dict]:
        """All entries (optionally only topics under *topic_prefix*)."""
        with self._lock:
            records = list(self._records)
        if not topic_prefix:
            return records
        return [
            r
            for r in records
            if r["topic"] == topic_prefix or r["topic"].startswith(topic_prefix + ".")
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- canonical byte form ------------------------------------------------

    def canonical_lines(self) -> list[bytes]:
        """The trail as compact, key-sorted JSON lines (no trailing \\n)."""
        return [
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
            for record in self.records()
        ]

    def sha256(self) -> str:
        """Hex digest over the canonical lines — the reproducibility anchor."""
        digest = hashlib.sha256()
        for line in self.canonical_lines():
            digest.update(line)
            digest.update(b"\n")
        return digest.hexdigest()

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the canonical trail to *path* (creating parent dirs)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"".join(line + b"\n" for line in self.canonical_lines()))
        return path
