"""Ablation A3 — the cost of unified access control.

Section 1 demands "secure access control and unified authorization
mechanisms"; the design question is what they cost per call.  This
ablation measures the XDR round trip with and without the
:class:`SecureDispatcher` in the path (HMAC-SHA256 verification + policy
pattern matching per call).

Expected shape: an absolute overhead of tens of microseconds — visible on
the co-located metric, noise relative to SOAP/HTTP costs — i.e. security
does not change the binding-choice story.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import AccessPolicy, LightweightContainer, Principal
from repro.plugins.services import MatMul


def _deploy(secured: bool):
    policy = AccessPolicy().allow("MatMul", "*", {"compute"}) if secured else None
    container = LightweightContainer(
        f"a3-{'sec' if secured else 'plain'}", host=f"a3host{secured}", policy=policy
    )
    handle = container.deploy(MatMul, bindings=("local-instance", "xdr"))
    credential = (
        container.issue_token(Principal("bench", frozenset({"compute"})))
        if secured else None
    )
    factory = DynamicStubFactory(ClientContext(host="bench-client"))
    stub = factory.create(handle.document, prefer=("xdr",), credential=credential)
    return container, stub


@pytest.mark.parametrize("secured", [False, True], ids=["plain", "secured"])
def test_dispatch_benchmark(benchmark, secured, rng):
    container, stub = _deploy(secured)
    a = rng.random((4, 4))
    try:
        benchmark(stub.multiply, a, a)
    finally:
        stub.close()
        container.close()


def test_report_a3_security_overhead(rng):
    a = rng.random((4, 4))
    medians = {}
    for secured in (False, True):
        container, stub = _deploy(secured)
        try:
            stub.multiply(a, a)  # warm
            samples = []
            for _ in range(60):
                start = time.perf_counter()
                stub.multiply(a, a)
                samples.append(time.perf_counter() - start)
            samples.sort()
            medians[secured] = samples[len(samples) // 2]
        finally:
            stub.close()
            container.close()
    overhead = medians[True] - medians[False]
    rows = [
        ["plain", f"{medians[False] * 1e6:.1f}us"],
        ["secured (HMAC + policy)", f"{medians[True] * 1e6:.1f}us"],
        ["overhead", f"{overhead * 1e6:+.1f}us"],
    ]
    print_table("A3: per-call cost of unified access control (XDR loopback)",
                ["path", "median"], rows)
    # the authz machinery must stay small relative to the transport cost
    assert medians[True] < 3 * medians[False]
