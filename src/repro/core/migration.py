"""Component migration — the mobile-component path of Section 5/6.

"In mobile component frameworks the active component (or agent) can
sometimes avoid exchanging large amounts of data by instead moving itself,
and performing computations on the host when data is stored."  And the §6
scenario: the user "can search for a node that has a better connectivity to
the node providing the LAPACK service and upload his application component
to a container residing on that node.  Further, he can load his application
component to the same container that hosts the LAPACK service itself, and
take advantage of local bindings in order to minimize latency."

:func:`move_component` implements that upload: the component is stopped at
the source, its state serialized (pickle — our class-code + state transfer
stand-in for Java serialization), the bytes are charged to the fabric, and
the instance is revived in the destination container and re-published in
the DVM namespace.
"""

from __future__ import annotations

import pickle

from repro.container.component import ComponentHandle
from repro.dvm.machine import DistributedVirtualMachine
from repro.util.errors import MigrationError

__all__ = ["move_component", "serialize_component", "deserialize_component"]


def serialize_component(instance: object) -> bytes:
    """Serialize a component instance for transfer (class ref + state)."""
    try:
        return pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise MigrationError(
            f"component {type(instance).__name__} is not serializable: {exc}"
        ) from exc


def deserialize_component(blob: bytes) -> object:
    """Revive a component instance from its transfer form."""
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise MigrationError(f"cannot revive component: {exc}") from exc


def move_component(
    dvm: DistributedVirtualMachine,
    service_name: str,
    to_node: str,
    bindings: tuple[str, ...] | None = None,
) -> ComponentHandle:
    """Move a live component to *to_node*, preserving its state.

    Returns the new handle.  The instance's in-memory state travels with it
    (asserted by tests on stateful components); transfer bytes are charged
    to the virtual network between the two nodes.  ``bindings=None`` keeps
    the component's original bindings, and the ``restartable`` failover flag
    always survives the move.
    """
    owner, _document = dvm.lookup(to_node, service_name)
    if owner == to_node:
        raise MigrationError(f"{service_name!r} already lives on {to_node}")
    source = dvm.node(owner).container
    handle = source.component_named(service_name)
    if bindings is None:
        bindings = tuple(handle.metadata.get("bindings", ())) or (
            "local-instance", "xdr", "soap",
        )
    restartable = bool(handle.metadata.get("restartable"))

    blob = serialize_component(handle.instance)
    dvm.network.charge(owner, to_node, len(blob))
    instance = deserialize_component(blob)

    dvm.undeploy(owner, service_name)
    new_handle = dvm.deploy(
        to_node, instance, name=service_name, bindings=bindings, restartable=restartable
    )
    dvm.events.publish(
        "dvm.component.moved",
        {"service": service_name, "from": owner, "to": to_node, "bytes": len(blob)},
        source=dvm.name,
    )
    return new_handle
