"""SLO burn-rate engine: spec validation, extraction, window math, and
the multi-window AND semantics (DESIGN.md §12)."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.slo import BurnSeries, SloEngine, SloSpec


def _availability_spec(**overrides):
    params = dict(
        name="avail",
        objective=0.99,
        total_metric="server.requests",
        bad_metric="server.faults",
    )
    params.update(overrides)
    return SloSpec(**params)


def _counter_snapshot(total, bad):
    return {
        "server.requests": {"type": "counter", "value": total},
        "server.faults": {"type": "counter", "value": bad},
    }


class TestSloSpec:
    def test_objective_bounds_enforced(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                _availability_spec(objective=bad)

    def test_availability_needs_counter_pair(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", objective=0.9, total_metric="t")

    def test_latency_needs_histogram_and_threshold(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", objective=0.9, kind="latency", histogram="h")
        SloSpec(name="x", objective=0.9, kind="latency", histogram="h",
                threshold_us=500.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", objective=0.9, kind="throughput")

    def test_availability_extract(self):
        spec = _availability_spec()
        assert spec.extract(_counter_snapshot(100, 3)) == (3, 100)
        assert spec.extract({}) == (0, 0)  # pre-traffic: nothing to burn
        # bad can never exceed total even if the metrics disagree
        assert spec.extract(_counter_snapshot(2, 5)) == (2, 2)

    def test_latency_extract_is_conservative_at_the_threshold(self):
        hist = metrics.Histogram("handle_us")
        for value in (40.0, 60.0, 7_000.0):
            hist.observe(value)
        spec = SloSpec(
            name="lat", objective=0.9, kind="latency",
            histogram="handle_us", threshold_us=50.0,
        )
        # 40 us is good (bucket le=50 <= threshold); 60 us lands in the
        # 100-bucket whose upper bound exceeds 50 -> bad; 7 ms is bad
        assert spec.extract({"handle_us": hist.export()}) == (2, 3)


class TestBurnSeries:
    def test_burn_normalizes_by_budget(self):
        series = BurnSeries(0.99)
        series.observe(0.0, 0, 0)
        series.observe(10.0, 3, 100)
        # 3% bad over a window covering everything, against a 1% budget
        assert series.burn_rate(60.0) == pytest.approx(3.0)

    def test_windowed_difference(self):
        series = BurnSeries(0.9)
        series.observe(0.0, 0, 100)
        series.observe(10.0, 0, 200)
        series.observe(20.0, 10, 300)
        # the last 10s saw 10 bad of 100 calls: 10% / 10% budget = 1x
        assert series.burn_rate(10.0) == pytest.approx(1.0)
        # the full horizon saw 10 of 300
        assert series.burn_rate(100.0) == pytest.approx((10 / 300) / 0.1)

    def test_no_traffic_burns_nothing(self):
        series = BurnSeries(0.99)
        assert series.burn_rate(10.0) == 0.0
        series.observe(0.0, 5, 50)
        series.observe(10.0, 5, 50)  # no new calls in the window
        assert series.burn_rate(5.0) == 0.0

    def test_source_reset_restarts_series(self):
        series = BurnSeries(0.9)
        series.observe(0.0, 0, 100)
        series.observe(10.0, 50, 500)
        series.observe(20.0, 0, 10)  # counters went backwards: restart
        series.observe(30.0, 1, 20)
        assert len(series) == 2
        assert series.burn_rate(100.0) == pytest.approx((1 / 20) / 0.1)

    def test_max_burn_scans_every_sample(self):
        series = BurnSeries(0.9)
        series.observe(0.0, 0, 100)
        series.observe(5.0, 20, 200)   # spike: 20 bad of 100 in this step
        series.observe(10.0, 20, 300)  # quiet again
        assert series.burn_rate(5.0) == pytest.approx(0.0)  # now: no new bad
        assert series.max_burn(5.0) == pytest.approx((20 / 100) / 0.1)


class TestSloEngine:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SloEngine([_availability_spec(), _availability_spec()])

    def test_multi_window_and_semantics(self):
        """A short-window spike alone does not violate: every window must
        exceed the limit for the verdict to flip."""
        spec = _availability_spec(objective=0.9, windows_s=(5.0, 60.0))
        engine = SloEngine([spec])
        engine.observe(0.0, _counter_snapshot(1000, 0))     # clean baseline
        engine.observe(30.0, _counter_snapshot(1100, 30))   # burst: 30% bad
        engine.observe(60.0, _counter_snapshot(3000, 30))   # then clean
        (verdict,) = engine.evaluate(max_burn=2.0)
        assert verdict.windows[5.0] > 2.0       # short window blew up
        assert verdict.windows[60.0] < 2.0      # long window absorbed it
        assert verdict.ok                       # AND: no violation
        assert verdict.burn == pytest.approx(min(verdict.windows.values()))

    def test_sustained_burn_violates_every_window(self):
        spec = _availability_spec(objective=0.9, windows_s=(5.0, 60.0))
        engine = SloEngine([spec])
        for i in range(13):
            t = i * 5.0
            engine.observe(t, _counter_snapshot(100 * (i + 1), 50 * (i + 1)))
        (verdict,) = engine.evaluate(max_burn=2.0)
        assert not verdict.ok
        assert all(burn > 2.0 for burn in verdict.windows.values())

    def test_verdict_as_dict_is_json_shaped(self):
        engine = SloEngine([_availability_spec()])
        engine.observe(0.0, _counter_snapshot(10, 0))
        (verdict,) = engine.evaluate()
        doc = verdict.as_dict()
        assert doc["name"] == "avail"
        assert doc["ok"] is True
        assert set(doc["windows"]) == {"5.0", "60.0"}
