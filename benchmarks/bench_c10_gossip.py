"""C10 control-plane crossover — epidemic gossip vs full synchrony at fleet scale.

Section 6 scopes the coherency spectrum; this experiment measures where its
ends cross.  For each fleet size the same batch of state updates is pushed
through three schemes over the same random-regular substrate:

* **full-synchrony** — every write broadcasts to all n members: convergence
  is immediate but each update costs O(n) messages;
* **gossip** — writes stay local, push-pull anti-entropy over per-origin
  digests reconciles the fleet in O(log n) rounds of O(n·fanout) messages,
  amortized over the whole update batch;
* **neighborhood-gossip** — eager ring-neighbour pushes plus the epidemic:
  more messages per write, fewer rounds to converge.

The second leg is the registry crossover: S services placed on a
consistent-hash ring with R-way replication (:class:`ShardedRegistry`)
versus one centralized registry host, under a thundering herd of by-name
lookups with a per-host service-time model — the centralized host queues,
the sharded ring spreads, and the gap shows up in simulated p99.

Acceptance (asserted in ``test_report_c10_gossip`` and the script gates):

* every gossip run converges within the round cap;
* at the largest fleet measured, gossip messages-per-update is **>= 5x**
  cheaper than full synchrony;
* sharded registry p99 beats the centralized baseline at every n >= 1000;
* in full mode, the 10k-node gossip leg (updates + convergence) finishes
  under 60 s of wall time.

Runs under pytest (``pytest benchmarks/bench_c10_gossip.py``) and as a
script (``python benchmarks/bench_c10_gossip.py [--quick] [--out PATH]`` —
the CI smoke uses ``--quick``; the nightly soak runs the full sweep and
uploads ``--out`` as the audit trail).  Writes ``BENCH_c10.json`` next to
this file.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dvm.gossip import GossipState, NeighborhoodGossipState
from repro.dvm.state import FullSynchronyState
from repro.netsim import topology as _topology
from repro.plugins.services import CounterService
from repro.registry.distributed import CentralizedLookup
from repro.registry.sharded import ShardedRegistry
from repro.tools.wsdlgen import generate_wsdl

SEED = 3
DEGREE = 4
FANOUT = 2
RADIUS = 2
#: anti-entropy rounds before a non-converging run is declared broken
MAX_ROUNDS = 64

SIZES = [100, 1000, 10000]
QUICK_SIZES = [100, 1000]

#: update batch sizes: full synchrony pays O(n) messages *per update*, so a
#: handful suffices to measure its per-update cost; gossip amortizes whole
#: rounds over the batch, so it gets a realistic burst
FULLSYNC_UPDATES = 8
GOSSIP_UPDATES_CAP = 128

#: registry leg: S services, q-lookup thundering herd, per-host service time
N_SERVICES = 16
N_LOOKUPS = 2000
QUICK_LOOKUPS = 500
REPLICATION = 2
SERVICE_TIME_S = 0.0002

RESULT_PATH = Path(__file__).with_name("BENCH_c10.json")


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script (python benchmarks/bench_c10_gossip.py)
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


# -- convergence / amplification sweep -------------------------------------------------


def _measure_scheme(n: int, scheme: str) -> dict:
    """Apply a batch of updates through *scheme* on an n-node substrate and
    drive anti-entropy to convergence; returns the measured row."""
    names = [f"node{i}" for i in range(n)]
    network = _topology.random_regular(n, DEGREE, seed=SEED, detail_stats=False)
    if scheme == "full-synchrony":
        protocol = FullSynchronyState(network, members=names)
        updates = min(n, FULLSYNC_UPDATES)
    elif scheme == "gossip":
        protocol = GossipState(network, members=names, fanout=FANOUT, seed=SEED)
        updates = min(n, GOSSIP_UPDATES_CAP)
    elif scheme == "neighborhood-gossip":
        protocol = NeighborhoodGossipState(
            network, members=names, radius=RADIUS, fanout=FANOUT, seed=SEED
        )
        updates = min(n, GOSSIP_UPDATES_CAP)
    else:  # pragma: no cover — guarded by the caller
        raise ValueError(scheme)

    network.reset_stats()
    wall0 = time.perf_counter()
    for i in range(updates):
        # numeric values ride the columnar ndarray fast path in delta batches;
        # the convergence/amplification claim is about version spread, not
        # value payload shape
        protocol.update(names[i % n], f"component/svc{i}", i)
    rounds = 0
    if hasattr(protocol, "gossip_round"):
        while not protocol.converged() and rounds < MAX_ROUNDS:
            protocol.gossip_round()
            rounds += 1
        converged = protocol.converged()
    else:
        converged = True  # broadcast is synchronous by construction
    wall_s = time.perf_counter() - wall0

    return {
        "scheme": scheme,
        "n": n,
        "updates": updates,
        "rounds": rounds,
        "converged": converged,
        "messages": network.total_messages,
        "bytes": network.total_bytes,
        "msgs_per_update": round(network.total_messages / updates, 1),
        "wall_s": round(wall_s, 3),
    }


def run_convergence(sizes: list[int]) -> dict:
    rows = []
    for n in sizes:
        per_scheme = {}
        for scheme in ("full-synchrony", "gossip", "neighborhood-gossip"):
            per_scheme[scheme] = _measure_scheme(n, scheme)
        rows.append({"n": n, "schemes": per_scheme})
    return {
        "degree": DEGREE,
        "fanout": FANOUT,
        "radius": RADIUS,
        "fullsync_updates": FULLSYNC_UPDATES,
        "gossip_updates_cap": GOSSIP_UPDATES_CAP,
        "max_rounds": MAX_ROUNDS,
        "levels": rows,
    }


# -- registry crossover ----------------------------------------------------------------


def _simulated_percentile(latencies: list[float], p: float) -> float:
    values = sorted(latencies)
    if not values:
        return 0.0
    return values[min(len(values) - 1, int(len(values) * p))]


def _drive_lookups(network, lookups: int, do_lookup) -> dict:
    """One thundering herd of by-name lookups; per-lookup simulated latency.

    ``begin_burst`` zeroes the queue depths, so the k-th lookup landing on
    one host queues behind the k-1 before it — the centralized registry's
    serialization becomes visible in the percentiles while sharded load
    stays flat.
    """
    n_hosts = len(network.hosts())
    network.begin_burst()
    latencies = []
    for i in range(lookups):
        caller = f"node{(i * 7) % n_hosts}"
        service = f"svc{(i * 5) % N_SERVICES}"
        before = network.simulated_time
        found = do_lookup(caller, service)
        assert found, f"lookup {service} from {caller} came back empty"
        latencies.append(network.simulated_time - before)
    return {
        "lookups": lookups,
        "p50_ms": round(_simulated_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_simulated_percentile(latencies, 0.99) * 1e3, 3),
        "max_ms": round(max(latencies) * 1e3, 3),
    }


def _measure_registry(n: int, lookups: int) -> dict:
    documents = [
        generate_wsdl(CounterService, service_name=f"svc{i}") for i in range(N_SERVICES)
    ]

    # centralized: every name lives on node0; every lookup queues there
    network = _topology.lan(n, seed=SEED, detail_stats=False)
    for host in network.hosts():
        network.set_service_time(host.name, SERVICE_TIME_S)
    central = CentralizedLookup(network, "node0")
    for i, document in enumerate(documents):
        central.register(f"node{(i * 3) % n}", document)
    central_row = _drive_lookups(
        network,
        lookups,
        lambda caller, service: central.discover(
            caller, f"//portType[@name='{service}PortType']"
        ),
    )

    # sharded: consistent-hash placement, R-way replication, ring-order reads
    network = _topology.lan(n, seed=SEED, detail_stats=False)
    for host in network.hosts():
        network.set_service_time(host.name, SERVICE_TIME_S)
    sharded = ShardedRegistry(network, replication=REPLICATION)
    for i, document in enumerate(documents):
        sharded.register(f"node{(i * 3) % n}", document)
    sharded_row = _drive_lookups(
        network,
        lookups,
        lambda caller, service: sharded.lookup_name(caller, service),
    )

    return {"n": n, "central": central_row, "sharded": sharded_row}


def run_registry(sizes: list[int], lookups: int) -> dict:
    return {
        "services": N_SERVICES,
        "replication": REPLICATION,
        "service_time_ms": SERVICE_TIME_S * 1e3,
        "levels": [_measure_registry(n, lookups) for n in sizes],
    }


# -- reporting -------------------------------------------------------------------------


def _report_convergence(result: dict) -> None:
    rows = []
    for level in result["levels"]:
        for scheme in ("full-synchrony", "gossip", "neighborhood-gossip"):
            row = level["schemes"][scheme]
            rows.append([
                row["n"], scheme, row["updates"],
                row["rounds"] if row["rounds"] else "-",
                "yes" if row["converged"] else "NO",
                row["messages"], f"{row['msgs_per_update']:.0f}",
                f"{row['wall_s']:.2f}",
            ])
    _print_table(
        f"C10 convergence: random-regular degree {result['degree']}, fanout {result['fanout']}",
        ["n", "scheme", "updates", "rounds", "converged", "messages", "msgs/update", "wall s"],
        rows,
    )


def _report_registry(result: dict) -> None:
    rows = []
    for level in result["levels"]:
        central, sharded = level["central"], level["sharded"]
        rows.append([
            level["n"],
            f"{central['p50_ms']:.2f}", f"{central['p99_ms']:.2f}",
            f"{sharded['p50_ms']:.2f}", f"{sharded['p99_ms']:.2f}",
            f"{central['p99_ms'] / sharded['p99_ms']:.1f}x" if sharded["p99_ms"] else "-",
        ])
    _print_table(
        f"C10 registry herd: {result['levels'][0]['central']['lookups']} by-name lookups, "
        f"{result['services']} services, {result['service_time_ms']:.1f} ms service time",
        ["n", "central p50 ms", "central p99 ms", "sharded p50 ms", "sharded p99 ms", "p99 gain"],
        rows,
    )


def _write_json(result: dict, out: Path | None = None) -> None:
    text = json.dumps(result, indent=2) + "\n"
    RESULT_PATH.write_text(text)
    print(f"wrote {RESULT_PATH}")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {out}")


# -- gates -----------------------------------------------------------------------------


def _check_convergence_gates(result: dict, budget: float = 1.0) -> list[str]:
    failures = []
    for level in result["levels"]:
        n = level["n"]
        for scheme in ("gossip", "neighborhood-gossip"):
            row = level["schemes"][scheme]
            if not row["converged"]:
                failures.append(
                    f"convergence {n}: {scheme} did not converge in {MAX_ROUNDS} rounds"
                )
    largest = result["levels"][-1]
    fullsync = largest["schemes"]["full-synchrony"]["msgs_per_update"]
    gossip = largest["schemes"]["gossip"]["msgs_per_update"]
    ratio = fullsync / gossip if gossip else 0.0
    bound = 5.0 / budget
    if ratio < bound:
        failures.append(
            f"convergence {largest['n']}: gossip amplification only {ratio:.1f}x "
            f"cheaper than full synchrony (need >= {bound:g}x)"
        )
    ten_k = next((lvl for lvl in result["levels"] if lvl["n"] >= 10000), None)
    if ten_k is not None:
        wall = ten_k["schemes"]["gossip"]["wall_s"]
        if wall > 60.0:
            failures.append(
                f"convergence {ten_k['n']}: gossip leg took {wall:.1f}s wall "
                "(bound: 60s)"
            )
    return failures


def _check_registry_gates(result: dict, budget: float = 1.0) -> list[str]:
    failures = []
    for level in result["levels"]:
        n, central, sharded = level["n"], level["central"], level["sharded"]
        if n >= 1000 and sharded["p99_ms"] * (1.0 / budget) >= central["p99_ms"]:
            failures.append(
                f"registry {n}: sharded p99 {sharded['p99_ms']:.2f} ms does not beat "
                f"central {central['p99_ms']:.2f} ms"
            )
    return failures


# -- pytest entry point ----------------------------------------------------------------


def test_report_c10_gossip():
    result = {
        "experiment": "C10 gossip control plane vs full synchrony",
        "convergence": run_convergence(QUICK_SIZES),
        "registry": run_registry(QUICK_SIZES, QUICK_LOOKUPS),
    }
    _report_convergence(result["convergence"])
    _report_registry(result["registry"])
    _write_json(result)
    failures = _check_convergence_gates(result["convergence"], budget=2.0)
    failures += _check_registry_gates(result["registry"], budget=2.0)
    assert not failures, "; ".join(failures)


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: sizes 100/1000, fewer lookups, 2x gate budgets (used by CI)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the result JSON here (nightly soak audit trail)",
    )
    options = parser.parse_args(argv)

    quick = options.quick
    budget = 2.0 if quick else 1.0
    result = {
        "experiment": "C10 gossip control plane vs full synchrony",
        "convergence": run_convergence(QUICK_SIZES if quick else SIZES),
        "registry": run_registry(
            QUICK_SIZES if quick else SIZES, QUICK_LOOKUPS if quick else N_LOOKUPS
        ),
    }
    _report_convergence(result["convergence"])
    _report_registry(result["registry"])
    _write_json(result, out=options.out)

    failures = _check_convergence_gates(result["convergence"], budget=budget)
    failures += _check_registry_gates(result["registry"], budget=budget)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
