"""Command-line front end for the Harness II toolkit.

Usage::

    python -m repro.tools wsdlgen  pkg.module:Class [--bindings soap,local]
                                   [--name NAME] [--namespace URN]
    python -m repro.tools servicegen pkg.module:Class [--class-name NAME]
    python -m repro.tools query    FILE.wsdl EXPRESSION

Mirrors the IBM Web Services Toolkit commands the paper leans on
("the wsdlgen tool", "executing the servicegen tool") plus a query
command exposing the registry's XML query engine for ad-hoc use.
"""

from __future__ import annotations

import argparse
import sys

from repro.bindings.stubs import load_type
from repro.tools.servicegen import generate_stub_source
from repro.tools.wsdlgen import generate_wsdl
from repro.wsdl.io import document_to_string


def _cmd_wsdlgen(args: argparse.Namespace) -> int:
    service_class = load_type(args.type)
    bindings = tuple(b.strip() for b in args.bindings.split(",") if b.strip())
    document = generate_wsdl(
        service_class,
        service_name=args.name,
        target_namespace=args.namespace,
        bindings=bindings,
        instance_id=args.instance_id or "",
    )
    sys.stdout.write(document_to_string(document))
    return 0


def _cmd_servicegen(args: argparse.Namespace) -> int:
    service_class = load_type(args.type)
    document = generate_wsdl(service_class, bindings=("soap", "local"))
    # servicegen needs at least one port to know the portType in play;
    # synthesize a placeholder local port when generating offline
    from repro.wsdl.model import WsdlPort, WsdlService

    document = document.with_service(
        WsdlService(
            document.name,
            (WsdlPort("localPort", f"{document.name}LocalBinding", ()),),
        )
    )
    sys.stdout.write(
        generate_stub_source(document, class_name=args.class_name)
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.xmlkit import XmlQuery, parse

    with open(args.file, "rb") as handle:
        root = parse(handle.read())
    query = XmlQuery(args.expression)
    try:
        for value in query.values(root):
            print(value)
    except Exception as exc:  # pragma: no cover - defensive CLI surface
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools")
    commands = parser.add_subparsers(dest="command", required=True)

    wsdlgen = commands.add_parser("wsdlgen", help="generate WSDL from a Python class")
    wsdlgen.add_argument("type", help="pkg.module:Class")
    wsdlgen.add_argument("--bindings", default="soap,local")
    wsdlgen.add_argument("--name", default=None)
    wsdlgen.add_argument("--namespace", default=None)
    wsdlgen.add_argument("--instance-id", default=None)
    wsdlgen.set_defaults(fn=_cmd_wsdlgen)

    servicegen = commands.add_parser("servicegen", help="generate a static client stub")
    servicegen.add_argument("type", help="pkg.module:Class")
    servicegen.add_argument("--class-name", default=None)
    servicegen.set_defaults(fn=_cmd_servicegen)

    query = commands.add_parser("query", help="run an XML query over a document")
    query.add_argument("file")
    query.add_argument("expression")
    query.set_defaults(fn=_cmd_query)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
