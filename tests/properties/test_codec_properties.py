"""Property-based tests: codecs must be lossless inverses on their domains."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.encoding.base64codec import (
    decode_array_base64,
    decode_array_base64_pure,
    encode_array_base64,
    encode_array_base64_pure,
)
from repro.encoding.xdr import pack_value, unpack_value
from repro.soap.values import element_to_value, value_to_element
from repro.xmlkit import parse, to_string

# -- value strategies ---------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=10,
)

float_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(max_dims=3, max_side=8),
    elements=st.floats(allow_nan=False, allow_infinity=False, width=64),
)

int_arrays = arrays(
    dtype=np.int64,
    shape=array_shapes(max_dims=2, max_side=10),
    elements=st.integers(min_value=-(2**62), max_value=2**62),
)

# XML 1.0 cannot carry control characters or surrogates, and parsers
# normalise \r — so the SOAP domain is restricted to clean text.
xml_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0xD7FF),
    max_size=50,
)

xml_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    xml_text,
    st.binary(max_size=50),
)

xml_values = st.recursive(
    xml_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(xml_text, children, max_size=5),
    ),
    max_leaves=10,
)


def assert_equivalent(a, b):
    """Deep equality treating numeric ndarrays and uniform lists alike."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b))
    elif isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys()
        for key in a:
            assert_equivalent(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_equivalent(x, y)
    else:
        assert a == b


# -- XDR ------------------------------------------------------------------------


class TestXdrProperties:
    @given(values)
    @settings(max_examples=200)
    def test_tagged_value_round_trip(self, value):
        assert_equivalent(unpack_value(pack_value(value)), _canonical(value))

    @given(float_arrays)
    def test_float_array_round_trip(self, array):
        out = unpack_value(pack_value(array))
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert np.array_equal(out, array)

    @given(int_arrays)
    def test_int_array_round_trip(self, array):
        out = unpack_value(pack_value(array))
        assert np.array_equal(out, array)

    @given(values)
    def test_encoding_is_deterministic(self, value):
        assert pack_value(value) == pack_value(value)

    @given(st.binary(max_size=200))
    def test_decoder_never_crashes_ungracefully(self, garbage):
        """Arbitrary bytes either decode or raise EncodingError — nothing else."""
        from repro.util.errors import EncodingError

        try:
            unpack_value(garbage)
        except EncodingError:
            pass


def _canonical(value):
    """What the XDR tagged layer is allowed to normalise: uniform numeric
    lists become ndarrays; tuples become lists."""
    if isinstance(value, tuple):
        value = list(value)
    if isinstance(value, list):
        if value and all(isinstance(v, float) for v in value):
            return np.asarray(value, dtype=np.float64)
        if value and all(isinstance(v, int) and not isinstance(v, bool) for v in value):
            if all(-(2**63) <= v < 2**63 for v in value):
                return np.asarray(value, dtype=np.int64)
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, bytearray):
        return bytes(value)
    return value


# -- base64 -----------------------------------------------------------------------


class TestBase64Properties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=100))
    def test_round_trip(self, values):
        out = decode_array_base64(encode_array_base64(values))
        assert np.array_equal(out, np.asarray(values, dtype=np.float64))

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=50))
    def test_fast_path_equals_reference(self, values):
        fast = encode_array_base64(values)
        pure = encode_array_base64_pure(values)
        assert fast == pure
        assert list(decode_array_base64(fast)) == decode_array_base64_pure(pure)

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=60))
    def test_uint32_domain(self, values):
        out = decode_array_base64(encode_array_base64(values, "uint32"), "uint32")
        assert list(out) == values


# -- SOAP value encoding ---------------------------------------------------------------


class TestSoapValueProperties:
    @given(xml_values)
    @settings(max_examples=100)
    def test_round_trip_through_real_xml(self, value):
        element = value_to_element("v", value)
        reparsed = parse(to_string(element))
        assert_equivalent(element_to_value(reparsed), _canonical_soap(value))

    @given(float_arrays)
    @settings(max_examples=50)
    def test_ndarray_base64_mode(self, array):
        element = value_to_element("v", array, "base64")
        out = element_to_value(parse(to_string(element)))
        assert np.array_equal(out, array)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=0, max_value=30),
            elements=st.floats(allow_nan=False, allow_infinity=False, width=64),
        )
    )
    @settings(max_examples=50)
    def test_ndarray_items_mode_exact(self, array):
        element = value_to_element("v", array, "items")
        out = element_to_value(parse(to_string(element)))
        assert np.array_equal(np.asarray(out, dtype=np.float64).ravel(), array)


def _canonical_soap(value):
    """SOAP layer normalisations are the same as XDR's."""
    return _canonical(value)


class TestSoapRejectsXmlInvalidText:
    @given(st.text(alphabet="\x00\x01\x08\x0b\x1f", min_size=1, max_size=5))
    def test_control_characters_rejected_at_encode_time(self, bad):
        from repro.util.errors import EncodingError
        import pytest

        with pytest.raises(EncodingError, match="XML 1.0"):
            value_to_element("v", bad)
