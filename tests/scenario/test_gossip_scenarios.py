"""Scenario-layer coverage for the gossip control plane additions."""

import pytest

from repro.scenario.checks import known_checks
from repro.scenario.library import load_scenario, run_scenario
from repro.scenario.manifest import parse_manifest
from repro.util.errors import ScenarioError


def minimal(**overrides) -> dict:
    data = {
        "name": "t",
        "seed": 3,
        "duration_s": 2.0,
        "tick_s": 0.5,
        "topology": {"kind": "lan", "hosts": 4},
        "services": [
            {
                "name": "counter",
                "type": "repro.plugins.services:CounterService",
                "node": "node0",
            }
        ],
        "workload": {
            "service": "counter",
            "from_nodes": ["node1"],
            "ops": [{"op": "increment", "args": [1]}],
        },
        "checks": [{"check": "no_lost_calls"}],
    }
    data.update(overrides)
    return data


class TestManifestExtensions:
    def test_random_regular_topology_parses(self):
        manifest = parse_manifest(
            minimal(topology={"kind": "random_regular", "hosts": 6, "degree": 4})
        )
        assert manifest.topology.kind == "random_regular"
        assert manifest.topology.degree == 4

    def test_random_regular_degree_bounds(self):
        with pytest.raises(ScenarioError):
            parse_manifest(
                minimal(topology={"kind": "random_regular", "hosts": 6, "degree": 0})
            )
        with pytest.raises(ScenarioError):
            parse_manifest(
                minimal(topology={"kind": "random_regular", "hosts": 4, "degree": 4})
            )

    def test_random_regular_odd_product_rejected(self):
        with pytest.raises(ScenarioError, match="even"):
            parse_manifest(
                minimal(topology={"kind": "random_regular", "hosts": 5, "degree": 3})
            )

    def test_gossip_coherency_and_fanout(self):
        manifest = parse_manifest(
            minimal(dvm={"coherency": "gossip", "gossip_fanout": 3})
        )
        assert manifest.dvm.coherency == "gossip"
        assert manifest.dvm.gossip_fanout == 3

    def test_gossip_fanout_validated(self):
        with pytest.raises(ScenarioError):
            parse_manifest(minimal(dvm={"coherency": "gossip", "gossip_fanout": 0}))

    def test_shard_lookup_workload_parses(self):
        manifest = parse_manifest(
            minimal(
                workload={
                    "service": "counter",
                    "from_nodes": ["node1"],
                    "mode": "shard_lookup",
                    "replication": 3,
                }
            )
        )
        assert manifest.workload.mode == "shard_lookup"
        assert manifest.workload.replication == 3

    def test_replication_requires_shard_lookup_mode(self):
        with pytest.raises(ScenarioError, match="replication"):
            parse_manifest(
                minimal(
                    workload={
                        "service": "counter",
                        "from_nodes": ["node1"],
                        "ops": [{"op": "increment", "args": [1]}],
                        "replication": 2,
                    }
                )
            )

    def test_replication_validated(self):
        with pytest.raises(ScenarioError):
            parse_manifest(
                minimal(
                    workload={
                        "service": "counter",
                        "from_nodes": ["node1"],
                        "mode": "shard_lookup",
                        "replication": 0,
                    }
                )
            )

    def test_self_healing_swim_knobs(self):
        manifest = parse_manifest(
            minimal(
                self_healing={
                    "observer": "node0",
                    "indirect_probes": 2,
                    "sample": 5,
                    "coalesce_after": 16,
                }
            )
        )
        healing = manifest.self_healing
        assert healing.indirect_probes == 2
        assert healing.sample == 5
        assert healing.coalesce_after == 16

    def test_self_healing_swim_knobs_validated(self):
        for bad in (
            {"observer": "node0", "indirect_probes": -1},
            {"observer": "node0", "sample": 0},
            {"observer": "node0", "coalesce_after": 0},
        ):
            with pytest.raises(ScenarioError):
                parse_manifest(minimal(self_healing=bad))


class TestConvergedWithinChecker:
    def test_registered(self):
        assert "converged_within" in known_checks()

    def test_fails_on_non_gossip_scheme(self):
        manifest = parse_manifest(
            minimal(checks=[{"check": "converged_within", "deadline_s": 1.0}])
        )
        report = run_scenario(manifest)
        verdict = next(c for c in report.checks if c.check == "converged_within")
        assert not verdict.passed
        assert "FullSynchronyState" in verdict.detail


class TestBundledScenarios:
    def test_gossip_partition_convergence_passes(self):
        report = run_scenario(load_scenario("gossip-partition-convergence"))
        assert report.passed, [c.detail for c in report.checks if not c.passed]
        # the partition diverges the halves and the heal re-converges them
        assert any(c.check == "converged_within" and c.passed for c in report.checks)

    def test_registry_shard_loss_passes(self):
        report = run_scenario(load_scenario("registry-shard-loss"))
        assert report.passed, [c.detail for c in report.checks if not c.passed]
