"""XDR primitives, tagged values, and the RPC message layer."""

import numpy as np
import pytest

from repro.encoding.xdr import (
    XdrDecoder,
    XdrEncoder,
    pack_call,
    pack_reply,
    pack_value,
    unpack_call,
    unpack_reply,
    unpack_value,
)
from repro.util.errors import EncodingError


class TestPrimitives:
    def test_int_round_trip(self):
        enc = XdrEncoder()
        enc.pack_int(-123456)
        assert XdrDecoder(enc.getvalue()).unpack_int() == -123456

    def test_int_range_enforced(self):
        enc = XdrEncoder()
        with pytest.raises(EncodingError):
            enc.pack_int(2**31)
        with pytest.raises(EncodingError):
            enc.pack_uint(-1)

    def test_hyper(self):
        enc = XdrEncoder()
        enc.pack_hyper(-(2**62))
        assert XdrDecoder(enc.getvalue()).unpack_hyper() == -(2**62)

    def test_bool(self):
        enc = XdrEncoder()
        enc.pack_bool(True)
        enc.pack_bool(False)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_bool() is True
        assert dec.unpack_bool() is False

    def test_double_exact(self):
        enc = XdrEncoder()
        enc.pack_double(3.141592653589793)
        assert XdrDecoder(enc.getvalue()).unpack_double() == 3.141592653589793

    def test_float_single_precision(self):
        enc = XdrEncoder()
        enc.pack_float(1.5)
        assert XdrDecoder(enc.getvalue()).unpack_float() == 1.5

    @pytest.mark.parametrize("payload", [b"", b"a", b"ab", b"abc", b"abcd", b"abcde"])
    def test_opaque_padding(self, payload):
        enc = XdrEncoder()
        enc.pack_opaque(payload)
        assert len(enc) % 4 == 0  # RFC 1014 alignment
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_opaque() == payload
        assert dec.done()

    def test_string_utf8(self):
        enc = XdrEncoder()
        enc.pack_string("héllo wörld ☃")
        assert XdrDecoder(enc.getvalue()).unpack_string() == "héllo wörld ☃"

    def test_underflow_raises(self):
        with pytest.raises(EncodingError):
            XdrDecoder(b"\x00\x00").unpack_int()

    def test_double_array_vectorised(self):
        values = np.linspace(0, 1, 1000)
        enc = XdrEncoder()
        enc.pack_double_array(values)
        out = XdrDecoder(enc.getvalue()).unpack_double_array()
        assert np.array_equal(out, values)
        assert out.dtype == np.float64


class TestNdarray:
    @pytest.mark.parametrize(
        "dtype",
        ["int8", "uint8", "int16", "uint16", "int32", "uint32",
         "int64", "uint64", "float32", "float64", "complex64", "complex128"],
    )
    def test_dtypes_round_trip(self, dtype):
        array = np.arange(24).astype(dtype).reshape(2, 3, 4)
        enc = XdrEncoder()
        enc.pack_ndarray(array)
        out = XdrDecoder(enc.getvalue()).unpack_ndarray()
        assert out.dtype == np.dtype(dtype)
        assert out.shape == (2, 3, 4)
        assert np.array_equal(out, array)

    def test_zero_dim(self):
        array = np.float64(7.5)
        enc = XdrEncoder()
        enc.pack_ndarray(np.asarray(array))
        out = XdrDecoder(enc.getvalue()).unpack_ndarray()
        assert out.shape == ()
        assert out == 7.5

    def test_empty_array(self):
        enc = XdrEncoder()
        enc.pack_ndarray(np.zeros((0, 3)))
        out = XdrDecoder(enc.getvalue()).unpack_ndarray()
        assert out.shape == (0, 3)

    def test_non_contiguous_input(self):
        array = np.arange(20, dtype=np.float64).reshape(4, 5)[:, ::2]
        enc = XdrEncoder()
        enc.pack_ndarray(array)
        out = XdrDecoder(enc.getvalue()).unpack_ndarray()
        assert np.array_equal(out, array)

    def test_unsupported_dtype_rejected(self):
        enc = XdrEncoder()
        with pytest.raises(EncodingError):
            enc.pack_ndarray(np.array(["a", "b"]))

    def test_big_endian_on_wire(self):
        enc = XdrEncoder()
        enc.pack_ndarray(np.array([1], dtype=np.int32))
        # dtype code (1), ndim (1), dim (1), nbytes (4), payload 00 00 00 01
        assert enc.getvalue().endswith(b"\x00\x00\x00\x01")

    def test_decoder_output_is_writable_copy(self):
        array = np.arange(4, dtype=np.float64)
        enc = XdrEncoder()
        enc.pack_ndarray(array)
        out = XdrDecoder(enc.getvalue()).unpack_ndarray()
        out[0] = 99  # must not raise (frombuffer views are read-only)


class TestTaggedValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**40,
            3.5,
            "text",
            b"bytes",
            [1, "two", 3.0],
            {"a": 1, "b": [True, None]},
            {},
            [],
        ],
    )
    def test_round_trip(self, value):
        assert unpack_value(pack_value(value)) == value

    def test_uniform_float_list_becomes_array(self):
        out = unpack_value(pack_value([1.0, 2.0, 3.0]))
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64
        assert np.array_equal(out, [1.0, 2.0, 3.0])

    def test_uniform_int_list_becomes_array(self):
        out = unpack_value(pack_value([1, 2, 3]))
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int64

    def test_bool_list_stays_list(self):
        assert unpack_value(pack_value([True, False])) == [True, False]

    def test_nested_ndarray_in_dict(self):
        value = {"m": np.eye(3), "n": 2}
        out = unpack_value(pack_value(value))
        assert np.array_equal(out["m"], np.eye(3))
        assert out["n"] == 2

    def test_numpy_scalar_preserves_dtype(self):
        out = unpack_value(pack_value(np.float32(1.5)))
        assert out.dtype == np.float32

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(EncodingError):
            pack_value({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(EncodingError):
            pack_value(object())

    def test_trailing_bytes_rejected(self):
        with pytest.raises(EncodingError):
            unpack_value(pack_value(1) + b"\x00\x00\x00\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(EncodingError):
            unpack_value(b"\x00\x00\x00\x63")


class TestRpcMessages:
    def test_call_round_trip(self):
        data = pack_call("svc#1", "getResult", (np.eye(2), 5, "x"))
        target, operation, args = unpack_call(data)
        assert target == "svc#1"
        assert operation == "getResult"
        assert np.array_equal(args[0], np.eye(2))
        assert args[1:] == [5, "x"]

    def test_reply_ok(self):
        assert unpack_reply(pack_reply({"ok": True})) == {"ok": True}

    def test_reply_fault_raises(self):
        with pytest.raises(EncodingError, match="remote fault: boom"):
            unpack_reply(pack_reply(fault="boom"))

    def test_call_reply_kind_mismatch(self):
        with pytest.raises(EncodingError):
            unpack_reply(pack_call("t", "op", ()))
        with pytest.raises(EncodingError):
            unpack_call(pack_reply(1))

    def test_empty_args(self):
        target, operation, args = unpack_call(pack_call("t", "op", ()))
        assert args == []
