"""Ablation A4 — what the legacy-environment emulations cost.

§3 claims legacy codes "may run" inside plugin-emulated environments; the
engineering question is the toll each emulation layer takes over the raw
backplane.  This bench measures a same-kernel message round trip at four
altitudes:

* raw hmsg mailbox (the backplane floor),
* PVM task send/recv (tid routing + task table),
* MPI rank send/recv (rank table + communicator bookkeeping),
* tuple-space write/take (template matching).

Expected shape: each emulation adds a bounded constant over hmsg — the
layers are thin wrappers, not protocol stacks.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hmpi import MpiPlugin
from repro.plugins.hpvmd import PvmDaemonPlugin
from repro.plugins.hspaces import TupleSpacePlugin


@pytest.fixture(scope="module")
def stack():
    net = lan(1)
    harness = HarnessDvm("a4", net)
    harness.add_nodes("node0")
    for plugin in BASELINE_PLUGINS:
        harness.load_plugin_everywhere(plugin)
    kernel = harness.kernel("node0")
    kernel.load_plugin(PvmDaemonPlugin())
    kernel.load_plugin(MpiPlugin())
    kernel.load_plugin(TupleSpacePlugin())
    yield harness
    harness.close()


def _hmsg_roundtrip(kernel):
    hmsg = kernel.get_service("message-transport")
    hmsg.open_mailbox("a4-box")

    def op():
        hmsg.send("node0", "a4-box", {"v": 1}, tag=1)
        hmsg.recv("a4-box", tag=1, timeout=5)

    return op


def _pvm_roundtrip(kernel):
    pvmd = kernel.get_service("pvm")
    tid = pvmd.mytid()

    def op():
        pvmd.send(tid, 1, {"v": 1})
        pvmd._recv_for(tid, 1, 5.0)

    return op


def _mpi_roundtrip(kernel):
    mpi = kernel.get_service("mpi")
    holder = {}

    def single_rank(ctx):
        holder["ctx"] = ctx
        ctx.send(0, "warm", tag=1)
        ctx.recv(tag=1)

    mpi.run(single_rank, world_size=1)
    ctx = holder["ctx"]

    def op():
        ctx.send(0, {"v": 1}, tag=2)
        ctx.recv(tag=2)

    return op


def _space_roundtrip(kernel):
    space = kernel.get_service("tuple-space")

    def op():
        space.write({"kind": "a4", "v": 1})
        space.take({"kind": "a4"}, timeout=5)

    return op


LAYERS = [
    ("hmsg (floor)", _hmsg_roundtrip),
    ("pvm", _pvm_roundtrip),
    ("mpi", _mpi_roundtrip),
    ("tuple-space", _space_roundtrip),
]


@pytest.mark.parametrize("name,make", LAYERS, ids=[l[0].split()[0] for l in LAYERS])
def test_layer_benchmark(benchmark, stack, name, make):
    op = make(stack.kernel("node0"))
    op()  # warm
    benchmark(op)


def test_report_a4_emulation_toll(stack):
    kernel = stack.kernel("node0")
    medians = {}
    rows = []
    for name, make in LAYERS:
        op = make(kernel)
        op()
        samples = []
        for _ in range(300):
            start = time.perf_counter()
            op()
            samples.append(time.perf_counter() - start)
        samples.sort()
        medians[name] = samples[len(samples) // 2]
    floor = medians["hmsg (floor)"]
    for name, median in medians.items():
        rows.append([name, f"{median * 1e6:.1f}us", f"{median / floor:.1f}x"])
    print_table("A4: same-kernel round trip by emulation layer",
                ["layer", "median", "vs hmsg"], rows)
    # every emulation stays within a small constant of the backplane floor
    for name, median in medians.items():
        assert median < 25 * floor, (name, median, floor)
