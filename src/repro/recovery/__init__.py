"""Automatic component failover: the self-healing half of the robustness story."""

from repro.recovery.failover import CheckpointStore, FailoverManager, least_loaded_node

__all__ = ["CheckpointStore", "FailoverManager", "least_loaded_node"]
