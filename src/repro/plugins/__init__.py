"""Standard Harness plugins and example service components."""

from repro.plugins.hevent import EventManagementPlugin
from repro.plugins.hmsg import Envelope, MessageTransportPlugin
from repro.plugins.hproc import ProcessManagementPlugin
from repro.plugins.hmpi import MpiContext, MpiPlugin
from repro.plugins.hpvmd import PvmDaemonPlugin, PvmTaskContext
from repro.plugins.hspaces import TupleSpacePlugin, matches_template
from repro.plugins.htable import TableLookupPlugin
from repro.plugins.service_plugins import (
    LinalgServicePlugin,
    MatMulServicePlugin,
    PingPlugin,
    TimeServicePlugin,
)
from repro.plugins.services import (
    CounterService,
    LinearAlgebraService,
    MatMul,
    WSTime,
)

#: the replicated baseline of Figure 1: "a set of replicated plugins for
#: primitive functions such as message passing and process management are
#: loaded on all nodes"
BASELINE_PLUGINS = (
    MessageTransportPlugin,
    ProcessManagementPlugin,
    TableLookupPlugin,
    EventManagementPlugin,
)

__all__ = [
    "EventManagementPlugin",
    "Envelope",
    "MessageTransportPlugin",
    "ProcessManagementPlugin",
    "MpiContext",
    "MpiPlugin",
    "PvmDaemonPlugin",
    "PvmTaskContext",
    "TupleSpacePlugin",
    "matches_template",
    "TableLookupPlugin",
    "LinalgServicePlugin",
    "MatMulServicePlugin",
    "PingPlugin",
    "TimeServicePlugin",
    "CounterService",
    "LinearAlgebraService",
    "MatMul",
    "WSTime",
    "BASELINE_PLUGINS",
]
