"""Access control and authorization.

Section 1 lists among the issues metacomputing middleware must address:
"most importantly, secure access control and unified authorization
mechanisms must be provided."  The paper defers the mechanism; this module
supplies a unified one that fits the binding architecture:

* a :class:`Principal` (name + roles) is represented on the wire by an
  HMAC-signed **token** minted by the container's :class:`TokenAuthority`
  (the 2002-era analogue: GSI proxies / signed capability strings);
* an :class:`AccessPolicy` maps ``(service-pattern, operation-pattern)``
  rules to required roles, deny-by-default once any rule exists for a
  service;
* a :class:`SecureDispatcher` wraps the ordinary
  :class:`~repro.bindings.ObjectDispatcher`: call targets arrive as
  ``token@instance_id``; the token is verified and the policy consulted
  before dispatch.  Local *and* remote bindings traverse it identically —
  that is the "unified" part.

Clients attach credentials by wrapping their stub target via
:func:`with_credential`; :class:`~repro.bindings.DynamicStubFactory`
accepts the same string through its ``create(..)`` caller simply using a
credentialed target extension on the port (``ServiceTargetExt``) or by
calling :meth:`SecureDispatcher.qualify`.
"""

from __future__ import annotations

import fnmatch
import hashlib
import hmac
import secrets
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.bindings.dispatcher import ObjectDispatcher
from repro.util.errors import HarnessError

__all__ = [
    "AuthenticationError",
    "AuthorizationError",
    "Principal",
    "ANONYMOUS",
    "TokenAuthority",
    "AccessPolicy",
    "SecureDispatcher",
    "with_credential",
]


class AuthenticationError(HarnessError):
    """The credential is missing, malformed, or fails signature checks."""


class AuthorizationError(HarnessError):
    """An authenticated principal lacks the role a rule requires."""


@dataclass(frozen=True)
class Principal:
    """An authenticated identity with a set of roles."""

    name: str
    roles: frozenset[str] = frozenset()

    def has_role(self, role: str) -> bool:
        return role in self.roles


#: the unauthenticated caller
ANONYMOUS = Principal("anonymous", frozenset())


class TokenAuthority:
    """Mints and verifies HMAC-SHA256 signed credential tokens.

    Token format: ``name|role1,role2|hexsignature``.  Containers within one
    administrative domain share the authority's secret, giving the
    "unified authorization" of Section 1 across every node of a DVM.
    """

    def __init__(self, secret: bytes | None = None):
        self._secret = secret if secret is not None else secrets.token_bytes(32)

    @property
    def secret(self) -> bytes:
        """Share this with peer authorities in the same trust domain."""
        return self._secret

    def _sign(self, payload: str) -> str:
        return hmac.new(self._secret, payload.encode("utf-8"), hashlib.sha256).hexdigest()

    def issue(self, principal: Principal) -> str:
        """A wire token proving *principal* to any authority with the secret."""
        if "|" in principal.name or any("|" in r or "," in r for r in principal.roles):
            raise AuthenticationError("names and roles must not contain '|' or ','")
        payload = f"{principal.name}|{','.join(sorted(principal.roles))}"
        return f"{payload}|{self._sign(payload)}"

    def verify(self, token: str) -> Principal:
        """The principal a valid token encodes; raises otherwise."""
        parts = token.split("|")
        if len(parts) != 3:
            raise AuthenticationError("malformed credential token")
        name, roles_text, signature = parts
        payload = f"{name}|{roles_text}"
        if not hmac.compare_digest(self._sign(payload), signature):
            raise AuthenticationError(f"bad signature on credential for {name!r}")
        roles = frozenset(r for r in roles_text.split(",") if r)
        return Principal(name, roles)


@dataclass
class _Rule:
    service_pattern: str
    operation_pattern: str
    roles: frozenset[str]


class AccessPolicy:
    """Pattern-based authorization rules.

    ``allow("MatMul*", "*", {"compute"})`` lets any principal holding the
    ``compute`` role call any operation of services matching ``MatMul*``.
    Once *any* rule names a service, everything not allowed for it is
    denied; services with no rules at all follow ``default_open``.
    """

    def __init__(self, default_open: bool = True):
        self.default_open = default_open
        self._rules: list[_Rule] = []
        self._lock = threading.Lock()

    def allow(self, service_pattern: str, operation_pattern: str = "*",
              roles: set[str] | frozenset[str] = frozenset()) -> "AccessPolicy":
        """Add a rule; empty *roles* means any authenticated-or-not caller."""
        with self._lock:
            self._rules.append(
                _Rule(service_pattern, operation_pattern, frozenset(roles))
            )
        return self

    def check(self, principal: Principal, service: str, operation: str) -> None:
        """Raise :class:`AuthorizationError` unless the call is allowed."""
        with self._lock:
            rules = list(self._rules)
        governed = False
        for rule in rules:
            if not fnmatch.fnmatchcase(service, rule.service_pattern):
                continue
            governed = True
            if not fnmatch.fnmatchcase(operation, rule.operation_pattern):
                continue
            if not rule.roles or any(principal.has_role(r) for r in rule.roles):
                return
        if not governed and self.default_open:
            return
        raise AuthorizationError(
            f"principal {principal.name!r} (roles {sorted(principal.roles)}) "
            f"may not call {service}.{operation}"
        )


_CRED_SEP = "@"


def with_credential(token: str, target: str) -> str:
    """Qualify a dispatch target with a credential token."""
    if _CRED_SEP in token:
        raise AuthenticationError("token must not contain '@'")
    return f"{token}{_CRED_SEP}{target}"


class SecureDispatcher:
    """An :class:`ObjectDispatcher` front that authenticates and authorizes.

    Wire targets are either bare (``instance_id`` → anonymous) or
    credentialed (``token@instance_id``).  Service names for policy checks
    are derived from the instance id's ``Name#id`` convention.
    """

    def __init__(
        self,
        inner: ObjectDispatcher,
        authority: TokenAuthority,
        policy: AccessPolicy,
    ):
        self.inner = inner
        self.authority = authority
        self.policy = policy

    @staticmethod
    def _service_of(target: str) -> str:
        return target.partition("#")[0]

    def _authenticate(self, target: str) -> tuple[Principal, str]:
        token, sep, bare = target.rpartition(_CRED_SEP)
        if not sep:
            return ANONYMOUS, target
        return self.authority.verify(token), bare

    # -- ObjectDispatcher protocol ------------------------------------------------

    def invoke(self, target: str, operation: str, args: list | tuple) -> Any:
        principal, bare = self._authenticate(target)
        self.policy.check(principal, self._service_of(bare), operation)
        return self.inner.invoke(bare, operation, args)

    def lookup(self, target: str) -> object:
        principal, bare = self._authenticate(target)
        self.policy.check(principal, self._service_of(bare), "__lookup__")
        return self.inner.lookup(bare)

    def register(self, target: str, obj: object, operations: list[str] | None = None) -> None:
        self.inner.register(target, obj, operations)

    def unregister(self, target: str) -> None:
        self.inner.unregister(target)

    def targets(self) -> list[str]:
        return self.inner.targets()
