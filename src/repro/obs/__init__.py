"""Observability: process-wide metrics and cross-transport trace propagation.

The paper's DVM spreads one logical invocation over containers, codecs, and
transports; this package makes that path *visible* without changing it:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  lock-striped counters, gauges, and fixed-bucket histograms, exported as a
  plain-dict snapshot (the ``metrics`` console command and the
  ``dvm.metrics_snapshot()`` RPC are views over it).
* :mod:`repro.obs.trace` — a :class:`TraceContext` (trace id, span id,
  baggage) carried across every transport: a flag-extended block on TCP
  protocol-v2 frames, an ``X-Repro-Trace`` header on HTTP, a SOAP header
  block on envelopes, and plain contextvar flow for the in-process and
  simulated transports.

Tracing is off by default and costs one module-attribute check per call
when disabled (``benchmarks/bench_obs_overhead.py`` keeps both numbers
honest).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, registry
from repro.obs.trace import (
    Span,
    SpanRecorder,
    TraceContext,
    TraceWireError,
    activate,
    current,
    deactivate,
    enable,
    enabled,
    new_trace,
    recorder,
    use,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "TraceWireError",
    "activate",
    "current",
    "deactivate",
    "enable",
    "enabled",
    "new_trace",
    "recorder",
    "use",
]
