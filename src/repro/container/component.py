"""Component handles and lifecycle.

A *component* is a deployed service instance living in a container.  The
handle tracks its lifecycle (Section 5's deployment issue is about how much
work stands between "built" and "running"; the lifecycle makes each step
explicit), its WSDL description, and its exposure level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ComponentStateError
from repro.wsdl.model import WsdlDocument

__all__ = ["ComponentState", "ComponentHandle"]


class ComponentState(enum.Enum):
    """Lifecycle of a deployed component."""

    DEPLOYED = "deployed"  # instantiated, registered locally
    ACTIVE = "active"  # started (on_start hook ran), invocable
    STOPPED = "stopped"  # temporarily quiesced
    UNDEPLOYED = "undeployed"  # removed; handle is dead

    def _can_go(self, new: "ComponentState") -> bool:
        allowed = {
            ComponentState.DEPLOYED: {ComponentState.ACTIVE, ComponentState.UNDEPLOYED},
            ComponentState.ACTIVE: {ComponentState.STOPPED, ComponentState.UNDEPLOYED},
            ComponentState.STOPPED: {ComponentState.ACTIVE, ComponentState.UNDEPLOYED},
            ComponentState.UNDEPLOYED: set(),
        }
        return new in allowed[self]


@dataclass
class ComponentHandle:
    """A deployed component: instance + description + lifecycle."""

    instance_id: str
    name: str
    instance: Any
    document: WsdlDocument
    container_uri: str
    state: ComponentState = ComponentState.DEPLOYED
    registry_key: str = ""
    metadata: dict = field(default_factory=dict)

    def transition(self, new_state: ComponentState) -> None:
        """Advance the lifecycle; illegal moves raise."""
        if not self.state._can_go(new_state):
            raise ComponentStateError(
                f"component {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def alive(self) -> bool:
        return self.state in (ComponentState.DEPLOYED, ComponentState.ACTIVE, ComponentState.STOPPED)

    @property
    def invocable(self) -> bool:
        return self.state is ComponentState.ACTIVE
