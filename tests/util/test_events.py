"""EventBus topic matching, delivery, error isolation."""

from repro.util.events import EventBus


class TestSubscribe:
    def test_exact_topic(self):
        bus = EventBus()
        got = []
        bus.subscribe("dvm.member", got.append)
        bus.publish("dvm.member", payload=1)
        assert len(got) == 1 and got[0].payload == 1

    def test_prefix_matches_subtopics(self):
        bus = EventBus()
        got = []
        bus.subscribe("dvm.member", lambda e: got.append(e.topic))
        bus.publish("dvm.member.joined")
        bus.publish("dvm.member.left")
        assert got == ["dvm.member.joined", "dvm.member.left"]

    def test_prefix_does_not_match_lexical_siblings(self):
        bus = EventBus()
        got = []
        bus.subscribe("dvm.member", lambda e: got.append(e.topic))
        bus.publish("dvm.membership")  # not a dotted subtopic
        assert got == []

    def test_wildcard_and_empty_pattern(self):
        bus = EventBus()
        got = []
        bus.subscribe("*", lambda e: got.append(e.topic))
        bus.publish("anything.at.all")
        assert got == ["anything.at.all"]

    def test_unrelated_topic_not_delivered(self):
        bus = EventBus()
        got = []
        bus.subscribe("a.b", got.append)
        bus.publish("c.d")
        assert got == []


class TestDelivery:
    def test_publish_returns_handler_count(self):
        bus = EventBus()
        bus.subscribe("t", lambda e: None)
        bus.subscribe("t", lambda e: None)
        assert bus.publish("t") == 2

    def test_cancelled_subscription_not_delivered(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe("t", got.append)
        sub.cancel()
        assert not sub.active
        bus.publish("t")
        assert got == []

    def test_event_fields(self):
        bus = EventBus()
        got = []
        bus.subscribe("t", got.append)
        bus.publish("t", payload={"x": 1}, source="node0", extra="y")
        event = got[0]
        assert event.payload == {"x": 1}
        assert event.source == "node0"
        assert event.attributes == {"extra": "y"}

    def test_counters(self):
        bus = EventBus()
        bus.subscribe("t", lambda e: None)
        bus.publish("t")
        bus.publish("other")
        assert bus.published == 2
        assert bus.delivered == 1

    def test_subscriber_count(self):
        bus = EventBus()
        bus.subscribe("a", lambda e: None)
        bus.subscribe("a.b", lambda e: None)
        assert bus.subscriber_count() == 2
        assert bus.subscriber_count("a.b.c") == 2  # both prefixes match
        assert bus.subscriber_count("a") == 1


class TestErrorIsolation:
    def test_failing_handler_does_not_block_others(self):
        errors = []
        bus = EventBus(error_handler=lambda exc, e: errors.append(str(exc)))
        got = []

        def bad(event):
            raise RuntimeError("handler broke")

        bus.subscribe("t", bad)
        bus.subscribe("t", got.append)
        count = bus.publish("t")
        assert count == 1  # only the healthy handler counted
        assert len(got) == 1
        assert errors == ["handler broke"]

    def test_failing_handler_without_error_handler_is_swallowed(self):
        bus = EventBus()
        bus.subscribe("t", lambda e: 1 / 0)
        bus.publish("t")  # must not raise
