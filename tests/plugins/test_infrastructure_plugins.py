"""hmsg / hproc / htable / hevent — the Figure 2 infrastructure plugins."""

import pytest

from repro.core.kernel import HarnessKernel
from repro.netsim import lan
from repro.plugins.hevent import EventManagementPlugin
from repro.plugins.hmsg import MessageTransportPlugin
from repro.plugins.hproc import ProcessManagementPlugin
from repro.plugins.htable import TableLookupPlugin
from repro.runner.tasks import TaskState
from repro.util.errors import HarnessTimeoutError, PluginError


@pytest.fixture
def pair():
    """Two kernels on a LAN, each with all four infrastructure plugins."""
    net = lan(2)
    kernels = []
    for i in range(2):
        kernel = HarnessKernel(f"node{i}", network=net)
        for plugin in (MessageTransportPlugin, ProcessManagementPlugin,
                       TableLookupPlugin, EventManagementPlugin):
            kernel.load_plugin(plugin)
        kernels.append(kernel)
    yield kernels[0], kernels[1], net
    for kernel in kernels:
        kernel.shutdown()


class TestHmsg:
    def test_local_send_recv(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        hmsg.send("node0", "box", {"v": 1}, tag=7)
        envelope = hmsg.recv("box", tag=7, timeout=2)
        assert envelope.data == {"v": 1}
        assert envelope.src_host == "node0"

    def test_cross_kernel_send(self, pair):
        k0, k1, _ = pair
        k1.get_service("message-transport").open_mailbox("inbox")
        k0.get_service("message-transport").send("node1", "inbox", "hello", tag=3)
        envelope = k1.get_service("message-transport").recv("inbox", timeout=2)
        assert envelope.data == "hello"
        assert envelope.tag == 3
        assert envelope.src_host == "node0"

    def test_tag_filtering(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        hmsg.send("node0", "box", "a", tag=1)
        hmsg.send("node0", "box", "b", tag=2)
        assert hmsg.recv("box", tag=2, timeout=1).data == "b"
        assert hmsg.recv("box", tag=1, timeout=1).data == "a"

    def test_recv_any_tag_fifo(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        for i in range(3):
            hmsg.send("node0", "box", i, tag=i)
        assert [hmsg.recv("box", timeout=1).data for _ in range(3)] == [0, 1, 2]

    def test_recv_timeout(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("empty")
        with pytest.raises(HarnessTimeoutError):
            hmsg.recv("empty", timeout=0.05)

    def test_recv_unopened_mailbox_rejected(self, pair):
        k0, _, _ = pair
        with pytest.raises(PluginError):
            k0.get_service("message-transport").recv("nope", timeout=0.05)

    def test_try_recv(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        assert hmsg.try_recv("box") is None
        hmsg.send("node0", "box", 1)
        assert hmsg.try_recv("box").data == 1

    def test_auto_open_on_remote_delivery(self, pair):
        k0, k1, _ = pair
        # node0 sends before node1 opened the box: delivery auto-opens it
        k0.get_service("message-transport").send("node1", "latebox", "x")
        assert k1.get_service("message-transport").recv("latebox", timeout=1).data == "x"

    def test_pending_count(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        hmsg.send("node0", "box", 1)
        hmsg.send("node0", "box", 2)
        assert hmsg.pending("box") == 2

    def test_remote_send_charged_to_fabric(self, pair):
        k0, k1, net = pair
        before = net.total_bytes
        k0.get_service("message-transport").send("node1", "b", "payload" * 100)
        assert net.total_bytes > before

    def test_cross_thread_blocking_recv(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        import threading

        def sender():
            hmsg.send("node0", "box", "late")

        threading.Timer(0.05, sender).start()
        assert hmsg.recv("box", timeout=2).data == "late"


class TestHproc:
    def test_local_spawn(self, pair):
        k0, _, _ = pair
        hproc = k0.get_service("process-management")
        task_id = hproc.spawn(lambda a, b: a + b, 2, 3)
        status = hproc.wait(task_id)
        assert status.state is TaskState.DONE
        assert status.result == 5

    def test_spawn_by_import_path(self, pair):
        k0, _, _ = pair
        hproc = k0.get_service("process-management")
        status = hproc.wait(hproc.spawn_path("math:factorial", 5))
        assert status.result == 120

    def test_remote_spawn(self, pair):
        k0, k1, _ = pair
        hproc0 = k0.get_service("process-management")
        remote_id = hproc0.spawn_remote("node1", "math:factorial", 6)
        hproc1 = k1.get_service("process-management")
        assert hproc1.wait(remote_id).result == 720

    def test_remote_status(self, pair):
        k0, k1, _ = pair
        hproc0 = k0.get_service("process-management")
        remote_id = hproc0.spawn_remote("node1", "math:sqrt", 16)
        k1.get_service("process-management").wait(remote_id)
        info = hproc0.status_remote("node1", remote_id)
        assert info["state"] == "done"

    def test_unknown_remote_op(self, pair):
        k0, _, _ = pair
        with pytest.raises(PluginError):
            k0.send("node1", "process-management", {"op": "fork-bomb"})


class TestHtable:
    def test_local_put_get(self, pair):
        k0, _, _ = pair
        htable = k0.get_service("table-lookup")
        htable.put("t", "k", [1, 2])
        assert htable.get("t", "k") == [1, 2]
        assert htable.get("t", "missing") is None
        assert htable.get("t", "missing", "default") == "default"

    def test_remove_and_keys(self, pair):
        k0, _, _ = pair
        htable = k0.get_service("table-lookup")
        htable.put("t", "b", 1)
        htable.put("t", "a", 2)
        assert htable.keys("t") == ["a", "b"]
        htable.remove("t", "a")
        assert htable.keys("t") == ["b"]
        htable.remove("t", "ghost")  # idempotent

    def test_items_snapshot(self, pair):
        k0, _, _ = pair
        htable = k0.get_service("table-lookup")
        htable.put("t", "k", 1)
        items = htable.items("t")
        items["k"] = 99
        assert htable.get("t", "k") == 1

    def test_remote_put_get(self, pair):
        k0, k1, _ = pair
        k0.get_service("table-lookup").put_remote("node1", "shared", "key", "val")
        assert k1.get_service("table-lookup").get("shared", "key") == "val"
        assert k0.get_service("table-lookup").get_remote("node1", "shared", "key") == "val"

    def test_tables_isolated(self, pair):
        k0, _, _ = pair
        htable = k0.get_service("table-lookup")
        htable.put("t1", "k", 1)
        assert htable.get("t2", "k") is None


class TestHevent:
    def test_local_publish_subscribe(self, pair):
        k0, _, _ = pair
        hevent = k0.get_service("event-management")
        got = []
        hevent.subscribe("app.topic", got.append)
        count = hevent.publish("app.topic", {"n": 1})
        assert count == 1
        assert got[0].payload == {"n": 1}

    def test_cross_kernel_publish(self, pair):
        k0, k1, _ = pair
        got = []
        k1.get_service("event-management").subscribe("app", lambda e: got.append(e))
        k0.get_service("event-management").publish("app.remote", "data", peers=["node1"])
        assert len(got) == 1
        assert got[0].payload == "data"
        assert got[0].source == "node0"

    def test_publish_skips_self_in_peers(self, pair):
        k0, _, _ = pair
        hevent = k0.get_service("event-management")
        got = []
        hevent.subscribe("t", got.append)
        hevent.publish("t", 1, peers=["node0"])  # self in peers: no double delivery
        assert len(got) == 1

    def test_local_false_suppresses_local_delivery(self, pair):
        k0, k1, _ = pair
        local_got, remote_got = [], []
        k0.get_service("event-management").subscribe("t", local_got.append)
        k1.get_service("event-management").subscribe("t", remote_got.append)
        k0.get_service("event-management").publish("t", 1, peers=["node1"], local=False)
        assert local_got == []
        assert len(remote_got) == 1
