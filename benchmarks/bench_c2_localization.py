"""C2 — the localization issue (Section 5 / Figure 5).

Claim: "in case of components running in the same local system, exchange of
data through an HTTP server and TCP/IP stack is an obvious overhead."

Reproduced series: round-trip latency of the same small invocation on one
machine, through every access path the Harness II design defines:

* local-instance (JavaObject scheme — unmediated object access)
* local          (Java binding — fresh instance, still unmediated)
* xdr            (binary encoding + loopback TCP)
* soap           (XML + base64 + HTTP)

Expected shape: local paths orders of magnitude below the networked paths;
soap slowest.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.plugins.services import MatMul

PAYLOAD_N = 256  # 16x16 matrices: latency-dominated, not bandwidth-dominated


@pytest.fixture(scope="module")
def deployment():
    container = LightweightContainer("c2-bench", host="c2host")
    handle = container.deploy(MatMul, bindings=("local-instance", "local", "xdr", "soap"))
    stubs = {}
    co_located = DynamicStubFactory(
        ClientContext(container_uri=container.uri, host="c2host")
    )
    remote = DynamicStubFactory(ClientContext(host="clienthost"))
    stubs["local-instance"] = co_located.create(handle.document, prefer=("local-instance",))
    stubs["local"] = co_located.create(handle.document, prefer=("local",))
    stubs["xdr"] = remote.create(handle.document, prefer=("xdr",))
    stubs["soap"] = remote.create(handle.document, prefer=("soap",))
    yield stubs
    for stub in stubs.values():
        stub.close()
    container.close()


@pytest.mark.parametrize("protocol", ["local-instance", "local", "xdr", "soap"])
def test_round_trip_benchmark(benchmark, deployment, protocol, rng):
    stub = deployment[protocol]
    a = rng.random(PAYLOAD_N)
    b = rng.random(PAYLOAD_N)
    benchmark(stub.getResult, a, b)


def test_report_c2_localization(deployment, rng):
    a = rng.random(PAYLOAD_N)
    b = rng.random(PAYLOAD_N)
    medians = {}
    rows = []
    for protocol in ("local-instance", "local", "xdr", "soap"):
        stub = deployment[protocol]
        stub.getResult(a, b)  # warm up
        samples = []
        for _ in range(30):
            start = time.perf_counter()
            stub.getResult(a, b)
            samples.append(time.perf_counter() - start)
        samples.sort()
        medians[protocol] = samples[len(samples) // 2]
        rows.append([protocol, f"{medians[protocol] * 1e6:.1f}us"])
    baseline = medians["local-instance"]
    for row, protocol in zip(rows, medians):
        row.append(f"{medians[protocol] / baseline:.0f}x")
    print_table("C2: co-located round-trip latency by access path",
                ["binding", "median", "vs local-instance"], rows)

    # the Section 5 ordering, with real gaps
    assert medians["local-instance"] <= medians["local"] * 3  # both unmediated
    assert medians["xdr"] > 5 * medians["local-instance"]
    assert medians["soap"] > medians["xdr"]
    assert medians["soap"] > 20 * medians["local-instance"]
