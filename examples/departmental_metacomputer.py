#!/usr/bin/env python
"""Capstone: a departmental metacomputer, end to end (§6's narrative).

One script exercising the whole Harness II story:

1. enroll resources and build a DVM over two LAN clusters + WAN;
2. stage a service privately, test it, then publish ("it allows an
   organization to test a service implementation internally and to
   publish it only after a sufficient level of reliability … has been
   achieved");
3. register the WSDL in a UDDI registry; a foreign SOAP client discovers
   and calls it;
4. secure the deployment with role-based access control;
5. migrate the application component next to its data;
6. query everything through the container's own management service.

Run:  python examples/departmental_metacomputer.py
"""

import numpy as np

from repro import HarnessDvm, two_clusters
from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import AccessPolicy, Principal, expose_management
from repro.container.management import MANAGEMENT_SERVICE_NAME
from repro.plugins import BASELINE_PLUGINS, LinearAlgebraService
from repro.registry import UddiRegistry
from repro.runner import ResourceCatalog, ResourceDescriptor


class Simulator:
    """The department's application logic.

    ``run`` takes a LAPACK stub (used through local bindings by co-located
    callers); ``simulate`` is the self-contained entry point remote callers
    use (arguments must be serialisable — a stub is not).
    """

    def run(self, lapack, steps: int = 3) -> float:
        rng = np.random.default_rng(1)
        total = 0.0
        for _ in range(steps):
            a = rng.random((16, 16)) + 16 * np.eye(16)
            total += float(np.abs(lapack.solve(a, rng.random(16))).sum())
        return total

    def simulate(self, steps: int = 3) -> float:
        rng = np.random.default_rng(1)
        total = 0.0
        for _ in range(steps):
            a = rng.random((16, 16)) + 16 * np.eye(16)
            total += float(np.abs(np.linalg.solve(a, rng.random(16))).sum())
        return total


def main() -> None:
    # -- 1. resources + DVM ---------------------------------------------------------
    catalog = ResourceCatalog()
    for name, cluster in (("a0", "office"), ("a1", "office"), ("b0", "hpc"), ("b1", "hpc")):
        catalog.register(ResourceDescriptor(name, cpus=4, tags=frozenset({cluster})))
    picked = catalog.aggregate(["tag:hpc"], total_cpus=8)
    print(f"matchmaker aggregated: {[(r.name, c) for r, c in picked]}")

    network = two_clusters(2)
    with HarnessDvm("department", network) as harness:
        harness.add_nodes("a0", "a1", "b0", "b1")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)

        # -- 2. stage privately, then publish --------------------------------------
        container = harness.kernel("b0").container
        handle = container.deploy(
            LinearAlgebraService, name="LAPACK",
            bindings=("local-instance", "sim", "soap"), exposure="private",
        )
        internal = container.lookup("LAPACK", include_private=True)
        assert internal.determinant(np.eye(3)) == 1.0  # internal validation
        container.set_exposure(handle.instance_id, "public")
        harness.dvm.publish("b0", "LAPACK")
        print("LAPACK validated privately, now published DVM-wide")

        # -- 3. UDDI + a foreign SOAP client -----------------------------------------
        uddi = UddiRegistry()
        business = uddi.save_business("MathCS department")
        uddi.publish_wsdl(business.key, handle.document)
        found = uddi.map_generic_query("//operation[@name='solve']")
        document = uddi.get_wsdl(found[0].key)
        outsider = DynamicStubFactory(ClientContext(host="visitor"))
        soap_stub = outsider.create(document, prefer=("soap",))
        a = np.eye(4) * 2
        print(f"foreign SOAP client solved a system: "
              f"{soap_stub.solve(a, np.ones(4))!r}")
        soap_stub.close()

        # -- 4. secure a second container --------------------------------------------
        from repro.container import LightweightContainer

        policy = AccessPolicy().allow("Simulator", "*", {"researcher"})
        secured = LightweightContainer("secured", host="a0-secure", policy=policy)
        try:
            sim_handle = secured.deploy(Simulator, bindings=("local-instance", "xdr"))
            token = secured.issue_token(Principal("alice", frozenset({"researcher"})))
            client = DynamicStubFactory(ClientContext(host="alice-laptop"))
            authorized = client.create(sim_handle.document, prefer=("xdr",), credential=token)
            print(f"authorized simulation result: {authorized.simulate(3):.3f}")
            authorized.close()
            anonymous = client.create(sim_handle.document, prefer=("xdr",))
            try:
                anonymous.simulate(1)
                print("ERROR: anonymous call should have been denied")
            except Exception as exc:
                print(f"anonymous caller denied, as configured: {type(exc).__name__}")
            anonymous.close()
        finally:
            secured.close()

        # -- 5. migrate the app next to its data --------------------------------------
        harness.deploy("a0", Simulator, name="Sim")
        network.reset_stats()
        sim = harness.stub("a0", "Sim")
        sim.run(harness.stub("a0", "LAPACK"))
        wan_cost = network.simulated_time
        harness.move("Sim", "b0")
        network.reset_stats()
        sim = harness.stub("b0", "Sim")
        sim.run(harness.stub("b0", "LAPACK"))
        local_cost = network.simulated_time
        print(f"migration: WAN placement cost {wan_cost * 1e3:.1f}ms simulated, "
              f"co-located {local_cost * 1e3:.3f}ms")

        # -- 6. the container as a service ---------------------------------------------
        mgmt_handle = expose_management(container, bindings=("local-instance", "soap"))
        operator = DynamicStubFactory(ClientContext(host="operator"))
        mgmt = operator.create(mgmt_handle.document, prefer=("soap",))
        print(f"management service reports components: "
              f"{sorted(c['name'] for c in mgmt.listComponents())}")
        mgmt.close()


if __name__ == "__main__":
    main()
