"""Python value ⇄ SOAP-encoded XML element conversion.

Implements SOAP 1.1 Section-5 style encoding with ``xsi:type`` annotations.
Two array modes are supported, matching the two costs the paper attributes
to XML messaging:

* ``items`` — every number becomes its own ``<item xsi:type="xsd:double">``
  element (text encoding cost: float → decimal string → float);
* ``base64`` — the array's big-endian bytes are base64-encoded into a single
  ``xsd:base64Binary`` text node ("the default BASE64 encoding adopted by
  SOAP for XSD data types", Section 5).

Both pay real CPU and wire overhead relative to XDR; the C1 benchmark
measures each.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.encoding.base64codec import decode_array_base64, encode_array_base64
from repro.util.errors import EncodingError
from repro.xmlkit import NS_HARNESS, NS_SOAP_ENC, NS_XSD, NS_XSI, QName, XmlElement

__all__ = ["value_to_element", "element_to_value", "ARRAY_MODES"]

ARRAY_MODES = ("base64", "items")

_XSI_TYPE = QName(NS_XSI, "type")
_H_DTYPE = QName(NS_HARNESS, "dtype")
_H_SHAPE = QName(NS_HARNESS, "shape")
_ENC_ARRAY_TYPE = QName(NS_SOAP_ENC, "arrayType")

_BOOL_WORDS = {"true": True, "1": True, "false": False, "0": False}

import re as _re

# Characters XML 1.0 cannot represent at all (even escaped): control chars
# other than tab/newline/carriage-return, and surrogates.
_XML_INVALID = _re.compile(
    "[\x00-\x08\x0b\x0c\x0e-\x1f\ud800-\udfff￾￿]"
)


def _check_xml_text(text: str, where: str) -> str:
    """SOAP is XML: strings with XML-unrepresentable characters must be
    rejected at encode time rather than producing a malformed envelope
    (binary payloads belong in xsd:base64Binary)."""
    match = _XML_INVALID.search(text)
    if match is not None:
        raise EncodingError(
            f"{where} contains character {match.group()!r} which XML 1.0 "
            "cannot represent; use bytes (base64Binary) for binary data"
        )
    return text


def value_to_element(name: str, value: Any, array_mode: str = "base64") -> XmlElement:
    """Encode *value* as an element called *name* with an ``xsi:type``."""
    if array_mode not in ARRAY_MODES:
        raise EncodingError(f"unknown array mode {array_mode!r}")
    element = XmlElement(QName("", name))
    _fill(element, value, array_mode)
    return element


def _fill(element: XmlElement, value: Any, array_mode: str) -> None:
    if value is None:
        element.set(QName(NS_XSI, "nil"), "true")
    elif isinstance(value, bool):
        element.set(_XSI_TYPE, "xsd:boolean")
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element.set(_XSI_TYPE, "xsd:long")
        element.text = str(value)
    elif isinstance(value, float):
        # repr(float) round-trips float64 exactly; plain float() first so
        # numpy scalars (float subclasses) don't leak their numpy repr
        element.set(_XSI_TYPE, "xsd:double")
        element.text = repr(float(value))
    elif isinstance(value, str):
        element.set(_XSI_TYPE, "xsd:string")
        element.text = _check_xml_text(value, "xsd:string value")
    elif isinstance(value, (bytes, bytearray)):
        element.set(_XSI_TYPE, "xsd:base64Binary")
        import base64 as _b64

        element.text = _b64.b64encode(bytes(value)).decode("ascii")
    elif isinstance(value, np.ndarray):
        _fill_ndarray(element, value, array_mode)
    elif isinstance(value, np.generic):
        _fill(element, value.item(), array_mode)
    elif isinstance(value, (list, tuple)):
        numeric = _as_numeric(value)
        if numeric is not None:
            _fill_ndarray(element, numeric, array_mode)
        else:
            element.set(_XSI_TYPE, "soapenc:Array")
            element.set(_ENC_ARRAY_TYPE, f"xsd:anyType[{len(value)}]")
            for item in value:
                child = element.element("item")
                _fill(child, item, array_mode)
    elif isinstance(value, dict):
        element.set(_XSI_TYPE, "harness:Struct")
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError("SOAP struct keys must be strings")
            child = element.element("entry", {"key": _check_xml_text(key, "struct key")})
            _fill(child, item, array_mode)
    else:
        raise EncodingError(f"cannot SOAP-encode {type(value).__name__}")


def _as_numeric(seq) -> np.ndarray | None:
    if not seq:
        return None
    if all(isinstance(v, float) for v in seq):
        return np.asarray(seq, dtype=np.float64)
    if all(isinstance(v, int) and not isinstance(v, bool) for v in seq):
        try:
            return np.asarray(seq, dtype=np.int64)
        except OverflowError:
            return None
    return None


def _fill_ndarray(element: XmlElement, array: np.ndarray, array_mode: str) -> None:
    array = np.asarray(array)
    shape = " ".join(str(d) for d in array.shape)
    if array_mode == "base64":
        element.set(_XSI_TYPE, "xsd:base64Binary")
        element.set(_H_DTYPE, array.dtype.name)
        element.set(_H_SHAPE, shape)
        element.text = encode_array_base64(array.ravel(), array.dtype.name)
        return
    # items mode: SOAP-ENC:Array of individually typed text elements
    flat = array.ravel()
    xsd_type = _xsd_scalar_type(array.dtype)
    element.set(_XSI_TYPE, "soapenc:Array")
    element.set(_ENC_ARRAY_TYPE, f"{xsd_type}[{flat.size}]")
    element.set(_H_DTYPE, array.dtype.name)
    element.set(_H_SHAPE, shape)
    if array.dtype.kind == "f":
        texts = [repr(float(v)) for v in flat]
    elif array.dtype.kind in "iu":
        texts = [str(int(v)) for v in flat]
    else:
        raise EncodingError(f"items mode cannot encode dtype {array.dtype}")
    for text in texts:
        element.element("item", {str(_XSI_TYPE.clark()): xsd_type}, text=text)


def _xsd_scalar_type(dtype: np.dtype) -> str:
    kind = dtype.kind
    if kind == "f":
        return "xsd:double" if dtype.itemsize == 8 else "xsd:float"
    if kind == "i":
        return "xsd:long" if dtype.itemsize == 8 else "xsd:int"
    if kind == "u":
        return "xsd:unsignedLong" if dtype.itemsize == 8 else "xsd:unsignedInt"
    raise EncodingError(f"no XSD scalar type for dtype {dtype}")


def element_to_value(element: XmlElement) -> Any:
    """Decode a SOAP-encoded element back into a Python value."""
    if element.get(QName(NS_XSI, "nil")) == "true" or element.get("nil") == "true":
        return None
    xsi_type = element.get(_XSI_TYPE) or element.get("type") or ""
    local = xsi_type.split(":", 1)[-1]
    dtype_attr = element.get(_H_DTYPE) or element.get("dtype")
    shape_attr = element.get(_H_SHAPE)
    shape = (
        tuple(int(d) for d in shape_attr.split()) if shape_attr is not None else None
    )

    if local == "boolean":
        word = element.text.strip().lower()
        if word not in _BOOL_WORDS:
            raise EncodingError(f"invalid xsd:boolean text: {element.text!r}")
        return _BOOL_WORDS[word]
    if local in ("int", "long", "short", "byte", "unsignedInt", "unsignedLong", "integer"):
        try:
            return int(element.text.strip())
        except ValueError as exc:
            raise EncodingError(f"invalid integer text: {element.text!r}") from exc
    if local in ("double", "float", "decimal"):
        try:
            return float(element.text.strip())
        except ValueError as exc:
            raise EncodingError(f"invalid float text: {element.text!r}") from exc
    if local == "string":
        return element.text
    if local == "base64Binary":
        if dtype_attr is not None:
            array = decode_array_base64(element.text.strip(), dtype_attr)
            if shape is not None:
                array = array.reshape(shape)
            return array
        import base64 as _b64

        try:
            return _b64.b64decode(element.text.strip().encode("ascii"), validate=True)
        except Exception as exc:
            raise EncodingError(f"invalid base64Binary: {exc}") from exc
    if local == "Array":
        items = element.find_all("item")
        if dtype_attr is not None:
            dtype = np.dtype(dtype_attr)
            if dtype.kind == "f":
                array = np.asarray([float(i.text) for i in items], dtype=dtype)
            else:
                array = np.asarray([int(i.text) for i in items], dtype=dtype)
            if shape is not None:
                array = array.reshape(shape)
            return array
        return [element_to_value(item) for item in items]
    if local == "Struct":
        out: dict[str, Any] = {}
        for entry in element.find_all("entry"):
            out[entry.require("key")] = element_to_value(entry)
        return out
    if not xsi_type:
        # Untyped: bare string content (lenient towards foreign SOAP stacks).
        return element.text
    raise EncodingError(f"unknown xsi:type {xsi_type!r}")
