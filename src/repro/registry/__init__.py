"""Lookup and discovery: local registry, UDDI model, WSIL, distributed schemes."""

from repro.registry.distributed import (
    CentralizedLookup,
    DecentralizedLookup,
    DistributedLookup,
    NeighborhoodLookup,
)
from repro.registry.local import PRIVATE, PUBLIC, RegisteredService, ServiceRegistry
from repro.registry.sharded import HashRing, ShardedRegistry
from repro.registry.uddi import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    TModel,
    UddiRegistry,
)
from repro.registry.wsil import WsilDocument, WsilEntry

__all__ = [
    "CentralizedLookup",
    "DecentralizedLookup",
    "DistributedLookup",
    "NeighborhoodLookup",
    "PRIVATE",
    "PUBLIC",
    "RegisteredService",
    "ServiceRegistry",
    "HashRing",
    "ShardedRegistry",
    "BindingTemplate",
    "BusinessEntity",
    "BusinessService",
    "TModel",
    "UddiRegistry",
    "WsilDocument",
    "WsilEntry",
]
