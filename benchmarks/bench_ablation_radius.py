"""Ablation A2 — neighborhood radius sweep.

The paper leaves the neighbourhood size unspecified ("full synchrony across
small neighborhoods").  This ablation sweeps the radius on a fixed
workload.  Two forces pull against each other: update cost grows linearly
with the radius (more replicas pushed), while query cost falls as hits
land in the neighbourhood — but *coherent* neighbourhood reads must consult
every neighbour, so very large radii make queries expensive again.  The
result is a U-shaped total with an interior optimum, which is exactly why
the paper frames the radius as an application-tunable rather than fixing
it: "mesh-structured applications may benefit" from one setting where
others would not.
"""

import pytest

from benchmarks.conftest import print_table
from repro.dvm.state import NeighborhoodState
from repro.netsim import lan

N_NODES = 16
RADII = [1, 2, 4, 8]


def run_radius(radius: int, updates: int, queries: int):
    net = lan(N_NODES)
    members = [f"node{i}" for i in range(N_NODES)]
    protocol = NeighborhoodState(net, members, radius=radius)
    net.reset_stats()
    for i in range(updates):
        protocol.update(members[i % N_NODES], f"k{i}", {"v": i})
    for i in range(queries):
        protocol.get(members[(i * 5) % N_NODES], f"k{i % max(updates, 1)}")
    return net


@pytest.mark.parametrize("radius", RADII)
def test_radius_benchmark(benchmark, radius):
    benchmark.pedantic(run_radius, args=(radius, 16, 16), rounds=5, iterations=1)


def test_report_ablation_radius():
    updates, queries = 16, 48
    rows = []
    update_msgs = {}
    query_msgs = {}
    for radius in RADII:
        net = lan(N_NODES)
        members = [f"node{i}" for i in range(N_NODES)]
        protocol = NeighborhoodState(net, members, radius=radius)
        net.reset_stats()
        for i in range(updates):
            protocol.update(members[i % N_NODES], f"k{i}", {"v": i})
        update_msgs[radius] = net.total_messages
        net.reset_stats()
        for i in range(queries):
            protocol.get(members[(i * 5) % N_NODES], f"k{i % updates}")
        query_msgs[radius] = net.total_messages
        rows.append([radius, update_msgs[radius], query_msgs[radius],
                     update_msgs[radius] + query_msgs[radius]])
    print_table(
        f"A2: neighborhood radius sweep ({N_NODES} nodes, "
        f"{updates} updates / {queries} queries)",
        ["radius", "update msgs", "query msgs", "total"],
        rows,
    )
    # update cost is monotone in the radius (one push per neighbour)
    assert update_msgs[8] > update_msgs[4] > update_msgs[2] > update_msgs[1]
    # total cost is U-shaped: an interior radius beats both extremes
    totals = {r: update_msgs[r] + query_msgs[r] for r in RADII}
    best = min(totals, key=totals.get)
    assert best not in (RADII[0], RADII[-1]), totals
    assert totals[best] < totals[RADII[0]]
    assert totals[best] < totals[RADII[-1]]
