"""SOAP 1.1: envelopes, value encoding, faults, message codec.

Importing this package registers the SOAP codecs (``text/xml`` in both
array modes) with :data:`repro.encoding.default_registry`.
"""

from repro.encoding.registry import default_registry
from repro.soap.codec import SoapMessageCodec
from repro.soap.mime import MIME_CONTENT_TYPE, MimeMessageCodec
from repro.soap.envelope import (
    SOAP_CONTENT_TYPE,
    build_call_envelope,
    build_fault_envelope,
    build_reply_envelope,
    parse_call_envelope,
    parse_reply_envelope,
)
from repro.soap.values import ARRAY_MODES, element_to_value, value_to_element

__all__ = [
    "SoapMessageCodec",
    "MimeMessageCodec",
    "MIME_CONTENT_TYPE",
    "SOAP_CONTENT_TYPE",
    "build_call_envelope",
    "build_fault_envelope",
    "build_reply_envelope",
    "parse_call_envelope",
    "parse_reply_envelope",
    "ARRAY_MODES",
    "element_to_value",
    "value_to_element",
]

for _mode in ARRAY_MODES:
    _codec = SoapMessageCodec(_mode)
    if _codec.content_type not in default_registry.content_types():
        default_registry.register(_codec)
del _mode, _codec

if MIME_CONTENT_TYPE not in default_registry.content_types():
    default_registry.register(MimeMessageCodec())
