"""Topology builders: structure, scalability, and seed determinism."""

import pytest

from repro.netsim.topology import (
    LAN_LINK,
    lan,
    mesh_neighborhoods,
    random_regular,
    two_clusters,
    wan,
)


def lan_edges(network) -> set[tuple[str, str]]:
    """The undirected LAN-link edge set of a built network."""
    return {
        tuple(sorted(pair))
        for pair, model in network._links.items()
        if model == LAN_LINK
    }


class TestBuilders:
    def test_lan_names_hosts_sequentially(self):
        network = lan(5)
        assert sorted(h.name for h in network.hosts()) == [f"node{i}" for i in range(5)]

    def test_wan_has_no_per_pair_entries(self):
        # the WAN model is the network default; O(n) construction means the
        # per-pair table stays empty no matter the host count
        network = wan(50)
        assert not network._links

    def test_two_clusters_prefixes(self):
        network = two_clusters(3)
        names = sorted(h.name for h in network.hosts())
        assert names == ["a0", "a1", "a2", "b0", "b1", "b2"]

    def test_mesh_ring_degree(self):
        network = mesh_neighborhoods(8, neighborhood=2)
        edges = lan_edges(network)
        degree = {f"node{i}": 0 for i in range(8)}
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        assert set(degree.values()) == {4}  # 2 hops in each ring direction


class TestRandomRegular:
    def test_every_host_has_exact_degree(self):
        network = random_regular(60, degree=4, seed=11)
        edges = lan_edges(network)
        degree = {f"node{i}": 0 for i in range(60)}
        for a, b in edges:
            assert a != b, "self-loop"
            degree[a] += 1
            degree[b] += 1
        assert set(degree.values()) == {4}
        assert len(edges) == 60 * 4 // 2

    def test_no_multi_edges(self):
        # lan_edges is a set; a multi-edge would collapse and break the
        # degree accounting above — assert the pair count directly too
        network = random_regular(30, degree=3, seed=5)
        pairs = [
            tuple(sorted(pair))
            for pair, model in network._links.items()
            if model == LAN_LINK
        ]
        undirected = [p for i, p in enumerate(pairs) if p not in pairs[:i]]
        assert len(undirected) == 30 * 3 // 2

    def test_same_seed_is_identical_at_fleet_scale(self):
        first = lan_edges(random_regular(10_000, degree=4, seed=7, detail_stats=False))
        second = lan_edges(random_regular(10_000, degree=4, seed=7, detail_stats=False))
        assert first == second
        assert len(first) == 10_000 * 4 // 2

    def test_different_seed_differs(self):
        a = lan_edges(random_regular(100, degree=4, seed=1))
        b = lan_edges(random_regular(100, degree=4, seed=2))
        assert a != b

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_regular(5, degree=3)

    def test_degree_bounds(self):
        with pytest.raises(ValueError):
            random_regular(4, degree=0)
        with pytest.raises(ValueError):
            random_regular(4, degree=4)
