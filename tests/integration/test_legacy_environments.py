"""§3's legacy-environment claim, end to end.

"Alternatively, users may first load plugins that emulate distributed
computing environments (currently PVM, MPI, and JavaSpaces plugins are
available), thereby creating a framework within which their legacy codes
may run."

One DVM; all three emulation plugins loaded side by side; one legacy-style
program per environment, all running concurrently over the same kernels
and the same backplane services — the composition the sentence promises.
"""

import threading

import numpy as np
import pytest

from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hmpi import SUM, MpiPlugin
from repro.plugins.hpvmd import PvmDaemonPlugin
from repro.plugins.hspaces import TupleSpacePlugin


def mpi_stencil(mpi, width):
    """A 1-D Jacobi sweep with halo exchange — the archetypal legacy MPI code."""
    rng = np.random.default_rng(mpi.rank)
    local = rng.random(width)
    for _ in range(3):
        left = mpi.sendrecv(
            (mpi.rank - 1) % mpi.size, local[0],
            source=(mpi.rank + 1) % mpi.size, sendtag=11,
        )
        right = mpi.sendrecv(
            (mpi.rank + 1) % mpi.size, local[-1],
            source=(mpi.rank - 1) % mpi.size, sendtag=12,
        )
        padded = np.concatenate([[right], local, [left]])
        local = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
    return mpi.allreduce(float(local.sum()), op=SUM)


def pvm_worker(pvm, factor):
    message = pvm.recv(tag=1)
    pvm.send(message.data["reply"], 2, message.data["x"] * factor)


@pytest.fixture
def metacomputer():
    net = lan(3)
    with HarnessDvm("legacy", net) as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, PvmDaemonPlugin(group_server="node0"))
            harness.load_plugin(host, MpiPlugin(root_host="node0"))
            harness.load_plugin(host, TupleSpacePlugin(space_host="node0"))
        yield harness


class TestThreeEnvironmentsCoexist:
    def test_all_plugins_loaded_alongside(self, metacomputer):
        for host, kernel in metacomputer.kernels.items():
            assert {"hpvmd", "hmpi", "hspaces"} <= set(kernel.plugins())
            # they all share the same backplane providers
            pvm = kernel.get_service("pvm")
            mpi = kernel.get_service("mpi")
            assert pvm.hmsg is mpi.hmsg

    def test_pvm_program(self, metacomputer):
        pvmd = metacomputer.kernel("node0").get_service("pvm")
        console = pvmd.mytid()
        tids = pvmd.spawn(pvm_worker, count=3, args=(7,))
        for i, tid in enumerate(tids):
            pvmd.send(tid, 1, {"reply": console, "x": i})
        got = sorted(pvmd._recv_for(console, 2, 10.0).data for _ in tids)
        assert got == [0, 7, 14]
        pvmd.wait_all(tids)

    def test_mpi_program(self, metacomputer):
        mpi = metacomputer.kernel("node0").get_service("mpi")
        results = mpi.run(mpi_stencil, world_size=3, args=(32,))
        assert len(set(results)) == 1  # allreduce agreed

    def test_spaces_program(self, metacomputer):
        space0 = metacomputer.kernel("node1").get_service("tuple-space")
        space1 = metacomputer.kernel("node2").get_service("tuple-space")
        space0.write({"legacy": "javaspaces", "n": 1})
        assert space1.take({"legacy": "javaspaces"}, timeout=5)["n"] == 1

    def test_all_three_run_concurrently(self, metacomputer):
        """The claim is coexistence, so run them at the same time."""
        outcomes: dict[str, object] = {}
        errors: list[str] = []

        def run_pvm():
            try:
                pvmd = metacomputer.kernel("node1").get_service("pvm")
                console = pvmd.mytid()
                tids = pvmd.spawn(pvm_worker, count=2, args=(3,))
                for i, tid in enumerate(tids):
                    pvmd.send(tid, 1, {"reply": console, "x": i + 1})
                outcomes["pvm"] = sorted(
                    pvmd._recv_for(console, 2, 15.0).data for _ in tids
                )
                pvmd.wait_all(tids)
            except Exception as exc:
                errors.append(f"pvm: {exc}")

        def run_mpi():
            try:
                mpi = metacomputer.kernel("node0").get_service("mpi")
                outcomes["mpi"] = mpi.run(mpi_stencil, world_size=2, args=(16,))
            except Exception as exc:
                errors.append(f"mpi: {exc}")

        def run_spaces():
            try:
                space = metacomputer.kernel("node2").get_service("tuple-space")
                for n in range(4):
                    space.write({"kind": "concurrent", "n": n})
                outcomes["spaces"] = sorted(
                    space.take({"kind": "concurrent"}, timeout=15)["n"]
                    for _ in range(4)
                )
            except Exception as exc:
                errors.append(f"spaces: {exc}")

        threads = [threading.Thread(target=fn, daemon=True)
                   for fn in (run_pvm, run_mpi, run_spaces)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert outcomes["pvm"] == [3, 6]
        assert len(set(outcomes["mpi"])) == 1
        assert outcomes["spaces"] == [0, 1, 2, 3]
