"""The mailbox broker: named queues with normative delivery semantics.

One :class:`MessageBroker` hosts any number of named mailboxes.  A mailbox
is declared once with a delivery mode and an overflow policy (DESIGN.md
§15 has the full contract table):

===============  ==============================================================
mode             contract
===============  ==============================================================
``first-reader`` work-queue — each message is consumed by exactly one
                 subscriber, exactly once; unacked messages are requeued at
                 the front (flagged ``redelivered``) when their consumer dies
``all-readers``  fan-out — every live subscriber receives its own copy, in
                 publish order per publisher; late subscribers see only
                 messages published after they joined
``tap``          lossy observer — never exerts back-pressure on publishers;
                 any declared overflow policy is coerced to ``drop-oldest``
===============  ==============================================================

Overflow policies bound the undelivered backlog (the ready queue for
``first-reader``; each subscriber's queue for ``all-readers``/``tap``):

``drop-oldest``          evict the queue head and publish an ``mbox.dropped``
                         bus event — lossy but *observable*
``reject``               raise a typed :class:`MailboxFullError`; the message
                         is enqueued nowhere
``block-with-deadline``  the publisher waits for space; on expiry a
                         :class:`HarnessTimeoutError` — the back-pressure mode

Everything here is clock-parametric: against a :class:`WallClock` blocking
operations park on a condition variable, against a :class:`VirtualClock`
they advance simulated time in deterministic slices so scenario runs stay
byte-reproducible.  Broker state (mailboxes, backlogs, unacked in-flight)
pickles without its locks, which is what lets the PR 1 failover path
checkpoint and revive a mailbox service with its messages intact.
"""

from __future__ import annotations

import collections
import itertools
import threading
from typing import Any, Callable

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.util.clock import Clock, WallClock
from repro.util.errors import HarnessTimeoutError, MailboxFullError, MessagingError

__all__ = [
    "DELIVERY_MODES",
    "OVERFLOW_POLICIES",
    "Message",
    "Delivery",
    "Subscription",
    "MailboxStats",
    "MessageBroker",
]

DELIVERY_MODES = ("first-reader", "all-readers", "tap")
OVERFLOW_POLICIES = ("drop-oldest", "reject", "block-with-deadline")

#: Virtual-clock blocking operations poll in slices of this many simulated
#: seconds so a co-scheduled consumer (a ``call_at`` callback) can free space.
_VIRTUAL_SLICE_S = 0.001

_PUBLISHED = _metrics.registry.counter("mbox.published")
_DELIVERED = _metrics.registry.counter("mbox.delivered")
_ACKED = _metrics.registry.counter("mbox.acked")
_DROPPED = _metrics.registry.counter("mbox.dropped")
_REJECTED = _metrics.registry.counter("mbox.rejected")
_REDELIVERED = _metrics.registry.counter("mbox.redelivered")
_DEPTH = _metrics.registry.gauge("mbox.depth")
_DELIVER_LATENCY_US = _metrics.registry.histogram("mbox.deliver_latency_us")


class Message:
    """One published message: broker-assigned sequence number, payload,
    publisher name, trace context bytes, and the publish timestamp."""

    __slots__ = ("seq", "payload", "publisher", "trace", "enqueued_at")

    def __init__(self, seq: int, payload: Any, publisher: str,
                 trace: bytes, enqueued_at: float):
        self.seq = seq
        self.payload = payload
        self.publisher = publisher
        self.trace = trace
        self.enqueued_at = enqueued_at

    def __repr__(self) -> str:
        return f"Message(seq={self.seq}, publisher={self.publisher!r})"

    def __getstate__(self):
        return (self.seq, self.payload, self.publisher, self.trace, self.enqueued_at)

    def __setstate__(self, state):
        self.seq, self.payload, self.publisher, self.trace, self.enqueued_at = state


class Delivery:
    """A message handed to one subscriber, awaiting acknowledgement."""

    __slots__ = ("message", "mailbox", "delivery_id", "redelivered", "attempt")

    def __init__(self, message: Message, mailbox: str, delivery_id: int,
                 redelivered: bool, attempt: int):
        self.message = message
        self.mailbox = mailbox
        self.delivery_id = delivery_id
        self.redelivered = redelivered
        self.attempt = attempt

    @property
    def payload(self) -> Any:
        return self.message.payload

    @property
    def seq(self) -> int:
        return self.message.seq

    def __repr__(self) -> str:
        return (f"Delivery(seq={self.message.seq}, mailbox={self.mailbox!r}, "
                f"redelivered={self.redelivered})")


class MailboxStats:
    """Counters for one mailbox, kept broker-side (picklable)."""

    __slots__ = ("published", "delivered", "acked", "dropped", "rejected",
                 "redelivered", "depth", "high_water", "subscribers")

    def __init__(self):
        self.published = 0
        self.delivered = 0
        self.acked = 0
        self.dropped = 0
        self.rejected = 0
        self.redelivered = 0
        self.depth = 0
        self.high_water = 0
        self.subscribers = 0

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}


class _Subscriber:
    """Broker-side record of one subscription (picklable)."""

    __slots__ = ("sub_id", "name", "queue", "unacked", "attempts",
                 "lease_s", "lease_deadline", "closed")

    def __init__(self, sub_id: int, name: str, lease_s: float | None,
                 lease_deadline: float | None):
        self.sub_id = sub_id
        self.name = name
        # all-readers / tap: the subscriber's private copy queue
        self.queue: collections.deque[Message] = collections.deque()
        # delivery_id -> Message awaiting ack
        self.unacked: dict[int, Message] = {}
        # seq -> delivery attempt count (for redelivery bookkeeping)
        self.attempts: dict[int, int] = {}
        self.lease_s = lease_s
        self.lease_deadline = lease_deadline
        self.closed = False

    def __getstate__(self):
        return (self.sub_id, self.name, tuple(self.queue), dict(self.unacked),
                dict(self.attempts), self.lease_s, self.lease_deadline, self.closed)

    def __setstate__(self, state):
        (self.sub_id, self.name, queue, self.unacked,
         self.attempts, self.lease_s, self.lease_deadline, self.closed) = state
        self.queue = collections.deque(queue)


class _Mailbox:
    """Broker-side state of one named mailbox (picklable)."""

    __slots__ = ("name", "mode", "capacity", "overflow", "ready",
                 "subscribers", "stats", "next_seq", "attempts")

    def __init__(self, name: str, mode: str, capacity: int, overflow: str):
        self.name = name
        self.mode = mode
        self.capacity = capacity
        self.overflow = overflow
        # first-reader: the shared work queue of undelivered messages
        self.ready: collections.deque[Message] = collections.deque()
        self.subscribers: dict[int, _Subscriber] = {}
        self.stats = MailboxStats()
        self.next_seq = 1
        # first-reader: seq -> delivery attempts, mailbox-wide, so the
        # *next* consumer of a requeued message sees ``redelivered=True``
        # even though the first consumer is gone
        self.attempts: dict[int, int] = {}

    def __getstate__(self):
        return (self.name, self.mode, self.capacity, self.overflow,
                tuple(self.ready), self.subscribers, self.stats, self.next_seq,
                dict(self.attempts))

    def __setstate__(self, state):
        (self.name, self.mode, self.capacity, self.overflow,
         ready, self.subscribers, self.stats, self.next_seq, self.attempts) = state
        self.ready = collections.deque(ready)

    def backlog(self) -> int:
        """Undelivered messages: the bound the overflow policy enforces."""
        if self.mode == "first-reader":
            return len(self.ready)
        return max((len(s.queue) for s in self.subscribers.values()), default=0)


class Subscription:
    """Client handle for one subscription.

    ``receive``/``try_receive`` pull deliveries; ``ack`` confirms them.
    ``nack`` requeues a delivery for redelivery (to anyone, for
    ``first-reader``; to this subscriber, for ``all-readers``).  ``close``
    ends the subscription — by default requeueing unacked messages exactly
    as consumer death would.
    """

    def __init__(self, broker: "MessageBroker", mailbox: str, sub_id: int,
                 subscriber: str):
        self._broker = broker
        self.mailbox = mailbox
        self.sub_id = sub_id
        self.subscriber = subscriber

    @property
    def closed(self) -> bool:
        return self._broker._sub_closed(self.mailbox, self.sub_id)

    def receive(self, timeout: float | None = None) -> Delivery:
        """Blocking receive.  ``timeout=0`` is an atomic poll: return a
        delivery if one is queued, raise :class:`HarnessTimeoutError`
        otherwise — never an ambiguous ``None``."""
        return self._broker._receive(self.mailbox, self.sub_id, timeout)

    def try_receive(self) -> Delivery | None:
        """Non-blocking receive; ``None`` when nothing is queued."""
        return self._broker._try_receive(self.mailbox, self.sub_id)

    def ack(self, delivery: Delivery | int) -> None:
        delivery_id = delivery.delivery_id if isinstance(delivery, Delivery) else delivery
        self._broker._ack(self.mailbox, self.sub_id, delivery_id)

    def nack(self, delivery: Delivery | int) -> None:
        delivery_id = delivery.delivery_id if isinstance(delivery, Delivery) else delivery
        self._broker._nack(self.mailbox, self.sub_id, delivery_id)

    def touch(self) -> None:
        """Renew this subscription's lease (sim-binding liveness)."""
        self._broker._touch(self.mailbox, self.sub_id)

    def close(self, requeue: bool = True) -> None:
        self._broker._close_sub(self.mailbox, self.sub_id, requeue=requeue)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MessageBroker:
    """Hosts named mailboxes; all state mutations run under one lock.

    ``events`` (an :class:`~repro.util.events.EventBus`) receives
    ``mbox.dropped`` for every evicted or undeliverable message and
    ``mbox.redelivered`` when a dead consumer's backlog is requeued, so
    chaos checkers can account for every message.  ``on_wakeup`` is an
    optional callback fired (outside the lock) whenever new deliveries
    may be available — the TCP binding uses it to push frames.
    """

    def __init__(self, clock: Clock | None = None, events=None, node: str = ""):
        self._clock: Clock = clock or WallClock()
        self._events = events
        self.node = node
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._mailboxes: dict[str, _Mailbox] = {}
        self._next_sub_id = itertools.count(1)
        self._next_delivery_id = itertools.count(1)
        self.on_wakeup: Callable[[str], None] | None = None

    # -- declaration ---------------------------------------------------------------

    def open(self, name: str, mode: str = "first-reader", capacity: int = 64,
             overflow: str = "reject") -> None:
        """Declare a mailbox (idempotent; conflicting redeclaration is an error)."""
        if mode not in DELIVERY_MODES:
            raise MessagingError(f"unknown delivery mode {mode!r} (want one of {DELIVERY_MODES})")
        if overflow not in OVERFLOW_POLICIES:
            raise MessagingError(
                f"unknown overflow policy {overflow!r} (want one of {OVERFLOW_POLICIES})")
        if capacity < 1:
            raise MessagingError(f"mailbox capacity must be >= 1, got {capacity}")
        if mode == "tap":
            overflow = "drop-oldest"  # taps never exert back-pressure
        with self._lock:
            existing = self._mailboxes.get(name)
            if existing is not None:
                if (existing.mode, existing.capacity, existing.overflow) != (mode, capacity, overflow):
                    raise MessagingError(
                        f"mailbox {name!r} already open as "
                        f"({existing.mode}, cap={existing.capacity}, {existing.overflow})")
                return
            self._mailboxes[name] = _Mailbox(name, mode, capacity, overflow)

    def mailbox_names(self) -> list[str]:
        with self._lock:
            return sorted(self._mailboxes)

    def describe(self, name: str) -> dict:
        box = self._box(name)
        with self._lock:
            return {"name": box.name, "mode": box.mode, "capacity": box.capacity,
                    "overflow": box.overflow}

    def stats(self, name: str) -> MailboxStats:
        box = self._box(name)
        with self._lock:
            box.stats.depth = box.backlog()
            return box.stats

    # -- publish -------------------------------------------------------------------

    def publish(self, name: str, payload: Any, timeout_s: float | None = None,
                publisher: str = "", trace: bytes | None = None) -> int:
        """Publish *payload*; returns the broker-assigned sequence number.

        ``timeout_s`` only matters under ``block-with-deadline`` (default
        there: wait forever on a wall clock — pass a deadline in sims).
        """
        if trace is None and _trace.ENABLED:
            ctx = _trace.current()
            trace = _trace.to_bytes(ctx) if ctx is not None else b""
        wakeup = None
        with self._lock:
            box = self._box_locked(name)
            if box.mode != "tap" and box.overflow == "block-with-deadline":
                self._await_space(box, timeout_s)
            msg = Message(box.next_seq, payload, publisher, trace or b"",
                          self._clock.now())
            box.next_seq += 1
            self._admit(box, msg)
            box.stats.published += 1
            _PUBLISHED.inc()
            box.stats.high_water = max(box.stats.high_water, box.backlog())
            self._cond.notify_all()
            wakeup = self.on_wakeup
        if wakeup is not None:
            wakeup(name)
        return msg.seq

    def _admit(self, box: _Mailbox, msg: Message) -> None:
        """Enqueue under the lock, applying the overflow policy.

        ``block-with-deadline`` has already waited for space by the time we
        get here, but a burst can still race the wakeup — it degrades to
        drop-oldest-with-event rather than exceeding the bound.
        """
        if box.mode == "first-reader":
            if len(box.ready) >= box.capacity:
                if box.overflow == "reject":
                    box.stats.rejected += 1
                    _REJECTED.inc()
                    raise MailboxFullError(box.name, box.capacity)
                dropped = box.ready.popleft()
                self._note_drop(box, dropped, "overflow", "")
            box.ready.append(msg)
            _DEPTH.inc()
            return
        # all-readers / tap: one copy per live subscriber
        live = [s for s in box.subscribers.values() if not s.closed]
        if not live:
            self._note_drop(box, msg, "no_subscribers", "")
            return
        if box.mode == "all-readers" and box.overflow == "reject":
            full = [s for s in live if len(s.queue) >= box.capacity]
            if full:
                box.stats.rejected += 1
                _REJECTED.inc()
                raise MailboxFullError(
                    box.name, box.capacity,
                    detail=f"subscriber {full[0].name or full[0].sub_id} backlogged")
        for sub in live:
            if len(sub.queue) >= box.capacity:
                dropped = sub.queue.popleft()
                self._note_drop(box, dropped, "overflow", sub.name or str(sub.sub_id))
                _DEPTH.inc(-1)
            sub.queue.append(msg)
            _DEPTH.inc()

    def _await_space(self, box: _Mailbox, timeout_s: float | None) -> None:
        """Block (clock-aware) until the backlog is below capacity."""

        def has_space() -> bool:
            if box.mode == "first-reader":
                return len(box.ready) < box.capacity
            live = [s for s in box.subscribers.values() if not s.closed]
            return all(len(s.queue) < box.capacity for s in live)

        self._block_until(has_space, timeout_s,
                          lambda: HarnessTimeoutError(
                              f"publish to {box.name!r} blocked past deadline "
                              f"({timeout_s}s; capacity {box.capacity})"))

    # -- receive / ack -------------------------------------------------------------

    def subscribe(self, name: str, subscriber: str = "",
                  lease_s: float | None = None) -> Subscription:
        with self._lock:
            box = self._box_locked(name)
            sub_id = next(self._next_sub_id)
            deadline = None if lease_s is None else self._clock.now() + lease_s
            box.subscribers[sub_id] = _Subscriber(sub_id, subscriber, lease_s, deadline)
            box.stats.subscribers = len(box.subscribers)
        return Subscription(self, name, sub_id, subscriber)

    def _receive(self, name: str, sub_id: int, timeout: float | None) -> Delivery:
        with self._lock:
            box = self._box_locked(name)
            sub = self._sub_locked(box, sub_id)
            self._renew_lease(sub)
            delivery = self._pop_locked(box, sub)
            if delivery is not None:
                return delivery
            if timeout is not None and timeout <= 0:
                raise HarnessTimeoutError(
                    f"receive on {name!r} timed out after {timeout}s (queue empty)")

            result: list[Delivery] = []

            def ready() -> bool:
                d = self._pop_locked(box, sub)
                if d is None:
                    return False
                result.append(d)
                return True

            self._block_until(ready, timeout,
                              lambda: HarnessTimeoutError(
                                  f"receive on {name!r} timed out after {timeout}s"))
            return result[0]

    def _try_receive(self, name: str, sub_id: int) -> Delivery | None:
        with self._lock:
            box = self._box_locked(name)
            sub = self._sub_locked(box, sub_id)
            self._renew_lease(sub)
            return self._pop_locked(box, sub)

    def _pop_locked(self, box: _Mailbox, sub: _Subscriber) -> Delivery | None:
        if sub.closed:
            raise MessagingError(f"subscription {sub.sub_id} on {box.name!r} is closed")
        source = box.ready if box.mode == "first-reader" else sub.queue
        if not source:
            return None
        msg = source.popleft()
        _DEPTH.inc(-1)
        delivery_id = next(self._next_delivery_id)
        attempt_book = box.attempts if box.mode == "first-reader" else sub.attempts
        attempt = attempt_book.get(msg.seq, 0) + 1
        redelivered = attempt > 1
        if box.mode == "tap":
            # taps auto-ack: an observer can never hold messages back
            box.stats.acked += 1
            _ACKED.inc()
        else:
            sub.unacked[delivery_id] = msg
            attempt_book[msg.seq] = attempt
        box.stats.delivered += 1
        _DELIVERED.inc()
        latency_s = self._clock.now() - msg.enqueued_at
        _DELIVER_LATENCY_US.observe(latency_s * 1e6)
        self._cond.notify_all()  # space freed: wake blocked publishers
        return Delivery(msg, box.name, delivery_id, redelivered, attempt)

    def _ack(self, name: str, sub_id: int, delivery_id: int) -> None:
        with self._lock:
            box = self._box_locked(name)
            sub = self._sub_locked(box, sub_id)
            self._renew_lease(sub)
            msg = sub.unacked.pop(delivery_id, None)
            if msg is None:
                if box.mode == "tap":
                    return  # taps auto-ack; an explicit ack is a no-op
                raise MessagingError(
                    f"unknown delivery {delivery_id} on {name!r} (already acked?)")
            attempt_book = box.attempts if box.mode == "first-reader" else sub.attempts
            attempt_book.pop(msg.seq, None)
            box.stats.acked += 1
            _ACKED.inc()

    def _nack(self, name: str, sub_id: int, delivery_id: int) -> None:
        """Return an unacked delivery to the queue for redelivery."""
        with self._lock:
            box = self._box_locked(name)
            sub = self._sub_locked(box, sub_id)
            msg = sub.unacked.pop(delivery_id, None)
            if msg is None:
                raise MessagingError(f"unknown delivery {delivery_id} on {name!r}")
            self._requeue_locked(box, sub, [msg])
            self._cond.notify_all()

    def _touch(self, name: str, sub_id: int) -> None:
        with self._lock:
            box = self._box_locked(name)
            self._renew_lease(self._sub_locked(box, sub_id))

    def _renew_lease(self, sub: _Subscriber) -> None:
        if sub.lease_s is not None:
            sub.lease_deadline = self._clock.now() + sub.lease_s

    # -- subscriber death / redelivery ---------------------------------------------

    def _close_sub(self, name: str, sub_id: int, requeue: bool = True) -> None:
        wakeup = None
        with self._lock:
            box = self._mailboxes.get(name)
            if box is None:
                return
            sub = box.subscribers.pop(sub_id, None)
            if sub is None or sub.closed:
                return
            sub.closed = True
            box.stats.subscribers = len(box.subscribers)
            unacked = sorted(sub.unacked.values(), key=lambda m: m.seq)
            undelivered = list(sub.queue)
            _DEPTH.inc(-len(sub.queue))
            sub.unacked.clear()
            sub.queue.clear()
            if requeue:
                self._requeue_locked(box, sub, unacked)
            else:
                for msg in unacked:
                    self._note_drop(box, msg, "discarded_on_close",
                                    sub.name or str(sub.sub_id))
            # an all-readers/tap subscriber's private copies die with it;
            # account for each so no loss is silent
            for msg in undelivered:
                self._note_drop(box, msg, "subscriber_dead",
                                sub.name or str(sub.sub_id))
            self._cond.notify_all()
            wakeup = self.on_wakeup
        if wakeup is not None:
            wakeup(name)

    def _requeue_locked(self, box: _Mailbox, sub: _Subscriber,
                        messages: list[Message]) -> None:
        """Requeue unacked *messages* ahead of the backlog, oldest first.

        ``first-reader`` requeues into the shared work queue — the next
        consumer (any consumer) sees them, flagged ``redelivered``.  For
        ``all-readers`` the copies belong to this subscriber alone, so a
        dead subscriber's unacked copies are dropped-with-event instead
        (every other subscriber has its own copy).  Taps hold nothing.
        """
        if not messages:
            return
        if box.mode == "first-reader":
            box.ready.extendleft(reversed(messages))
            _DEPTH.inc(len(messages))
            box.stats.redelivered += len(messages)
            _REDELIVERED.inc(len(messages))
            if self._events is not None:
                self._events.publish(
                    "mbox.redelivered", source=f"mbox:{self.node}",
                    payload={"mailbox": box.name,
                             "seqs": [m.seq for m in messages],
                             "subscriber": sub.name or str(sub.sub_id)})
        elif box.mode == "all-readers" and not sub.closed:
            sub.queue.extendleft(reversed(messages))
            _DEPTH.inc(len(messages))
            box.stats.redelivered += len(messages)
            _REDELIVERED.inc(len(messages))
        else:
            for msg in messages:
                self._note_drop(box, msg, "subscriber_dead",
                                sub.name or str(sub.sub_id))

    def sweep_leases(self) -> list[tuple[str, int]]:
        """Close every subscription whose lease expired; returns the victims.

        The sim binding's liveness story: consumers renew by receiving or
        acking, a crashed consumer stops renewing, and the next sweep
        requeues its unacked messages for the survivors.
        """
        now = self._clock.now()
        with self._lock:
            expired = [(box.name, sub.sub_id)
                       for box in self._mailboxes.values()
                       for sub in box.subscribers.values()
                       if sub.lease_deadline is not None and now >= sub.lease_deadline]
        for name, sub_id in expired:
            self._close_sub(name, sub_id, requeue=True)
        return expired

    def _sub_closed(self, name: str, sub_id: int) -> bool:
        with self._lock:
            box = self._mailboxes.get(name)
            if box is None:
                return True
            sub = box.subscribers.get(sub_id)
            return sub is None or sub.closed

    # -- clock-aware blocking ------------------------------------------------------

    def _block_until(self, predicate: Callable[[], bool],
                     timeout: float | None,
                     make_timeout: Callable[[], HarnessTimeoutError]) -> None:
        """Wait (under the lock) until *predicate* is true.

        Wall clocks park on the condition variable; virtual clocks advance
        simulated time in fixed slices so ``call_at``-scheduled consumers
        can run and the expiry point is deterministic.
        """
        if predicate():
            return
        virtual = hasattr(self._clock, "advance")
        if virtual:
            deadline = None if timeout is None else self._clock.now() + timeout
            while not predicate():
                if deadline is not None and self._clock.now() >= deadline:
                    raise make_timeout()
                step = _VIRTUAL_SLICE_S
                if deadline is not None:
                    step = min(step, deadline - self._clock.now())
                self._clock.sleep(step)
            return
        deadline = None if timeout is None else self._clock.now() + timeout
        while not predicate():
            remaining = None
            if deadline is not None:
                remaining = deadline - self._clock.now()
                if remaining <= 0:
                    raise make_timeout()
            self._cond.wait(remaining)

    # -- drops ---------------------------------------------------------------------

    def _note_drop(self, box: _Mailbox, msg: Message, reason: str,
                   subscriber: str) -> None:
        box.stats.dropped += 1
        _DROPPED.inc()
        if self._events is not None:
            self._events.publish(
                "mbox.dropped", source=f"mbox:{self.node}",
                payload={"mailbox": box.name, "seq": msg.seq, "reason": reason,
                         "subscriber": subscriber, "publisher": msg.publisher})

    # -- lookup helpers ------------------------------------------------------------

    def _box(self, name: str) -> _Mailbox:
        with self._lock:
            return self._box_locked(name)

    def _box_locked(self, name: str) -> _Mailbox:
        box = self._mailboxes.get(name)
        if box is None:
            raise MessagingError(f"mailbox {name!r} is not open")
        return box

    def _sub_locked(self, box: _Mailbox, sub_id: int) -> _Subscriber:
        sub = box.subscribers.get(sub_id)
        if sub is None:
            raise MessagingError(
                f"no subscription {sub_id} on mailbox {box.name!r}")
        return sub

    # -- durability ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable state: mailbox declarations, backlogs, unacked in-flight."""
        with self._lock:
            return {"node": self.node, "mailboxes": dict(self._mailboxes)}

    def restore(self, state: dict) -> None:
        """Replace broker state from :meth:`snapshot`.

        Subscriptions do not survive a failover — their owners must
        resubscribe — so every restored subscriber is closed with its
        unacked messages requeued: the durable-redelivery contract.
        """
        with self._lock:
            self.node = state.get("node", self.node)
            self._mailboxes = dict(state["mailboxes"])
            doomed = [(box.name, sub_id)
                      for box in self._mailboxes.values()
                      for sub_id in list(box.subscribers)]
        for name, sub_id in doomed:
            self._close_sub(name, sub_id, requeue=True)
        with self._lock:
            top = max((box.next_seq for box in self._mailboxes.values()), default=1)
            self._next_sub_id = itertools.count(top + 1)
            self._next_delivery_id = itertools.count(top + 1)
            self._cond.notify_all()
