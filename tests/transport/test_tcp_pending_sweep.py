"""The pending-reply deadline sweep: no leaked correlation ids, no hangs.

A peer that dies *without* closing its socket (kill -9, cable pull) leaves
the connection open and never answers.  Before the sweep, a caller with
``timeout=None`` waited forever and its correlation-id entry was never
removed — the classic silent-server leak.  These tests stand up servers
that go silent mid-flight and assert callers get a typed
:class:`HarnessTimeoutError` within the sweep budget, and that the pending
table ends empty.
"""

import socket
import threading
import time

import pytest

from repro.transport.base import TransportMessage
from repro.transport.tcp import TcpListener, TcpTransport
from repro.util.errors import HarnessTimeoutError

MSG = TransportMessage("text/plain", b"ping")


class _BlackholeServer:
    """Accepts connections and reads frames but never ever replies.

    Models a peer whose process is gone but whose socket the kernel keeps
    half-open: requests are consumed, responses never come, FIN never sent.
    """

    def __init__(self):
        self._srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._srv.bind(("127.0.0.1", 0))
        self._srv.listen(8)
        self.port = self._srv.getsockname()[1]
        self._conns: list[socket.socket] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._srv.accept()
            except OSError:
                return
            self._conns.append(conn)
            threading.Thread(target=self._drain, args=(conn,), daemon=True).start()

    def _drain(self, conn: socket.socket) -> None:
        try:
            while conn.recv(65536):
                pass
        except OSError:
            pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._srv.close()
        except OSError:
            pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


@pytest.fixture
def blackhole():
    server = _BlackholeServer()
    yield server
    server.close()


class TestPendingSweep:
    def test_silent_server_times_out_untimed_caller(self, blackhole):
        """timeout=None against a dead-silent peer: swept, not hung."""
        transport = TcpTransport(
            f"tcp://127.0.0.1:{blackhole.port}", pending_max_s=0.3
        )
        try:
            started = time.monotonic()
            with pytest.raises(HarnessTimeoutError):
                transport.request(MSG, timeout=None)
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"sweep took {elapsed:.1f}s, budget was 0.3s"
            # the leak itself: the correlation-id entry must be gone
            assert all(c.in_flight == 0 for c in transport._channels)
        finally:
            transport.close()

    def test_concurrent_untimed_callers_all_swept(self, blackhole):
        """Followers parked on the condition variable are woken too."""
        transport = TcpTransport(
            f"tcp://127.0.0.1:{blackhole.port}", pending_max_s=0.3, pool_size=1
        )
        results: list[BaseException | str] = []

        def caller() -> None:
            try:
                transport.request(MSG, timeout=None)
                results.append("no error")
            except BaseException as exc:  # noqa: BLE001 — collected for assert
                results.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(4)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads), "caller hung"
            assert len(results) == 4
            assert all(isinstance(r, HarnessTimeoutError) for r in results), results
            assert all(c.in_flight == 0 for c in transport._channels)
        finally:
            transport.close()

    def test_server_killed_mid_flight(self):
        """A real server that stops answering after its first reply.

        The handler blocks forever on the second request; the caller's
        pending entry must be swept even though the connection stays up.
        """
        answered = threading.Event()
        block = threading.Event()

        def handler(message: TransportMessage) -> TransportMessage:
            if answered.is_set():
                block.wait(30.0)  # the "killed" server: alive socket, no answer
            answered.set()
            return TransportMessage("text/plain", b"pong")

        listener = TcpListener(handler)
        transport = TcpTransport(
            f"tcp://127.0.0.1:{listener.port}", pending_max_s=0.3, pool_size=1
        )
        try:
            reply = transport.request(MSG, timeout=5.0)
            assert bytes(reply.payload) == b"pong"
            with pytest.raises(HarnessTimeoutError):
                transport.request(MSG, timeout=None)
            assert all(c.in_flight == 0 for c in transport._channels)
        finally:
            block.set()
            transport.close()
            listener.close()

    def test_sweep_disabled_preserves_caller_timeout_path(self, blackhole):
        """pending_max_s=0 turns the sweep off; explicit timeouts still work."""
        transport = TcpTransport(
            f"tcp://127.0.0.1:{blackhole.port}", pending_max_s=0.0
        )
        try:
            with pytest.raises(HarnessTimeoutError):
                transport.request(MSG, timeout=0.2)
            assert all(c.in_flight == 0 for c in transport._channels)
        finally:
            transport.close()

    def test_sweep_spares_answered_requests(self):
        """A healthy round trip under a tight sweep budget is untouched."""

        def handler(message: TransportMessage) -> TransportMessage:
            return TransportMessage("text/plain", b"ok:" + bytes(message.payload))

        listener = TcpListener(handler)
        transport = TcpTransport(
            f"tcp://127.0.0.1:{listener.port}", pending_max_s=0.5
        )
        try:
            for i in range(10):
                reply = transport.request(
                    TransportMessage("text/plain", b"%d" % i), timeout=None
                )
                assert bytes(reply.payload) == b"ok:%d" % i
        finally:
            transport.close()
            listener.close()
