"""Observability overhead — tracing on vs off, same wire, same service.

Every instrumented hot path is gated on one module attribute
(``repro.obs.trace.ENABLED``), so the disabled cost is a single dict lookup
per call.  This experiment measures the *enabled* cost: full trace
propagation (context create/child, wire encode/decode on every hop) plus
four histogram observations and a recorded span per call, A/B'd against
the identical stack with tracing off.

Shapes match the repo's standing experiments:

* **C1 shape** — SOAP over loopback HTTP, 16 384 float64 elements in
  call and reply (the C1 encoding experiment's scientific-array row);
* **C9 shape** — XDR over multiplexed TCP, 2 ms GIL-releasing service
  time (the C9b concurrency experiment's per-call shape);
* **micro** — a bare scalar echo over XDR/TCP.  *Informational only*:
  the fixed per-call tracing cost against the smallest possible call is
  the worst case by construction and is recorded, not gated.

Methodology: individual *calls* run in (off, on) pairs — not round-grained
arms, because loopback p50 drifts by hundreds of microseconds over
seconds, swamping any coarse A/B.  Pair order is counterbalanced
(odd-numbered pairs run traced-first) to cancel positional bias, the
overhead estimate is the **median of per-pair deltas** over the median
untraced latency (the pair delta cancels drift that a ratio of independent
medians cannot), and the gate reads the median across rounds so one noisy
round cannot flip it.  Caveat recorded in EXPERIMENTS.md: on a single-CPU
host every instrumented instruction is serial with the caller and runs
cache-cold after the service sleep, so these numbers are a *ceiling* on
the overhead a multi-core deployment would see.

Acceptance (asserted in ``test_report_obs_overhead``): tracing enabled
costs **<= 3%** p50 on the C1 and C9 shapes.

Runs under pytest (``pytest benchmarks/bench_obs_overhead.py``) and as a
script (``python benchmarks/bench_obs_overhead.py [--quick]`` — the CI
smoke).  Writes ``BENCH_obs.json`` next to this file.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.encoding.registry import default_registry
from repro.obs import metrics, trace
from repro.transport.http import HttpTransport
from repro.transport.tcp import TcpTransport

ROUNDS = 6
QUICK_ROUNDS = 3

#: (off, on) pairs per round, per shape.  Both gated shapes ride ~70-120 us
#: budgets while their per-pair deltas swing by hundreds of microseconds
#: (C1 is 4 ms of allocation-heavy CPU per call; C9 wakes cache-cold after
#: its 2 ms sleep), so the medians need deep sampling to converge.
PAIRS = {"c1": 100, "c9": 150, "micro": 250}
QUICK_PAIRS = {"c1": 30, "c9": 60, "micro": 80}

ELEMENTS = 16384  # C1 shape: float64 elements in call and reply
SERVICE_TIME_S = 0.002  # C9 shape: GIL-releasing service time

OVERHEAD_BUDGET_PCT = 3.0

RESULT_PATH = Path(__file__).with_name("BENCH_obs.json")


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


class ShapeService:
    def echo(self, text: str) -> str:
        return text

    def roundtrip(self, values: list) -> list:
        return values

    def work(self, tag: str) -> str:
        time.sleep(SERVICE_TIME_S)  # releases the GIL, like real I/O-bound work
        return tag


def _round_stats_us(call, pairs: int) -> tuple[float, float]:
    """One round: *pairs* counterbalanced (untraced, traced) call pairs.

    Returns (median per-pair delta, median untraced latency) in
    microseconds.  Odd pairs run traced-first so a systematic cost of
    "being the second call" cancels instead of biasing one arm.
    """
    perf = time.perf_counter
    deltas, offs = [], []
    for i in range(pairs):
        traced_first = bool(i & 1)
        trace.enable(traced_first)
        t0 = perf()
        call()
        first = perf() - t0
        trace.enable(not traced_first)
        t0 = perf()
        call()
        second = perf() - t0
        on, off = (first, second) if traced_first else (second, first)
        deltas.append(on - off)
        offs.append(off)
    trace.enable(False)
    return statistics.median(deltas) * 1e6, statistics.median(offs) * 1e6


def _measure_shape(call, rounds: int, pairs: int) -> dict:
    """Pair-interleaved A/B against one live call shape."""
    trace.enable(False)
    round_deltas, round_offs = [], []
    try:
        _round_stats_us(call, max(pairs // 4, 5))  # warm-up: connections, plans
        for _ in range(rounds):
            delta, off = _round_stats_us(call, pairs)
            round_deltas.append(delta)
            round_offs.append(off)
            trace.flush()  # drain async bookkeeping between rounds
    finally:
        trace.enable(False)
        trace.flush()
    delta_p50 = statistics.median(round_deltas)
    off_p50 = statistics.median(round_offs)
    return {
        "rounds": rounds,
        "pairs_per_round": pairs,
        "off_p50_us": round(off_p50, 2),
        "on_delta_p50_us": round(delta_p50, 2),
        "overhead_pct": round(delta_p50 / off_p50 * 100.0, 2),
        "round_delta_us": [round(d, 2) for d in round_deltas],
        "round_off_us": [round(m, 2) for m in round_offs],
    }


def run_sweep(rounds: int = ROUNDS, pairs: dict | None = None) -> dict:
    """A/B all three shapes; returns the machine-readable result document."""
    pairs = pairs or PAIRS
    dispatcher = ObjectDispatcher()
    dispatcher.register("shape", ShapeService())
    server = BindingServer(dispatcher)
    http = server.expose_soap_http()
    tcp = server.expose_xdr_tcp()
    operations = ("echo", "roundtrip", "work")
    values = [float(i) for i in range(ELEMENTS)]
    shapes = {}
    try:
        with TransportStub(
            operations, "shape", default_registry.get("text/xml"),
            HttpTransport(http.url), "soap",
        ) as soap_stub:
            shapes["c1_soap_http_16kxf64"] = _measure_shape(
                lambda: soap_stub.roundtrip(values), rounds, pairs["c1"]
            )
        with TransportStub(
            operations, "shape", default_registry.get("application/x-xdr"),
            TcpTransport(tcp.url), "xdr",
        ) as xdr_stub:
            shapes["c9_xdr_tcp_2ms"] = _measure_shape(
                lambda: xdr_stub.work("xyzzy"), rounds, pairs["c9"]
            )
            micro = _measure_shape(
                lambda: xdr_stub.echo("xyzzy"), rounds, pairs["micro"]
            )
            micro["informational"] = True  # worst case by construction, not gated
            shapes["micro_xdr_tcp_echo"] = micro
    finally:
        server.close()
        trace.flush()
        metrics.registry.reset()
        trace.recorder.clear()
    return {
        "experiment": "observability overhead (tracing on vs off)",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "gated_shapes": ["c1_soap_http_16kxf64", "c9_xdr_tcp_2ms"],
        "disabled_cost": "one module attribute read per instrumented site",
        "shapes": shapes,
    }


def _report(result: dict) -> None:
    rows = [
        [
            name,
            f"{shape['off_p50_us']:.1f}",
            f"{shape['on_delta_p50_us']:+.1f}",
            f"{shape['overhead_pct']:+.2f}%",
            "no (info)" if shape.get("informational") else "<= 3%",
        ]
        for name, shape in result["shapes"].items()
    ]
    _print_table(
        "observability overhead (p50 per call)",
        ["shape", "off p50 us", "traced delta us", "overhead", "gated"],
        rows,
    )


def _write_json(result: dict) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


def _gate(result: dict, budget_pct: float = OVERHEAD_BUDGET_PCT) -> list[str]:
    """Budget violations on the gated shapes (empty means pass)."""
    failures = []
    for name in result["gated_shapes"]:
        overhead = result["shapes"][name]["overhead_pct"]
        if overhead > budget_pct:
            failures.append(
                f"{name}: tracing costs {overhead:+.2f}% p50 "
                f"(budget {budget_pct}%)"
            )
    return failures


# -- pytest entry point ----------------------------------------------------------------


def test_report_obs_overhead():
    result = run_sweep()
    _report(result)
    _write_json(result)
    assert not _gate(result), _gate(result)


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: fewer rounds and calls (used by CI)",
    )
    options = parser.parse_args(argv)

    rounds = QUICK_ROUNDS if options.quick else ROUNDS
    pairs = QUICK_PAIRS if options.quick else PAIRS
    result = run_sweep(rounds, pairs)
    _report(result)
    _write_json(result)

    # quick mode is a smoke (does the A/B run, is the overhead sane?) and
    # samples too shallowly to hold the experiment budget on a noisy shared
    # runner — it gates at twice the budget; full runs enforce it exactly
    budget = OVERHEAD_BUDGET_PCT * 2 if options.quick else OVERHEAD_BUDGET_PCT
    failures = _gate(result, budget)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
