"""Server-side dispatch: operation guarding and target routing."""

import pytest

from repro.bindings.dispatcher import ObjectDispatcher, exposed_operations
from repro.plugins.services import CounterService
from repro.util.errors import BindingError, ServiceNotFoundError


class Sample:
    def visible(self):
        return "ok"

    def _hidden(self):
        return "secret"

    attribute = 42


class TestExposedOperations:
    def test_public_methods_only(self):
        ops = exposed_operations(Sample())
        assert "visible" in ops
        assert "_hidden" not in ops
        assert "attribute" not in ops

    def test_counter_service(self):
        assert set(exposed_operations(CounterService())) == {"increment", "value"}


class TestDispatch:
    def test_invoke(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("t1", Sample())
        assert dispatcher.invoke("t1", "visible", ()) == "ok"

    def test_unknown_target(self):
        dispatcher = ObjectDispatcher()
        with pytest.raises(ServiceNotFoundError):
            dispatcher.invoke("ghost", "visible", ())

    def test_hidden_operation_blocked(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("t1", Sample())
        with pytest.raises(BindingError):
            dispatcher.invoke("t1", "_hidden", ())

    def test_restricted_operations(self):
        dispatcher = ObjectDispatcher()
        counter = CounterService()
        dispatcher.register("c", counter, operations=["value"])
        assert dispatcher.invoke("c", "value", ()) == 0
        with pytest.raises(BindingError):
            dispatcher.invoke("c", "increment", (1,))

    def test_duplicate_target_rejected(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("t", Sample())
        with pytest.raises(BindingError):
            dispatcher.register("t", Sample())

    def test_unregister(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("t", Sample())
        dispatcher.unregister("t")
        with pytest.raises(ServiceNotFoundError):
            dispatcher.invoke("t", "visible", ())
        dispatcher.unregister("t")  # idempotent

    def test_lookup_returns_instance(self):
        dispatcher = ObjectDispatcher()
        counter = CounterService()
        dispatcher.register("c", counter)
        assert dispatcher.lookup("c") is counter

    def test_targets_sorted(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("b", Sample())
        dispatcher.register("a", Sample())
        assert dispatcher.targets() == ["a", "b"]

    def test_args_passed_through(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("c", CounterService())
        assert dispatcher.invoke("c", "increment", (5,)) == 5
        assert dispatcher.invoke("c", "increment", (3,)) == 8
