"""Property tests: the (lamport, origin) LWW merge is a join-semilattice.

The gossip digests rely on merge being commutative, idempotent, and
convergent — any two replicas that absorb the same entry set in any order
and any multiplicity end with identical stores.  Entries are generated
with unique ``(lamport, origin)`` versions (the atomic clock guarantees
that in the real system) and values derived from the version, mirroring
the invariant that a version names one immutable write.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.dvm.state import StateEntry

KEYS = ["a", "b", "c"]
ORIGINS = ["n0", "n1", "n2", "n3"]


def _entry(key: str, lamport: int, origin: str) -> StateEntry:
    return StateEntry(key, f"{lamport}@{origin}", lamport, origin)


entry_sets = st.lists(
    st.tuples(
        st.sampled_from(KEYS),
        st.integers(min_value=1, max_value=40),
        st.sampled_from(ORIGINS),
    ),
    max_size=24,
    unique_by=lambda t: (t[1], t[2]),  # one write per (lamport, origin)
).map(lambda triples: [_entry(*t) for t in triples])


def merge_all(entries) -> dict[str, StateEntry]:
    store: dict[str, StateEntry] = {}
    for entry in entries:
        if entry.newer_than(store.get(entry.key)):
            store[entry.key] = entry
    return store


@settings(max_examples=200, deadline=None)
@given(entries=entry_sets, data=st.data())
def test_merge_is_order_independent(entries, data):
    shuffled = data.draw(st.permutations(entries))
    assert merge_all(entries) == merge_all(shuffled)


@settings(max_examples=200, deadline=None)
@given(entries=entry_sets)
def test_merge_is_idempotent(entries):
    once = merge_all(entries)
    twice = merge_all(entries + entries)
    assert once == twice


@settings(max_examples=200, deadline=None)
@given(entries=entry_sets, data=st.data())
def test_replicas_converge_from_any_interleaving(entries, data):
    # replica A and replica B each absorb the same writes in their own
    # order, with arbitrary re-deliveries — the stores must be identical
    order_a = data.draw(st.permutations(entries))
    order_b = data.draw(st.permutations(entries))
    redelivered = data.draw(
        st.lists(st.sampled_from(entries), max_size=10) if entries else st.just([])
    )
    replica_a = merge_all(list(order_a) + redelivered)
    replica_b = merge_all(list(order_b))
    assert replica_a == replica_b


@settings(max_examples=200, deadline=None)
@given(entries=entry_sets)
def test_winner_has_the_highest_version_per_key(entries):
    store = merge_all(entries)
    for key, winner in store.items():
        contenders = [e for e in entries if e.key == key]
        assert (winner.lamport, winner.origin) == max(
            (e.lamport, e.origin) for e in contenders
        )


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # writer index
            st.sampled_from(KEYS),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=12,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_gossip_fleet_snapshots_agree(writes, seed):
    """End to end: random writes through GossipState converge identically."""
    from repro.dvm.gossip import GossipState
    from repro.netsim.topology import lan

    names = [f"node{i}" for i in range(4)]
    protocol = GossipState(
        lan(4, seed=seed), members=names, fanout=2, seed=seed, pull_on_miss=False
    )
    for writer, key, value in writes:
        protocol.update(names[writer], f"component/{key}", value)
    protocol.run_until_converged(max_rounds=64)
    snapshots = [protocol.snapshot(name) for name in names]
    assert all(snap == snapshots[0] for snap in snapshots)
