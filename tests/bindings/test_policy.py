"""Invocation policies: backoff determinism, breaker transitions, retries."""

import random

import pytest

from repro.bindings.policy import (
    DEFAULT_POLICY,
    BreakerRegistry,
    CircuitBreaker,
    InvocationPolicy,
    PolicyExecutor,
    backoff_schedule,
    retry_safe,
)
from repro.netsim.fabric import HostDownError, MessageDroppedError
from repro.util.clock import VirtualClock
from repro.util.errors import CircuitOpenError, HarnessTimeoutError
from repro.util.events import EventBus


class TestInvocationPolicy:
    def test_defaults_are_sane(self):
        assert DEFAULT_POLICY.max_attempts == 3
        assert not DEFAULT_POLICY.idempotent

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            InvocationPolicy(**kwargs)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = InvocationPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_max_s=0.5, jitter=0.0
        )
        assert backoff_schedule(policy, 4) == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_backoff_deterministic_under_seeded_rng(self):
        policy = InvocationPolicy(jitter=0.2)
        a = backoff_schedule(policy, 5, random.Random(42))
        b = backoff_schedule(policy, 5, random.Random(42))
        assert a == b
        # jitter widens, never shrinks, the base step
        base = backoff_schedule(policy, 5, None)
        assert all(x >= y for x, y in zip(a, base))

    def test_different_seeds_differ(self):
        policy = InvocationPolicy(jitter=0.5)
        assert backoff_schedule(policy, 5, random.Random(1)) != backoff_schedule(
            policy, 5, random.Random(2)
        )


class TestRetrySafe:
    def test_request_phase_drop_always_safe(self):
        exc = MessageDroppedError("a", "b", "request")
        assert retry_safe(exc, InvocationPolicy(idempotent=False))

    def test_response_phase_drop_needs_idempotency(self):
        exc = MessageDroppedError("a", "b", "response")
        assert not retry_safe(exc, InvocationPolicy(idempotent=False))
        assert retry_safe(exc, InvocationPolicy(idempotent=True))

    def test_host_down_always_safe(self):
        assert retry_safe(HostDownError("b"), InvocationPolicy(idempotent=False))

    def test_timeout_needs_idempotency(self):
        exc = HarnessTimeoutError("late")
        assert not retry_safe(exc, InvocationPolicy(idempotent=False))
        assert retry_safe(exc, InvocationPolicy(idempotent=True))

    def test_other_errors_never_retried(self):
        assert not retry_safe(ValueError("app bug"), InvocationPolicy(idempotent=True))


class TestCircuitBreaker:
    def test_trips_open_after_threshold(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third failure trips it
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0, clock=VirtualClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_single_probe(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller keeps failing fast

    def test_probe_success_recloses(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_success()  # True: this success re-closed it
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(threshold=5, cooldown_s=5.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # a single half-open failure, not five
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_zero_threshold_never_trips(self):
        breaker = CircuitBreaker(threshold=0, cooldown_s=1.0, clock=VirtualClock())
        for _ in range(100):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_registry_shares_per_target(self):
        registry = BreakerRegistry(clock=VirtualClock())
        policy = InvocationPolicy()
        assert registry.get("sim://a/x", policy) is registry.get("sim://a/x", policy)
        assert registry.get("sim://a/x", policy) is not registry.get("sim://b/x", policy)

    def test_registry_returns_none_when_breaking_disabled(self):
        registry = BreakerRegistry()
        assert registry.get("t", InvocationPolicy(breaker_threshold=0)) is None


class _Flaky:
    """Fails ``failures`` times with ``exc_factory()``, then succeeds."""

    def __init__(self, failures: int, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = 0
        self.timeouts = []

    def __call__(self, request, timeout):
        self.calls += 1
        self.timeouts.append(timeout)
        if self.calls <= self.failures:
            raise self.exc_factory()
        return ("ok", request)


def _executor(policy, clock=None, events=None, breaker=None, seed=7):
    return PolicyExecutor(
        policy,
        "sim://b/svc",
        breaker=breaker,
        events=events,
        clock=clock or VirtualClock(),
        rng=random.Random(seed),
    )


class TestPolicyExecutor:
    def test_fast_path_passes_through(self):
        executor = _executor(InvocationPolicy())
        flaky = _Flaky(0, None)
        assert executor.call(flaky, "req", "op", base_timeout=1.5) == ("ok", "req")
        assert flaky.calls == 1
        assert flaky.timeouts == [1.5]

    def test_retries_request_phase_drops(self):
        executor = _executor(InvocationPolicy(max_attempts=3, jitter=0.0))
        flaky = _Flaky(2, lambda: MessageDroppedError("a", "b", "request"))
        assert executor.call(flaky, "req", "op")[0] == "ok"
        assert flaky.calls == 3

    def test_gives_up_after_max_attempts(self):
        executor = _executor(InvocationPolicy(max_attempts=2, jitter=0.0))
        flaky = _Flaky(5, lambda: MessageDroppedError("a", "b", "request"))
        with pytest.raises(MessageDroppedError):
            executor.call(flaky, "req", "op")
        assert flaky.calls == 2

    def test_non_idempotent_timeout_not_retried(self):
        executor = _executor(InvocationPolicy(max_attempts=3, idempotent=False))
        flaky = _Flaky(1, lambda: HarnessTimeoutError("late"))
        with pytest.raises(HarnessTimeoutError):
            executor.call(flaky, "req", "op")
        assert flaky.calls == 1

    def test_idempotent_timeout_retried(self):
        executor = _executor(InvocationPolicy(max_attempts=3, idempotent=True, jitter=0.0))
        flaky = _Flaky(1, lambda: HarnessTimeoutError("late"))
        assert executor.call(flaky, "req", "op")[0] == "ok"
        assert flaky.calls == 2

    def test_application_errors_propagate_unretried(self):
        executor = _executor(InvocationPolicy(max_attempts=5))
        flaky = _Flaky(1, lambda: ValueError("app bug"))
        with pytest.raises(ValueError):
            executor.call(flaky, "req", "op")
        assert flaky.calls == 1

    def test_backoff_consumes_virtual_time_deterministically(self):
        clock = VirtualClock()
        policy = InvocationPolicy(
            max_attempts=3, backoff_base_s=0.1, backoff_multiplier=2.0, jitter=0.0
        )
        executor = _executor(policy, clock=clock)
        flaky = _Flaky(2, lambda: HostDownError("b"))
        executor.call(flaky, "req", "op")
        assert clock.now() == pytest.approx(0.1 + 0.2)

    def test_deadline_carves_attempt_timeouts(self):
        clock = VirtualClock()
        policy = InvocationPolicy(
            max_attempts=5, deadline_s=1.0, backoff_base_s=0.4, jitter=0.0
        )
        executor = _executor(policy, clock=clock)
        flaky = _Flaky(10, lambda: HostDownError("b"))
        with pytest.raises(HostDownError):
            executor.call(flaky, "req", "op", base_timeout=30.0)
        # every per-attempt timeout fits inside what remained of the deadline
        assert all(t <= 1.0 for t in flaky.timeouts)
        assert flaky.timeouts[0] == pytest.approx(1.0)
        assert flaky.timeouts[-1] < flaky.timeouts[0]
        # and retrying stopped once the deadline was exhausted
        assert clock.now() <= 1.0 + 1e-9

    def test_breaker_opens_and_fails_fast(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0, clock=clock)
        executor = _executor(
            InvocationPolicy(max_attempts=1, breaker_threshold=2), clock=clock,
            breaker=breaker,
        )
        flaky = _Flaky(99, lambda: HostDownError("b"))
        for _ in range(2):
            with pytest.raises(HostDownError):
                executor.call(flaky, "req", "op")
        with pytest.raises(CircuitOpenError):
            executor.call(flaky, "req", "op")
        assert flaky.calls == 2  # the third call never reached the transport

    def test_events_published(self):
        clock = VirtualClock()
        events = EventBus()
        seen = []
        events.subscribe("invoke", lambda e: seen.append(e.topic))
        # cooldown shorter than the backoff: by the time the retry fires the
        # breaker is half-open, the probe succeeds, and the circuit re-closes
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.01, clock=clock)
        executor = _executor(
            InvocationPolicy(
                max_attempts=2, jitter=0.0, backoff_base_s=0.05, breaker_threshold=1
            ),
            clock=clock, events=events, breaker=breaker,
        )
        flaky = _Flaky(1, lambda: HostDownError("b"))
        executor.call(flaky, "req", "op")
        assert "invoke.breaker.open" in seen
        assert "invoke.retry" in seen
        assert "invoke.breaker.close" in seen
