"""The flight recorder: a bounded ring of recent observability moments.

When something breaks — a circuit breaker opens, a node is evicted, a
scenario invariant fails — the metrics say *that* it broke and the trace
recorder says *where one call went*, but neither says what the node was
doing in the seconds before.  The :class:`FlightRecorder` does: a
fixed-size, lock-cheap ring (``deque.append`` with a maxlen is atomic
under the GIL, same discipline as :class:`~repro.obs.trace.SpanRecorder`)
holding the most recent spans, metric deltas, and lifecycle events, dumped
to ``flight-<node>.jsonl`` the moment a trigger fires.

Entries are ``{"t": …, "kind": "event" | "span" | "metrics" | "note",
"data": …}``.  Feeds:

* :meth:`attach` taps an :class:`~repro.util.events.EventBus` (every
  published event, cheap because scenario buses are not hot paths);
* :meth:`tap_spans` installs itself as a
  :class:`~repro.obs.trace.SpanRecorder` tee;
* :meth:`record_metrics` takes per-interval counter deltas (the scenario
  runner samples a few key counters each tick).

Dump triggers are the caller's policy; :meth:`should_dump` provides the
debounce (one dump per trigger key per recorder lifetime) so an
oscillating breaker cannot flood the artifact directory.
"""

from __future__ import annotations

import json
import re
from collections import deque
from pathlib import Path
from typing import Callable, Mapping

from repro.util.clock import WallClock

__all__ = ["FlightRecorder", "dump_label"]

_LABEL_RE = re.compile(r"[^a-zA-Z0-9._-]+")


def dump_label(text: str) -> str:
    """A filename-safe label for a dump trigger subject.

    Strips per-run volatile instance tags (``counter#c-3`` → ``counter``)
    so the label — which lands in deterministic audit events — is stable
    across same-seed runs.
    """
    base = text.split("#", 1)[0] if "#" in text else text
    return _LABEL_RE.sub("-", base).strip("-") or "unknown"


class FlightRecorder:
    """Bounded ring of recent spans / metric deltas / lifecycle events."""

    def __init__(self, capacity: int = 256, clock=None, node: str = ""):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.node = node
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._clock = clock if clock is not None else WallClock()
        self._subscriptions: list = []
        self._dumped: set[str] = set()

    # -- feeds -----------------------------------------------------------------

    def note(self, kind: str, data) -> None:
        self._ring.append(
            {"t": round(self._clock.now(), 9), "kind": kind, "data": data}
        )

    def record_event(self, event) -> None:
        """Ring one :class:`~repro.util.events.Event`."""
        self.note(
            "event",
            {"topic": event.topic, "payload": event.payload, "source": event.source},
        )

    def record_span(self, span) -> None:
        """Ring one finished :class:`~repro.obs.trace.Span`."""
        self.note(
            "span",
            {
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "status": span.status,
                "timings_us": dict(span.timings_us),
            },
        )

    def record_metrics(self, deltas: Mapping) -> None:
        """Ring an interval's counter deltas ({name: delta}, zeros omitted
        by the caller)."""
        self.note("metrics", dict(deltas))

    def attach(self, bus, topic: str = "") -> None:
        """Tap *bus* (every topic by default); detach via :meth:`close`."""
        self._subscriptions.append(bus.subscribe(topic, self.record_event))

    def tap_spans(self, recorder) -> None:
        """Install as *recorder*'s tee (replacing any previous tap)."""
        recorder.tee = self.record_span

    # -- reading / dumping -----------------------------------------------------

    def snapshot(self) -> list[dict]:
        """The ring's current contents, oldest first."""
        while True:
            try:
                return list(self._ring)
            except RuntimeError:  # deque mutated during iteration
                continue

    def __len__(self) -> int:
        return len(self._ring)

    def should_dump(self, key: str) -> bool:
        """Debounce: True exactly once per *key* per recorder lifetime."""
        if key in self._dumped:
            return False
        self._dumped.add(key)
        return True

    def dump(
        self,
        path: str | Path,
        transform: Callable[[dict], dict] | None = None,
    ) -> int:
        """Write the ring to *path* as JSONL (oldest first); returns the
        entry count.  *transform* maps each entry before writing (the
        scenario runner scrubs volatile ids with it)."""
        entries = self.snapshot()
        if transform is not None:
            entries = [transform(e) for e in entries]
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        return len(entries)

    def close(self) -> None:
        for sub in self._subscriptions:
            sub.cancel()
        self._subscriptions.clear()
