"""Plugin model and the Harness kernel backplane."""

import pytest

from repro.core.kernel import HarnessKernel
from repro.core.plugin import Plugin, PluginState
from repro.netsim import lan
from repro.util.errors import PluginError, PluginLoadError


class Provider(Plugin):
    plugin_name = "provider"
    provides = ("thing",)

    def __init__(self):
        super().__init__()
        self.events = []

    def on_load(self, kernel):
        self.events.append("load")

    def on_start(self):
        self.events.append("start")

    def on_stop(self):
        self.events.append("stop")

    def on_unload(self):
        self.events.append("unload")

    def do_thing(self):
        return "thing done"


class Consumer(Plugin):
    plugin_name = "consumer"
    requires = ("thing",)
    provides = ("meta-thing",)

    def meta(self):
        return self.use("thing").do_thing() + " (meta)"


class TestPluginModel:
    def test_default_name_is_lowercased_class(self):
        class MyFancyPlugin(Plugin):
            pass

        assert MyFancyPlugin.name() == "myfancyplugin"

    def test_service_must_be_declared(self):
        plugin = Provider()
        assert plugin.service("thing") is plugin
        with pytest.raises(PluginError):
            plugin.service("other")

    def test_use_requires_attachment(self):
        with pytest.raises(PluginError):
            Consumer().use("thing")

    def test_lifecycle_order(self):
        kernel = HarnessKernel("solo")
        plugin = Provider()
        kernel.load_plugin(plugin)
        assert plugin.state is PluginState.STARTED
        kernel.unload_plugin("provider")
        assert plugin.state is PluginState.UNLOADED
        assert plugin.events == ["load", "start", "stop", "unload"]
        kernel.shutdown()


class TestKernel:
    @pytest.fixture
    def kernel(self):
        k = HarnessKernel("hostK")
        yield k
        k.shutdown()

    def test_load_by_class_instance_and_string(self, kernel):
        kernel.load_plugin(Provider)
        kernel.unload_plugin("provider")
        kernel.load_plugin(Provider())
        kernel.unload_plugin("provider")
        kernel.load_plugin("repro.plugins.hmsg:MessageTransportPlugin")
        assert "hmsg" in kernel.plugins()

    def test_non_plugin_string_rejected(self, kernel):
        with pytest.raises(PluginLoadError):
            kernel.load_plugin("repro.plugins.services:MatMul")

    def test_duplicate_plugin_rejected(self, kernel):
        kernel.load_plugin(Provider)
        with pytest.raises(PluginLoadError):
            kernel.load_plugin(Provider)

    def test_missing_requirement_rejected(self, kernel):
        with pytest.raises(PluginLoadError, match="thing"):
            kernel.load_plugin(Consumer)

    def test_dependency_wiring(self, kernel):
        kernel.load_plugin(Provider)
        kernel.load_plugin(Consumer)
        consumer = kernel.plugin("consumer")
        assert consumer.meta() == "thing done (meta)"

    def test_service_clash_rejected(self, kernel):
        kernel.load_plugin(Provider)

        class Rival(Plugin):
            plugin_name = "rival"
            provides = ("thing",)

        with pytest.raises(PluginLoadError, match="already present"):
            kernel.load_plugin(Rival)

    def test_unload_with_dependants_blocked(self, kernel):
        kernel.load_plugin(Provider)
        kernel.load_plugin(Consumer)
        with pytest.raises(PluginError, match="consumer"):
            kernel.unload_plugin("provider")
        kernel.unload_plugin("consumer")
        kernel.unload_plugin("provider")

    def test_get_service(self, kernel):
        kernel.load_plugin(Provider)
        assert kernel.get_service("thing").do_thing() == "thing done"
        assert kernel.has_service("thing")
        assert not kernel.has_service("nothing")
        with pytest.raises(PluginError):
            kernel.get_service("nothing")

    def test_services_map(self, kernel):
        kernel.load_plugin(Provider)
        assert kernel.services() == {"thing": "provider"}

    def test_shutdown_detaches_everything(self, kernel):
        plugin = Provider()
        kernel.load_plugin(plugin)
        kernel.shutdown()
        assert plugin.state is PluginState.UNLOADED
        with pytest.raises(PluginError):
            kernel.load_plugin(Provider)

    def test_events_published(self, kernel):
        topics = []
        kernel.events.subscribe("kernel.plugin", lambda e: topics.append(e.topic))
        kernel.load_plugin(Provider)
        kernel.unload_plugin("provider")
        assert topics == ["kernel.plugin.loaded", "kernel.plugin.unloaded"]


class TestInterKernelMessaging:
    def test_send_and_reply(self):
        net = lan(2)
        k0 = HarnessKernel("node0", network=net)
        k1 = HarnessKernel("node1", network=net)

        class EchoPlugin(Plugin):
            plugin_name = "echo"
            provides = ("echo",)

            def handle_message(self, src, payload):
                return {"from": src, "data": payload}

        k1.load_plugin(EchoPlugin)
        reply = k0.send("node1", "echo", [1, 2, 3])
        assert reply["from"] == "node0"
        assert list(reply["data"]) == [1, 2, 3]
        k0.shutdown()
        k1.shutdown()

    def test_send_to_missing_service_raises(self):
        net = lan(2)
        k0 = HarnessKernel("node0", network=net)
        k1 = HarnessKernel("node1", network=net)
        with pytest.raises(PluginError, match="no service"):
            k0.send("node1", "nothing", {})
        k0.shutdown()
        k1.shutdown()

    def test_send_without_network(self):
        kernel = HarnessKernel("offgrid")
        with pytest.raises(PluginError, match="no network"):
            kernel.send("other", "svc", {})
        kernel.shutdown()

    def test_messages_charged_to_fabric(self):
        net = lan(2)
        k0 = HarnessKernel("node0", network=net)
        k1 = HarnessKernel("node1", network=net)

        class NullPlugin(Plugin):
            plugin_name = "null"
            provides = ("null",)

            def handle_message(self, src, payload):
                return None

        k1.load_plugin(NullPlugin)
        before = net.total_bytes
        k0.send("node1", "null", {"blob": "x" * 1000})
        assert net.total_bytes - before > 1000
        k0.shutdown()
        k1.shutdown()
