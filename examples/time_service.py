#!/usr/bin/env python
"""The paper's Figure 7 walk-through: the trivial WSTime Web Service.

1. implement the service class (the paper's ``public class WSTime``)
2. generate its WSDL with ``wsdlgen`` (SOAP + local bindings, as in the
   figure's listing)
3. deploy it in a container and print the final WSDL with live addresses
4. call it through SOAP like a lightweight client (the paper's handheld
   scenario) and through the local binding like a co-located component

Run:  python examples/time_service.py
"""

from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.plugins import WSTime
from repro.tools import generate_wsdl
from repro.wsdl import document_to_string


def main() -> None:
    # -- step 1+2: the service class and its generated description ----------
    abstract = generate_wsdl(WSTime, bindings=("soap", "local"))
    print("=== abstract WSDL (wsdlgen output, Figure 7 shape) ===")
    print(document_to_string(abstract.abstract_part()))

    # -- step 3: deployment gives the description concrete access points ----
    with LightweightContainer("time-provider", host="prov") as container:
        handle = container.deploy(WSTime, bindings=("local-instance", "soap"))
        print("=== deployed WSDL (with live soap:address) ===")
        print(document_to_string(handle.document))

        # -- step 4a: a lightweight SOAP-only client (handheld scenario) ----
        handheld = DynamicStubFactory(ClientContext(host="handheld"))
        soap_stub = handheld.create(handle.document, prefer=("soap",))
        print(f"[handheld over {soap_stub.protocol}] the time is: {soap_stub.getTime()}")
        soap_stub.close()

        # -- step 4b: a co-located component takes the unmediated path -------
        local_stub = container.lookup("WSTime")
        print(f"[co-located over {local_stub.protocol}] the time is: {local_stub.getTime()}")


if __name__ == "__main__":
    main()
