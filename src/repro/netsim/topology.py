"""Topology builders for common experiment shapes.

The paper sketches three deployment regimes: tightly coupled departmental
metacomputers (LAN), wide-area grids spanning administrative domains (WAN),
and mesh-structured applications with fast neighbourhoods.  These helpers
build seeded :class:`VirtualNetwork` instances for each so the C4/C5/C6
benchmarks sweep realistic regimes with one call.

Every builder constructs in O(n·k) (k = per-host link degree, 0 for the
flat shapes): clustered shapes use group-level link rules instead of
enumerating O(n²) host pairs, and sparse shapes install their edge lists in
one bulk :meth:`VirtualNetwork.set_links` call — the C10 gossip sweep
builds 10k-host fabrics in milliseconds.
"""

from __future__ import annotations

import random

from repro.netsim.fabric import LinkModel, VirtualNetwork

__all__ = [
    "lan",
    "wan",
    "two_clusters",
    "mesh_neighborhoods",
    "random_regular",
    "LAN_LINK",
    "WAN_LINK",
]

#: Departmental LAN: 0.1 ms latency, ~100 MB/s.
LAN_LINK = LinkModel(latency_s=1e-4, bandwidth_Bps=100e6)
#: Cross-domain WAN: 40 ms latency, ~2 MB/s (2002-era internet path).
WAN_LINK = LinkModel(latency_s=4e-2, bandwidth_Bps=2e6)


def lan(n_hosts: int, seed: int = 0, detail_stats: bool = True) -> VirtualNetwork:
    """A flat LAN of ``n_hosts`` hosts named ``node0..node{n-1}``."""
    network = VirtualNetwork(default_link=LAN_LINK, seed=seed, detail_stats=detail_stats)
    for i in range(n_hosts):
        network.add_host(f"node{i}")
    return network


def wan(n_hosts: int, seed: int = 0, detail_stats: bool = True) -> VirtualNetwork:
    """A wide-area collection of hosts, all pairs on WAN links.

    O(n): the WAN model is the network default, no per-pair entries exist.
    """
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed, detail_stats=detail_stats)
    for i in range(n_hosts):
        network.add_host(f"node{i}")
    return network


def two_clusters(
    n_per_cluster: int, seed: int = 0, detail_stats: bool = True
) -> VirtualNetwork:
    """Two LAN clusters (``a*``, ``b*``) joined by a WAN link.

    The C6 migration scenario uses this: the LAPACK service lives in
    cluster *b*; the user's home node is in cluster *a*.  Cluster-internal
    links are two group rules (O(n) construction), not O(n²) pair entries.
    """
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed, detail_stats=detail_stats)
    for prefix in ("a", "b"):
        for i in range(n_per_cluster):
            name = f"{prefix}{i}"
            network.add_host(name)
            network.assign_group(name, prefix)
        network.set_group_link(prefix, prefix, LAN_LINK)
    return network


def mesh_neighborhoods(
    n_hosts: int, neighborhood: int, seed: int = 0, detail_stats: bool = True
) -> VirtualNetwork:
    """A ring-mesh where hosts within ``neighborhood`` hops share LAN links.

    Models the paper's "mesh-structured applications [that] may benefit from
    a scheme that provides full synchrony across small neighborhoods".
    O(n·neighborhood): the edge list is installed in one bulk call.
    """
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed, detail_stats=detail_stats)
    names = [f"node{i}" for i in range(n_hosts)]
    for name in names:
        network.add_host(name)
    pairs = [
        (names[i], names[(i + step) % n_hosts])
        for i in range(n_hosts)
        for step in range(1, neighborhood + 1)
    ]
    network.set_links(pairs, LAN_LINK)
    return network


def random_regular(
    n_hosts: int, degree: int = 4, seed: int = 0, detail_stats: bool = True
) -> VirtualNetwork:
    """A random ``degree``-regular graph: LAN edges over a WAN default.

    The classic gossip substrate — every host has exactly ``degree`` cheap
    links to uniformly random peers, giving O(log n) diameter with O(n·k)
    edges.  Built with the pairing (configuration) model plus local repair,
    so construction is O(n·degree) expected and fully deterministic for a
    given ``(n_hosts, degree, seed)``.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if degree >= n_hosts:
        raise ValueError(f"degree {degree} needs more than {n_hosts} hosts")
    if (n_hosts * degree) % 2:
        raise ValueError(f"n_hosts*degree must be even, got {n_hosts}*{degree}")
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed, detail_stats=detail_stats)
    names = [f"node{i}" for i in range(n_hosts)]
    for name in names:
        network.add_host(name)
    rng = random.Random(seed)
    edges = _pairing_model_edges(n_hosts, degree, rng)
    network.set_links([(names[a], names[b]) for a, b in edges], LAN_LINK)
    return network


def _pairing_model_edges(
    n_hosts: int, degree: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Edge list of a random regular graph (no self-loops or multi-edges).

    Each host contributes ``degree`` stubs; a shuffled stub list is paired
    off front to back.  An invalid pair (self-loop / duplicate edge) swaps
    its second stub with a random stub from the unpaired tail — the standard
    repair keeps the draw uniform enough for a network substrate and almost
    always succeeds in one pass; a full reshuffle restart is the rare
    fallback when repairs run out of tail.
    """
    stubs = [host for host in range(n_hosts) for _ in range(degree)]
    n_stubs = len(stubs)
    for _attempt in range(100):
        rng.shuffle(stubs)
        edges: set[tuple[int, int]] = set()
        failed = False
        for i in range(0, n_stubs, 2):
            a = stubs[i]
            repairs = 0
            while True:
                b = stubs[i + 1]
                edge = (a, b) if a < b else (b, a)
                if a != b and edge not in edges:
                    edges.add(edge)
                    break
                if i + 2 >= n_stubs or repairs >= 64:
                    failed = True
                    break
                j = rng.randrange(i + 2, n_stubs)
                stubs[i + 1], stubs[j] = stubs[j], stubs[i + 1]
                repairs += 1
            if failed:
                break
        if not failed:
            return sorted(edges)
    raise ValueError(
        f"could not build a {degree}-regular graph on {n_hosts} hosts "
        "(degenerate parameters)"
    )
