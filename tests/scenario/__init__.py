"""Tests for the declarative chaos harness (repro.scenario)."""
