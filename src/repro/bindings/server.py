"""Server-side binding endpoints.

:class:`BindingServer` exposes one :class:`ObjectDispatcher` over any mix of
bindings and manufactures the matching WSDL ``<port>`` descriptions, so a
service published with SOAP + XDR + local ports (as in Figure 8) is one
``expose_*`` call per access mechanism.
"""

from __future__ import annotations

import time
from functools import lru_cache

from repro.bindings.dispatcher import ObjectDispatcher
from repro.encoding.registry import CodecRegistry, default_registry
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.soap.codec import SoapMessageCodec
from repro.transport.base import TransportMessage
from repro.transport.http import HttpListener
from repro.transport.inproc import InProcListener
from repro.transport.tcp import TcpListener
from repro.util.errors import BindingError
from repro.util.ids import new_id
from repro.wsdl.extensions import SoapAddressExt, XdrAddressExt
from repro.wsdl.model import WsdlPort

__all__ = ["BindingServer"]

_REQUESTS = _metrics.registry.counter("server.requests")
_FAULTS = _metrics.registry.counter("server.faults")
_HANDLE_US = _metrics.registry.histogram("server.handle_us")


def _finish_span(operation, cell, status, elapsed_us):
    """Record the server span — runs on the obs finisher thread, so it
    takes its arguments as a tuple rather than a per-request closure.
    The span's context is re-activated around the histogram observe: the
    finisher thread has no contextvar of its own, and exemplar capture
    (DESIGN.md §12) reads the *current* context to tag outliers."""
    ctx = cell.get()
    token = _trace.activate(ctx)
    try:
        _HANDLE_US.observe(elapsed_us)
    finally:
        _trace.deactivate(token)
    _trace.recorder.record(
        _trace.Span(
            "server:" + operation, ctx.trace_id, ctx.span_id,
            ctx.parent_id, status, {"handle": elapsed_us},
        )
    )


class BindingServer:
    """Multi-binding server front-end over a shared dispatcher."""

    def __init__(self, dispatcher: ObjectDispatcher, codecs: CodecRegistry | None = None):
        self.dispatcher = dispatcher
        self._codecs = codecs or default_registry
        self._fault_codec = SoapMessageCodec()
        self._listeners: list = []

    # -- request pipeline ------------------------------------------------------

    def _handle(self, message: TransportMessage) -> TransportMessage:
        """Decode → dispatch → encode, fault-mapping errors into the codec.

        The codec lookup itself runs under the fault mapping: an unknown or
        malformed ``Content-Type`` answers with a SOAP fault from the default
        codec instead of blowing up the transport (a 500 with an empty body
        on HTTP, a raw fault frame on TCP), so callers always get a reply
        they can decode.
        """
        if _trace.ENABLED:
            return self._handle_traced(message)
        _REQUESTS.inc()
        codec = self._fault_codec
        try:
            codec = self._codecs.get(_normalize(message.content_type))
            target, operation, args = codec.decode_call(message.payload)
            result = codec.encode_reply(self.dispatcher.invoke(target, operation, args))
        except Exception as exc:
            _FAULTS.inc()
            result = codec.encode_reply(fault=f"{type(exc).__name__}: {exc}")
        return TransportMessage(codec.content_type, result)

    def _handle_traced(self, message: TransportMessage) -> TransportMessage:
        """``_handle`` with a server span.

        The incoming context may already be active (TCP frames and HTTP
        headers are decoded by the transport layer); for SOAP over any
        transport that didn't, fall back to extracting the envelope's
        ``<harness:trace>`` header block here.
        """
        _REQUESTS.inc()
        incoming = _trace.peek()
        if incoming is None and message.content_type.startswith("text/xml"):
            try:
                incoming = _trace.extract_soap(bytes(message.payload))
            except Exception:  # noqa: BLE001 — a mangled trace block must
                incoming = None  # never fail the request; fresh context instead
        # the server's own context is minted lazily: a service that never
        # reads it costs nothing here, and the deferred finalizer below
        # shares the same memoized ids if it does
        cell = _trace.LazyChild(incoming)
        token = _trace.activate(cell)
        status = "ok"
        operation = "?"
        codec = self._fault_codec
        t0 = time.perf_counter()
        try:
            try:
                codec = self._codecs.get(_normalize(message.content_type))
                target, operation, args = codec.decode_call(message.payload)
                result = codec.encode_reply(
                    self.dispatcher.invoke(target, operation, args)
                )
            except Exception as exc:
                status = "fault"
                _FAULTS.inc()
                result = codec.encode_reply(fault=f"{type(exc).__name__}: {exc}")
            return TransportMessage(codec.content_type, result)
        finally:
            _trace.deactivate(token)
            elapsed_us = (time.perf_counter() - t0) * 1e6
            # the reply is not on the wire yet — everything below this
            # point is serialized into the caller's latency, so span
            # finalization goes to the finisher thread
            _trace.finisher.submit(_finish_span, (operation, cell, status, elapsed_us))

    # -- exposure --------------------------------------------------------------

    def expose_soap_http(
        self, host: str = "127.0.0.1", port: int = 0, metrics_path: str = "/metrics",
        **listener_knobs,
    ) -> HttpListener:
        """Serve SOAP 1.1 over HTTP; returns the live listener.

        The listener also answers ``GET /metrics`` with the process
        registry in Prometheus text exposition (``metrics_path=""``
        disables it); hook a cluster collector's view in with
        ``listener.add_get_route``.

        *listener_knobs* pass through to :class:`HttpListener` — the
        reactor capacity knobs (``workers``, ``queue_max``,
        ``per_conn_max``, ``read_deadline_s``, ``reactor``).
        """
        listener = HttpListener(self._handle, host, port, **listener_knobs)
        if metrics_path:
            listener.add_get_route(metrics_path, _prometheus_page)
        self._listeners.append(listener)
        return listener

    def expose_xdr_tcp(
        self, host: str = "127.0.0.1", port: int = 0, **listener_knobs
    ) -> TcpListener:
        """Serve XDR-framed RPC over TCP; returns the live listener.

        *listener_knobs* pass through to :class:`TcpListener` — the
        reactor capacity knobs (``workers``, ``queue_max``,
        ``per_conn_max``, ``read_deadline_s``, ``reactor``).
        """
        listener = TcpListener(self._handle, host, port, **listener_knobs)
        self._listeners.append(listener)
        return listener

    def expose_inproc(self, name: str | None = None) -> InProcListener:
        """Serve over the in-process transport (still pays codec cost)."""
        listener = InProcListener(name or new_id("ep"), self._handle)
        self._listeners.append(listener)
        return listener

    def close(self) -> None:
        """Shut every listener down."""
        for listener in self._listeners:
            listener.close()
        self._listeners.clear()

    # -- WSDL port manufacture ----------------------------------------------------

    @staticmethod
    def soap_port(listener: HttpListener, binding_name: str, port_name: str) -> WsdlPort:
        """A ``<port>`` with a ``soap:address`` for *listener*."""
        return WsdlPort(port_name, binding_name, (SoapAddressExt(listener.url),))

    @staticmethod
    def xdr_port(listener: TcpListener, binding_name: str, port_name: str, target: str = "") -> WsdlPort:
        """A ``<port>`` with a ``harness:xdrAddress`` for *listener*."""
        host, _, port_text = listener.url.removeprefix("tcp://").rpartition(":")
        return WsdlPort(
            port_name, binding_name, (XdrAddressExt(host, int(port_text), target),)
        )


def _prometheus_page() -> tuple[str, bytes]:
    """The default ``GET /metrics`` route: this process's registry in
    Prometheus text exposition (no node label — one process, one target)."""
    from repro.obs.cluster import prometheus_text

    _trace.flush()  # land in-flight bookkeeping so the scrape is consistent
    text = prometheus_text({"": _metrics.registry.snapshot()})
    return "text/plain; version=0.0.4; charset=utf-8", text.encode("utf-8")


@lru_cache(maxsize=256)
def _normalize(content_type: str) -> str:
    """Map a full Content-Type header to a registered codec key.

    ``text/xml; charset=utf-8`` → ``text/xml``;
    ``text/xml; arrays=items`` keeps its array-mode parameter.

    Memoized: clients send the same handful of header strings for the
    lifetime of a connection, so the split/strip work is paid once per
    distinct header rather than once per request.
    """
    parts = [p.strip() for p in content_type.split(";")]
    base = parts[0]
    params = [p for p in parts[1:] if p.startswith("arrays=")]
    if params:
        return f"{base}; {params[0]}"
    return base
