"""Declarative SLOs evaluated as multi-window error-budget burn rates.

An :class:`SloSpec` names an objective (e.g. 99% of calls succeed, or 99%
of calls finish under 5 ms) and the metrics that measure it; a
:class:`BurnSeries` accumulates cumulative (time, bad, total) samples and
answers "how fast is the error budget burning over the trailing window?".
The **burn rate** is the standard SRE normalization::

    burn(window) = error_rate_over_window / (1 - objective)

so burn 1× means "exactly on budget", 10× means "the whole budget gone in
a tenth of the period".  Evaluating the same series over *several*
windows is what makes the signal usable: a short window alone pages on
blips, a long window alone pages late.  A condition holds only when every
configured window agrees (the classic multi-window AND), which is also
the semantics of the chaos harness's ``slo_burn_under`` checker — a
scenario fails its SLO only if the budget burned too fast at *every*
configured horizon, so a fault injection may spike the short window while
the run as a whole stays inside budget.

Specs read the *merged* cluster snapshots (:mod:`repro.obs.cluster`):
availability from a bad/total counter pair, latency from a histogram and
a threshold (an observation is bad when its bucket's upper bound exceeds
the threshold — conservative for the straddling bucket).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["SloSpec", "BurnSeries", "SloEngine", "SloVerdict"]


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective and where its numbers come from.

    *kind* is ``availability`` (counter pair: *bad_metric* over
    *total_metric*) or ``latency`` (*histogram* plus *threshold_us*).
    *windows_s* are the trailing horizons burn is evaluated over.
    """

    name: str
    objective: float
    kind: str = "availability"
    total_metric: str = ""
    bad_metric: str = ""
    histogram: str = ""
    threshold_us: float = 0.0
    windows_s: tuple = (5.0, 60.0)

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.kind == "availability":
            if not self.total_metric or not self.bad_metric:
                raise ValueError(
                    f"availability SLO {self.name!r} needs total_metric and bad_metric"
                )
        elif self.kind == "latency":
            if not self.histogram or self.threshold_us <= 0:
                raise ValueError(
                    f"latency SLO {self.name!r} needs histogram and threshold_us > 0"
                )
        else:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not self.windows_s:
            raise ValueError(f"SLO {self.name!r} needs at least one window")

    def extract(self, metrics: Mapping) -> tuple[int, int]:
        """(bad, total) cumulative counts from one merged snapshot.

        Missing metrics read as (0, 0) — before traffic flows there is no
        budget to burn.
        """
        if self.kind == "availability":
            total = _counter_value(metrics, self.total_metric)
            bad = _counter_value(metrics, self.bad_metric)
            return min(bad, total), total
        data = metrics.get(self.histogram)
        if not isinstance(data, Mapping) or data.get("type") != "histogram":
            return 0, 0
        buckets = data.get("buckets", {})
        total = int(data.get("count", 0))
        good = sum(
            int(count)
            for key, count in buckets.items()
            if key != "+inf" and float(key) <= self.threshold_us
        )
        return max(0, total - good), total


def _counter_value(metrics: Mapping, name: str) -> int:
    data = metrics.get(name)
    if isinstance(data, Mapping) and "value" in data:
        return int(data["value"])
    return 0


class BurnSeries:
    """Cumulative (t, bad, total) samples and trailing-window burn rates.

    ``observe`` requires monotonically non-decreasing time and counts —
    the inputs are cumulative counters, so a decrease means the source
    reset and the series restarts from that sample.
    """

    def __init__(self, objective: float):
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.objective = objective
        self._t: list[float] = []
        self._bad: list[int] = []
        self._total: list[int] = []

    def __len__(self) -> int:
        return len(self._t)

    def observe(self, t: float, bad: int, total: int) -> None:
        if self._t and (t < self._t[-1] or total < self._total[-1] or bad < self._bad[-1]):
            # source reset (node restart, registry reset): start over
            self._t, self._bad, self._total = [], [], []
        self._t.append(float(t))
        self._bad.append(int(bad))
        self._total.append(int(total))

    def _at_or_before(self, t: float) -> int:
        """Index of the last sample with time <= t, or -1 (series origin)."""
        return bisect.bisect_right(self._t, t) - 1

    def burn_rate(self, window_s: float, at: float | None = None) -> float:
        """Budget burn over the window ending at *at* (default: last sample).

        The window difference reads the latest sample at or before each
        edge; a window opening before the first sample reads the implicit
        (0, 0) origin.  No traffic in the window burns nothing.
        """
        if not self._t:
            return 0.0
        end = self._at_or_before(self._t[-1] if at is None else at)
        if end < 0:
            return 0.0
        start = self._at_or_before(self._t[end] - window_s)
        bad0, total0 = (self._bad[start], self._total[start]) if start >= 0 else (0, 0)
        d_total = self._total[end] - total0
        if d_total <= 0:
            return 0.0
        d_bad = self._bad[end] - bad0
        return (d_bad / d_total) / (1.0 - self.objective)

    def max_burn(self, window_s: float) -> float:
        """The worst trailing-window burn over the whole series (the
        sliding window evaluated at every sample point)."""
        return max(
            (self.burn_rate(window_s, at=t) for t in self._t), default=0.0
        )


@dataclass(frozen=True)
class SloVerdict:
    """One spec's evaluation: worst burn per window, and the verdict."""

    name: str
    ok: bool
    burn: float  # the multi-window AND bound: min over windows of max burn
    windows: dict = field(default_factory=dict)  # window_s -> max burn

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "burn": round(self.burn, 6),
            "windows": {str(w): round(b, 6) for w, b in self.windows.items()},
        }


class SloEngine:
    """Feeds merged snapshots into one :class:`BurnSeries` per spec."""

    def __init__(self, specs):
        self.specs = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self._series = {s.name: BurnSeries(s.objective) for s in self.specs}

    def observe(self, t: float, metrics: Mapping) -> None:
        """Sample every spec's (bad, total) from one merged snapshot."""
        for spec in self.specs:
            bad, total = spec.extract(metrics)
            self._series[spec.name].observe(t, bad, total)

    def series(self, name: str) -> BurnSeries:
        return self._series[name]

    def evaluate(self, max_burn: float = 1.0) -> list[SloVerdict]:
        """Verdicts under the multi-window AND: a spec violates only when
        every configured window's worst burn exceeds *max_burn*."""
        verdicts = []
        for spec in self.specs:
            series = self._series[spec.name]
            windows = {w: series.max_burn(w) for w in spec.windows_s}
            bound = min(windows.values()) if windows else 0.0
            verdicts.append(
                SloVerdict(spec.name, bound <= max_burn, bound, windows)
            )
        return verdicts
