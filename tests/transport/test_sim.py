"""SimTransport/SimListener — the fabric-charged transport."""

import pytest

from repro.netsim import lan
from repro.netsim.fabric import HostDownError
from repro.transport.base import TransportMessage
from repro.transport.sim import SimListener, SimTransport
from repro.util.errors import TransportClosedError, TransportError


def echo(message: TransportMessage) -> TransportMessage:
    return TransportMessage(message.content_type, message.payload.upper())


@pytest.fixture
def net():
    return lan(3)


class TestSimListener:
    def test_url_shape(self, net):
        listener = SimListener(net, "node0", "svc", echo)
        assert listener.url == "sim://node0/svc"

    def test_close_unbinds(self, net):
        listener = SimListener(net, "node0", "svc", echo)
        listener.close()
        transport = SimTransport(net, "node1", "sim://node0/svc")
        with pytest.raises(TransportError):
            transport.request(TransportMessage("t", b"x"))
        listener.close()  # idempotent

    def test_duplicate_endpoint_rejected(self, net):
        SimListener(net, "node0", "svc", echo)
        with pytest.raises(TransportError):
            SimListener(net, "node0", "svc", echo)


class TestSimTransport:
    def test_round_trip_and_charging(self, net):
        SimListener(net, "node2", "svc", echo)
        transport = SimTransport(net, "node0", "sim://node2/svc")
        before = net.total_bytes
        reply = transport.request(TransportMessage("t", b"abc"))
        assert reply.payload == b"ABC"
        assert net.total_bytes == before + 6  # 3 bytes each way
        assert net.total_messages == 2

    def test_cost_follows_link_model(self, net):
        from repro.netsim.fabric import LinkModel

        SimListener(net, "node1", "svc", echo)
        net.set_link("node0", "node1", LinkModel(latency_s=1.0, bandwidth_Bps=1e9))
        transport = SimTransport(net, "node0", "sim://node1/svc")
        net.reset_stats()
        transport.request(TransportMessage("t", b"x"))
        assert net.simulated_time >= 2.0  # 1 s latency each way

    def test_crashed_destination(self, net):
        SimListener(net, "node1", "svc", echo)
        net.host("node1").crash()
        transport = SimTransport(net, "node0", "sim://node1/svc")
        with pytest.raises(HostDownError):
            transport.request(TransportMessage("t", b"x"))

    def test_closed_transport(self, net):
        SimListener(net, "node1", "svc", echo)
        transport = SimTransport(net, "node0", "sim://node1/svc")
        transport.close()
        with pytest.raises(TransportClosedError):
            transport.request(TransportMessage("t", b"x"))

    @pytest.mark.parametrize("bad", ["tcp://h:1", "sim://hostonly", "sim:///ep"])
    def test_bad_urls(self, net, bad):
        with pytest.raises((TransportError, ValueError)):
            SimTransport(net, "node0", bad)

    def test_loopback_to_own_host(self, net):
        SimListener(net, "node0", "svc", echo)
        transport = SimTransport(net, "node0", "sim://node0/svc")
        assert transport.request(TransportMessage("t", b"me")).payload == b"ME"


class TestSimulatedTimeoutEnforcement:
    def test_timeout_enforced_against_simulated_time(self, net):
        from repro.netsim.fabric import LinkModel
        from repro.util.errors import HarnessTimeoutError

        SimListener(net, "node1", "svc", echo)
        net.set_link("node0", "node1", LinkModel(latency_s=1.0, bandwidth_Bps=1e9))
        transport = SimTransport(net, "node0", "sim://node1/svc")
        with pytest.raises(HarnessTimeoutError):
            transport.request(TransportMessage("t", b"x"), timeout=0.5)
        # a generous timeout passes — wall-clock never mattered
        assert transport.request(TransportMessage("t", b"x"), timeout=10.0).payload == b"X"

    def test_no_timeout_means_unbounded(self, net):
        from repro.netsim.fabric import LinkModel

        SimListener(net, "node1", "svc", echo)
        net.set_link("node0", "node1", LinkModel(latency_s=60.0, bandwidth_Bps=1e9))
        transport = SimTransport(net, "node0", "sim://node1/svc")
        assert transport.request(TransportMessage("t", b"x"), timeout=None).payload == b"X"
