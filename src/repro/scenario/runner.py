"""The scenario runner: play a fault script against a live deployment.

:func:`run_scenario` builds the manifest's world — seeded netsim topology,
DVM with the chosen coherency scheme, deployed services, failure detector
and failover manager — then walks a tick-driven timeline:

1. advance the clock to the tick's nominal time;
2. checkpoint restartable components (on the manifest's cadence);
3. run one failure-detector heartbeat round (on its cadence);
4. apply every fault whose scripted time has come (each announced as a
   ``scenario.fault`` event *before* it lands, so the audit trail shows the
   injection and its consequences in causal order);
5. fire the workload's calls for this tick.

Everything rides the scenario's single :class:`~repro.util.clock.VirtualClock`
(the default), so the entire run is deterministic and takes milliseconds of
wall time; ``wall=True`` swaps in the real clock for soak-style runs.  The
collected :class:`~repro.scenario.events.EventLog` plus the evaluated
:mod:`~repro.scenario.checks` become the run's artifacts: ``events.jsonl``
(byte-identical across same-seed re-runs) and ``result.json``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bindings.stubs import load_type
from repro.core.builder import HarnessDvm
from repro.netsim import topology as _topology
from repro.obs import metrics as _metrics
from repro.obs.recorder import FlightRecorder, dump_label
from repro.scenario.checks import CheckContext, run_checks
from repro.scenario.events import EventLog, scrub
from repro.scenario.faults import apply_fault
from repro.scenario.manifest import ScenarioManifest, load_manifest
from repro.scenario.workload import (
    MailboxWorkloadDriver,
    ReactorWorkloadDriver,
    WorkloadDriver,
    WorkloadStats,
)
from repro.util.clock import VirtualClock, WallClock
from repro.util.errors import ScenarioError
from repro.util.events import EventBus
from repro.util.ids import reset_ids

__all__ = ["ScenarioRuntime", "ScenarioResult", "run_scenario"]

#: Counters sampled into the flight recorder each tick (as deltas).
_FLIGHT_COUNTERS = (
    "server.requests",
    "server.faults",
    "dvm.detector.misses",
    "dvm.detector.suspected",
    "dvm.detector.evicted",
    "invoke.breaker.opened",
)

#: Bus topics whose first occurrence (per subject) dumps the flight ring.
FLIGHT_TRIGGERS = ("invoke.breaker.open", "dvm.member.dead")


def _build_network(manifest: ScenarioManifest):
    topo = manifest.topology
    if topo.kind == "lan":
        return _topology.lan(topo.hosts, seed=manifest.seed)
    if topo.kind == "wan":
        return _topology.wan(topo.hosts, seed=manifest.seed)
    if topo.kind == "two_clusters":
        return _topology.two_clusters(topo.per_cluster, seed=manifest.seed)
    if topo.kind == "mesh":
        return _topology.mesh_neighborhoods(
            topo.hosts, topo.neighborhood, seed=manifest.seed
        )
    if topo.kind == "random_regular":
        return _topology.random_regular(topo.hosts, topo.degree, seed=manifest.seed)
    raise ScenarioError(f"unknown topology kind {topo.kind!r}")  # pragma: no cover


class ScenarioRuntime:
    """The live world a scenario manipulates.

    Fault handlers and checkers reach the fabric (``network``), the
    deployment (``harness``), and the timeline (``clock``) through this
    object; :meth:`rejoin` is the restart-fault hook that re-enrolls an
    evicted node with a fresh kernel.
    """

    def __init__(self, manifest: ScenarioManifest, wall: bool = False):
        # id strings leak their decimal width into wire payload sizes, so
        # same-seed runs in one process diverge by sub-microsecond simulated
        # transfer costs unless the counter restarts with the world
        reset_ids()
        self.manifest = manifest
        self.virtual = not wall
        self.clock = VirtualClock() if self.virtual else WallClock()
        # set by ReactorWorkloadDriver when workload.mode == "reactor"; the
        # reactor_capacity fault action reconfigures it mid-run
        self.reactor_admission = None
        self.network = _build_network(manifest)
        self.events = EventBus()
        self.log = EventLog(self.clock)
        self.log.attach(self.events)  # before construction: joins/deploys recorded
        # the black box: recent events + per-tick metric deltas, dumped by
        # run_scenario when a breaker opens, a node dies, or a check fails
        self.flight = FlightRecorder(capacity=256, clock=self.clock, node=manifest.name)
        self.flight.attach(self.events)
        self._flight_prev: dict[str, int] = {
            name: _metrics.registry.counter(name).value() for name in _FLIGHT_COUNTERS
        }
        self.harness = HarnessDvm(
            manifest.name,
            self.network,
            coherency=manifest.dvm.coherency,
            neighborhood_radius=manifest.dvm.neighborhood_radius,
            gossip_fanout=manifest.dvm.gossip_fanout,
            gossip_seed=manifest.seed,
            events=self.events,
            clock=self.clock,
            lookup_cache_ttl_s=manifest.dvm.lookup_cache_ttl_s,
        )
        for host in sorted(h.name for h in self.network.hosts()):
            self.harness.add_node(host)
        for service in manifest.services:
            self.harness.deploy(
                service.node,
                load_type(service.type),
                name=service.name,
                bindings=service.bindings,
                restartable=service.restartable,
            )
        healing = manifest.self_healing
        if healing.enabled:
            self.harness.enable_self_healing(
                observer=healing.observer,
                suspect_after=healing.suspect_after,
                evict_after=healing.evict_after,
                heartbeat_interval_s=healing.heartbeat_every_ticks * manifest.tick_s,
                checkpoint_interval_s=healing.checkpoint_every_ticks * manifest.tick_s,
                indirect_probes=healing.indirect_probes,
                sample=healing.sample,
                coalesce_after=healing.coalesce_after,
                start_threads=False,
            )

    def rejoin(self, node: str) -> None:
        """Re-enroll a restarted host that was evicted while down."""
        if node not in self.harness.dvm.nodes():
            self.harness.add_node(node)

    def advance_to(self, target: float) -> None:
        """Catch the clock up to *target* (never moves it backwards)."""
        delta = target - self.clock.now()
        if delta > 0:
            self.clock.sleep(delta)

    def credit(self, delta: float) -> None:
        """Account simulated network time spent by a call as clock time."""
        if self.virtual and delta > 0:
            self.clock.advance(delta)

    def sample_flight_metrics(self) -> dict:
        """This tick's deltas of the flight-recorder counter set (nonzero
        only), ringed so a dump shows what the rates were doing just
        before the trigger."""
        deltas = {}
        for name in _FLIGHT_COUNTERS:
            value = _metrics.registry.counter(name).value()
            delta = value - self._flight_prev.get(name, 0)
            self._flight_prev[name] = value
            if delta:
                deltas[name] = delta
        if deltas:
            self.flight.record_metrics(deltas)
        return deltas

    def close(self) -> None:
        self.flight.close()
        self.log.detach()
        self.harness.close()


@dataclass(frozen=True)
class ScenarioResult:
    """Everything a scenario run produced, JSON-ready via :meth:`as_dict`."""

    name: str
    seed: int
    passed: bool
    checks: tuple = ()
    workload: dict = field(default_factory=dict)
    events_sha256: str = ""
    n_events: int = 0
    final_members: tuple = ()
    wall_s: float = 0.0
    events_path: str | None = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "passed": self.passed,
            "checks": [c.as_dict() for c in self.checks],
            "workload": dict(self.workload),
            "events_sha256": self.events_sha256,
            "n_events": self.n_events,
            "final_members": list(self.final_members),
            "wall_s": round(self.wall_s, 6),
        }


def run_scenario(
    manifest: ScenarioManifest | str | Path,
    out_dir: str | Path | None = None,
    seed: int | None = None,
    wall: bool = False,
) -> ScenarioResult:
    """Execute one manifest end to end and return its :class:`ScenarioResult`.

    *manifest* may be a parsed :class:`~repro.scenario.manifest.ScenarioManifest`
    or a path to one.  *seed* overrides the manifest's seed; *out_dir*, when
    given, receives ``events.jsonl`` and ``result.json``.
    """
    if isinstance(manifest, (str, Path)):
        manifest = load_manifest(manifest)
    if seed is not None:
        manifest = manifest.with_seed(seed)
    # a manifest can demand the real clock (reactor workloads drive real
    # sockets; their latencies are wall time whatever the caller asked for)
    wall = wall or manifest.wall
    started = time.monotonic()
    runtime = ScenarioRuntime(manifest, wall=wall)
    tick = manifest.tick_s
    t0 = manifest.settle_ticks * tick
    pending_faults = list(manifest.faults)
    driver = None
    trigger_subs = []

    def flight_dump(trigger: str, label: str) -> None:
        """Publish the (deterministic) dump announcement; write the actual
        ring file only when the run has an output directory.  The event is
        unconditional so same-seed runs with and without ``out_dir`` hash
        identically — the soak harness's determinism check depends on it."""
        filename = f"flight-{label}.jsonl"
        if out_dir is not None:
            runtime.flight.dump(Path(out_dir) / filename, transform=scrub)
        runtime.events.publish(
            "obs.flight.dumped",
            {"trigger": trigger, "node": label, "file": filename},
            source="obs",
        )

    def on_trigger(event) -> None:
        payload = event.payload if isinstance(event.payload, dict) else {}
        subject = payload.get("node") or payload.get("target") or "unknown"
        label = dump_label(str(subject))
        if runtime.flight.should_dump(f"{event.topic}:{label}"):
            flight_dump(event.topic, label)

    try:
        for topic in FLIGHT_TRIGGERS:
            trigger_subs.append(runtime.events.subscribe(topic, on_trigger))
        runtime.events.publish(
            "scenario.start",
            {
                "name": manifest.name,
                "seed": manifest.seed,
                "ticks": manifest.n_ticks,
                "tick_s": tick,
                "topology": manifest.topology.kind,
                "coherency": manifest.dvm.coherency,
            },
            source="scenario",
        )
        if manifest.workload is not None:
            driver_cls = {
                "reactor": ReactorWorkloadDriver,
                "mailbox": MailboxWorkloadDriver,
            }.get(manifest.workload.mode, WorkloadDriver)
            driver = driver_cls(
                runtime, manifest.workload, random.Random(f"{manifest.seed}:workload")
            )

        def maintenance(global_tick: int) -> None:
            # gossip-family coherency converges by anti-entropy rounds, one
            # per tick — independent of whether self-healing is enabled
            protocol = runtime.harness.dvm.protocol
            if hasattr(protocol, "gossip_round"):
                protocol.gossip_round()
            healing = manifest.self_healing
            if not healing.enabled:
                return
            if global_tick % healing.checkpoint_every_ticks == 0:
                runtime.harness.failover.checkpoint()
            if global_tick % healing.heartbeat_every_ticks == 0:
                runtime.harness.detector.tick()

        for i in range(manifest.settle_ticks):
            runtime.advance_to((i + 1) * tick)
            maintenance(i)

        def apply_due(now_scripted: float) -> None:
            while pending_faults and pending_faults[0].at <= now_scripted:
                fault = pending_faults.pop(0)
                runtime.events.publish(
                    "scenario.fault",
                    {"at": fault.at, "action": fault.action, "params": scrub(fault.params)},
                    source="scenario",
                )
                apply_fault(runtime, fault.action, fault.params)

        for i in range(manifest.n_ticks):
            runtime.advance_to(t0 + i * tick)
            maintenance(manifest.settle_ticks + i)
            apply_due(i * tick)
            if driver is not None:
                summary = driver.step()
                summary["tick"] = i
                runtime.events.publish(
                    "scenario.workload.tick", summary, source="scenario"
                )
            runtime.sample_flight_metrics()
        apply_due(manifest.duration_s)  # script entries timed at/after the last tick

        # let the driver settle in-flight state (e.g. the mailbox driver's
        # pending acks and final backlog drain) before invariants evaluate
        if driver is not None and hasattr(driver, "finish"):
            driver.finish()
        stats = driver.stats if driver is not None else WorkloadStats()
        checks = run_checks(
            CheckContext(manifest=manifest, runtime=runtime, stats=stats, log=runtime.log)
        )
        passed = all(c.passed for c in checks)
        if not passed and runtime.flight.should_dump("checks"):
            flight_dump("scenario.check.failed", "checks")
        runtime.events.publish(
            "scenario.end",
            {
                "passed": passed,
                "checks": {c.check: c.passed for c in checks},
                "issued": stats.issued,
                "ok": stats.ok,
            },
            source="scenario",
        )
        events_path: str | None = None
        if out_dir is not None:
            out = Path(out_dir)
            events_path = str(runtime.log.write_jsonl(out / "events.jsonl"))
        result = ScenarioResult(
            name=manifest.name,
            seed=manifest.seed,
            passed=passed,
            checks=tuple(checks),
            workload=stats.summary(),
            events_sha256=runtime.log.sha256(),
            n_events=len(runtime.log),
            final_members=tuple(runtime.harness.dvm.nodes()),
            wall_s=time.monotonic() - started,
            events_path=events_path,
        )
        if out_dir is not None:
            path = Path(out_dir) / "result.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return result
    finally:
        for sub in trigger_subs:
            sub.cancel()
        if driver is not None:
            driver.close()
        runtime.close()
