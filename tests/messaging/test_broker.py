"""Broker-level conformance: the normative semantics of DESIGN.md §15.

Everything here exercises :class:`~repro.messaging.broker.MessageBroker`
directly — the reference semantics every binding must preserve.  The
cross-binding battery (``test_bindings.py``) re-checks the same contracts
through the inproc, sim and TCP surfaces.
"""

import pickle
import threading
import time

import pytest

from repro.messaging.broker import (
    DELIVERY_MODES,
    OVERFLOW_POLICIES,
    Delivery,
    MessageBroker,
)
from repro.util.clock import VirtualClock
from repro.util.errors import HarnessTimeoutError, MailboxFullError, MessagingError
from repro.util.events import EventBus


def make_broker(**kwargs):
    kwargs.setdefault("clock", VirtualClock())
    return MessageBroker(**kwargs)


def drain(sub, limit=1000):
    """Pop-and-ack everything queued; returns the deliveries in order."""
    out = []
    while len(out) < limit:
        delivery = sub.try_receive()
        if delivery is None:
            break
        sub.ack(delivery)
        out.append(delivery)
    return out


class TestDeclaration:
    def test_modes_and_policies_are_the_documented_trios(self):
        assert DELIVERY_MODES == ("first-reader", "all-readers", "tap")
        assert OVERFLOW_POLICIES == ("drop-oldest", "reject", "block-with-deadline")

    def test_open_is_idempotent(self):
        broker = make_broker()
        broker.open("box", mode="first-reader", capacity=8, overflow="reject")
        broker.open("box", mode="first-reader", capacity=8, overflow="reject")
        assert broker.mailbox_names() == ["box"]

    def test_conflicting_redeclaration_is_typed(self):
        broker = make_broker()
        broker.open("box", capacity=8)
        with pytest.raises(MessagingError, match="already open"):
            broker.open("box", capacity=9)

    def test_unknown_mode_and_policy_rejected(self):
        broker = make_broker()
        with pytest.raises(MessagingError, match="delivery mode"):
            broker.open("a", mode="broadcast")
        with pytest.raises(MessagingError, match="overflow policy"):
            broker.open("b", overflow="explode")
        with pytest.raises(MessagingError, match="capacity"):
            broker.open("c", capacity=0)

    def test_tap_coerces_overflow_to_drop_oldest(self):
        broker = make_broker()
        broker.open("t", mode="tap", overflow="reject")
        assert broker.describe("t")["overflow"] == "drop-oldest"

    def test_operations_on_unopened_mailbox_are_typed(self):
        broker = make_broker()
        with pytest.raises(MessagingError, match="not open"):
            broker.publish("ghost", 1)
        with pytest.raises(MessagingError, match="not open"):
            broker.subscribe("ghost")


class TestFirstReader:
    def test_each_message_consumed_exactly_once(self):
        broker = make_broker()
        broker.open("jobs", capacity=32)
        a = broker.subscribe("jobs", "a")
        b = broker.subscribe("jobs", "b")
        for i in range(10):
            broker.publish("jobs", i)
        seen = []
        while True:
            progressed = False
            for sub in (a, b):
                delivery = sub.try_receive()
                if delivery is not None:
                    sub.ack(delivery)
                    seen.append(delivery.seq)
                    progressed = True
            if not progressed:
                break
        assert sorted(seen) == list(range(1, 11))
        assert len(seen) == len(set(seen))
        stats = broker.stats("jobs")
        assert stats.published == stats.delivered == stats.acked == 10
        assert stats.depth == 0

    def test_unacked_requeue_at_front_on_close(self):
        broker = make_broker()
        broker.open("jobs", capacity=32)
        a = broker.subscribe("jobs", "a")
        for i in range(3):
            broker.publish("jobs", i)
        taken = [a.receive(timeout=0) for _ in range(2)]  # held, never acked
        assert [d.seq for d in taken] == [1, 2]
        a.close(requeue=True)
        b = broker.subscribe("jobs", "b")
        redelivered = drain(b)
        assert [d.seq for d in redelivered] == [1, 2, 3]
        assert [d.redelivered for d in redelivered] == [True, True, False]
        assert [d.attempt for d in redelivered] == [2, 2, 1]

    def test_nack_requeues_for_immediate_redelivery(self):
        broker = make_broker()
        broker.open("jobs", capacity=8)
        sub = broker.subscribe("jobs")
        broker.publish("jobs", "x")
        first = sub.receive(timeout=0)
        sub.nack(first)
        second = sub.receive(timeout=0)
        assert second.seq == first.seq
        assert second.redelivered is True and second.attempt == 2
        sub.ack(second)
        assert broker.stats("jobs").acked == 1

    def test_ack_of_unknown_delivery_is_typed(self):
        broker = make_broker()
        broker.open("jobs")
        sub = broker.subscribe("jobs")
        with pytest.raises(MessagingError, match="unknown delivery"):
            sub.ack(9999)

    def test_lease_expiry_requeues_like_consumer_death(self):
        clock = VirtualClock()
        broker = MessageBroker(clock=clock)
        broker.open("jobs", capacity=8)
        doomed = broker.subscribe("jobs", "doomed", lease_s=1.0)
        broker.publish("jobs", "work")
        held = doomed.receive(timeout=0)
        assert held.seq == 1
        clock.advance(2.0)
        victims = broker.sweep_leases()
        assert victims == [("jobs", doomed.sub_id)]
        survivor = broker.subscribe("jobs", "survivor")
        redelivery = survivor.receive(timeout=0)
        assert redelivery.seq == 1 and redelivery.redelivered is True


class TestAllReaders:
    def test_every_subscriber_gets_its_own_copy_in_order(self):
        broker = make_broker()
        broker.open("news", mode="all-readers", capacity=16)
        a = broker.subscribe("news", "a")
        b = broker.subscribe("news", "b")
        for i in range(4):
            broker.publish("news", i)
        for sub in (a, b):
            got = drain(sub)
            assert [d.seq for d in got] == [1, 2, 3, 4]
            assert [d.payload for d in got] == [0, 1, 2, 3]
        assert broker.stats("news").delivered == 8

    def test_late_subscriber_sees_only_later_messages(self):
        broker = make_broker()
        broker.open("news", mode="all-readers", capacity=16)
        early = broker.subscribe("news", "early")
        broker.publish("news", "before")
        late = broker.subscribe("news", "late")
        broker.publish("news", "after")
        assert [d.payload for d in drain(early)] == ["before", "after"]
        assert [d.payload for d in drain(late)] == ["after"]

    def test_publish_with_no_subscribers_is_a_counted_drop(self):
        bus = EventBus()
        dropped = []
        bus.subscribe("mbox.dropped", lambda e: dropped.append(e.payload))
        broker = make_broker(events=bus)
        broker.open("news", mode="all-readers", capacity=16)
        seq = broker.publish("news", "into the void")
        assert broker.stats("news").dropped == 1
        assert dropped and dropped[0]["seq"] == seq
        assert dropped[0]["reason"] == "no_subscribers"


class TestTap:
    def test_tap_auto_acks_and_never_holds_messages(self):
        broker = make_broker()
        broker.open("trace", mode="tap", capacity=8)
        sub = broker.subscribe("trace")
        broker.publish("trace", "observed")
        delivery = sub.receive(timeout=0)
        assert broker.stats("trace").acked == 1  # acked on delivery
        sub.ack(delivery)  # explicit ack is a harmless no-op
        assert broker.stats("trace").acked == 1

    def test_full_tap_evicts_oldest_instead_of_back_pressuring(self):
        bus = EventBus()
        drops = []
        bus.subscribe("mbox.dropped", lambda e: drops.append(e.payload["seq"]))
        broker = make_broker(events=bus)
        broker.open("trace", mode="tap", capacity=2)
        sub = broker.subscribe("trace")
        for i in range(5):
            broker.publish("trace", i)  # must never raise
        got = []
        while True:
            delivery = sub.try_receive()
            if delivery is None:
                break
            got.append(delivery.seq)
        assert got == [4, 5]  # the newest `capacity` messages survive
        assert drops == [1, 2, 3]
        assert broker.stats("trace").dropped == 3


class TestOverflowBoundaries:
    """The queue at *exactly* capacity: the message either lands, is
    rejected typed, is dropped-with-event, or the publisher blocks —
    never silent loss."""

    def test_exactly_full_admits_without_loss(self):
        for overflow in OVERFLOW_POLICIES:
            broker = make_broker()
            broker.open("box", capacity=3, overflow=overflow)
            for i in range(3):  # fills to exactly capacity
                broker.publish("box", i)
            stats = broker.stats("box")
            assert stats.depth == 3 and stats.dropped == 0 and stats.rejected == 0

    def test_reject_raises_typed_and_enqueues_nowhere(self):
        broker = make_broker()
        broker.open("box", capacity=2, overflow="reject")
        broker.publish("box", 0)
        broker.publish("box", 1)
        with pytest.raises(MailboxFullError) as err:
            broker.publish("box", 2)
        assert err.value.mailbox == "box"
        assert err.value.capacity == 2
        stats = broker.stats("box")
        assert stats.depth == 2 and stats.rejected == 1 and stats.published == 2
        sub = broker.subscribe("box")
        assert [d.payload for d in drain(sub)] == [0, 1]

    def test_drop_oldest_evicts_head_with_event(self):
        bus = EventBus()
        drops = []
        bus.subscribe("mbox.dropped", lambda e: drops.append(e.payload))
        broker = make_broker(events=bus)
        broker.open("box", capacity=2, overflow="drop-oldest")
        for i in range(3):
            broker.publish("box", i)
        assert len(drops) == 1
        assert drops[0]["seq"] == 1 and drops[0]["reason"] == "overflow"
        sub = broker.subscribe("box")
        assert [d.seq for d in drain(sub)] == [2, 3]
        assert broker.stats("box").high_water == 2  # bound never exceeded

    def test_block_with_deadline_expires_deterministically(self):
        clock = VirtualClock()
        broker = MessageBroker(clock=clock)
        broker.open("box", capacity=1, overflow="block-with-deadline")
        broker.publish("box", 0)
        start = clock.now()
        with pytest.raises(HarnessTimeoutError):
            broker.publish("box", 1, timeout_s=0.25)
        # the virtual clock advanced to exactly the deadline — reproducible
        assert clock.now() == pytest.approx(start + 0.25)
        assert broker.stats("box").depth == 1

    def test_block_with_deadline_unblocks_when_consumer_frees_space(self):
        broker = MessageBroker()  # wall clock: real condvar park
        broker.open("box", capacity=1, overflow="block-with-deadline")
        broker.publish("box", 0)
        sub = broker.subscribe("box")
        result = {}

        def blocked_publish():
            result["seq"] = broker.publish("box", 1, timeout_s=5.0)

        publisher = threading.Thread(target=blocked_publish)
        publisher.start()
        time.sleep(0.05)  # let the publisher park
        first = sub.receive(timeout=1.0)  # pop frees the slot
        publisher.join(timeout=5.0)
        assert not publisher.is_alive()
        assert result["seq"] == 2 and first.seq == 1

    def test_all_readers_reject_checks_every_subscriber(self):
        broker = make_broker()
        broker.open("news", mode="all-readers", capacity=2, overflow="reject")
        fast = broker.subscribe("news", "fast")
        slow = broker.subscribe("news", "slow")
        broker.publish("news", 0)
        broker.publish("news", 1)
        drain(fast)  # fast is empty again; slow still holds 2
        with pytest.raises(MailboxFullError, match="slow"):
            broker.publish("news", 2)
        # the rejected message reached nobody — not even the fast reader
        assert fast.try_receive() is None


class TestPollSemantics:
    def test_timeout_zero_returns_queued_message(self):
        broker = make_broker()
        broker.open("box")
        sub = broker.subscribe("box")
        broker.publish("box", "ready")
        assert sub.receive(timeout=0).payload == "ready"

    def test_timeout_zero_on_empty_raises_without_blocking(self):
        broker = MessageBroker()  # wall clock: prove no real waiting
        broker.open("box")
        sub = broker.subscribe("box")
        started = time.monotonic()
        with pytest.raises(HarnessTimeoutError):
            sub.receive(timeout=0)
        assert time.monotonic() - started < 0.1

    def test_try_receive_returns_none_on_empty(self):
        broker = make_broker()
        broker.open("box")
        sub = broker.subscribe("box")
        assert sub.try_receive() is None

    def test_blocking_receive_woken_by_publish(self):
        broker = MessageBroker()
        broker.open("box")
        sub = broker.subscribe("box")
        got = {}

        def receiver():
            got["delivery"] = sub.receive(timeout=5.0)

        thread = threading.Thread(target=receiver)
        thread.start()
        time.sleep(0.05)
        broker.publish("box", "wake up")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got["delivery"].payload == "wake up"

    def test_closed_subscription_is_typed_not_silent(self):
        broker = make_broker()
        broker.open("box")
        sub = broker.subscribe("box")
        sub.close()
        assert sub.closed
        with pytest.raises(MessagingError):
            sub.try_receive()


class TestDurability:
    def test_snapshot_restore_requeues_in_flight(self):
        broker = make_broker()
        broker.open("orders", capacity=16)
        sub = broker.subscribe("orders", "worker")
        for i in range(3):
            broker.publish("orders", {"n": i})
        held = sub.receive(timeout=0)  # in flight, never acked
        assert held.seq == 1

        blob = pickle.dumps(broker.snapshot())  # the failover checkpoint path
        revived = make_broker()
        revived.restore(pickle.loads(blob))

        assert revived.describe("orders")["capacity"] == 16
        fresh = revived.subscribe("orders", "successor")
        out = drain(fresh)
        assert [d.seq for d in out] == [1, 2, 3]
        assert out[0].redelivered is True and out[0].attempt == 2
        assert out[1].redelivered is False

    def test_restored_seq_numbers_continue(self):
        broker = make_broker()
        broker.open("orders")
        broker.publish("orders", "a")
        revived = make_broker()
        revived.restore(pickle.loads(pickle.dumps(broker.snapshot())))
        assert revived.publish("orders", "b") == 2


class TestEventsAndStats:
    def test_redelivered_event_carries_seqs_and_subscriber(self):
        bus = EventBus()
        seen = []
        bus.subscribe("mbox.redelivered", lambda e: seen.append(e.payload))
        broker = make_broker(events=bus, node="n0")
        broker.open("jobs", capacity=8)
        sub = broker.subscribe("jobs", "worker-a")
        broker.publish("jobs", 0)
        broker.publish("jobs", 1)
        sub.receive(timeout=0)
        sub.receive(timeout=0)
        sub.close(requeue=True)
        assert seen == [{"mailbox": "jobs", "seqs": [1, 2], "subscriber": "worker-a"}]

    def test_dropped_event_names_mailbox_seq_and_reason(self):
        bus = EventBus()
        seen = []
        bus.subscribe("mbox.dropped", lambda e: seen.append(e.payload))
        broker = make_broker(events=bus)
        broker.open("jobs", capacity=8)
        sub = broker.subscribe("jobs")
        broker.publish("jobs", "x", publisher="origin")
        sub.receive(timeout=0)
        sub.close(requeue=False)  # explicit discard: dropped, with event
        assert seen == [{"mailbox": "jobs", "seq": 1,
                         "reason": "discarded_on_close", "subscriber": "1",
                         "publisher": "origin"}]

    def test_high_water_tracks_peak_backlog(self):
        broker = make_broker()
        broker.open("jobs", capacity=10)
        for i in range(7):
            broker.publish("jobs", i)
        sub = broker.subscribe("jobs")
        drain(sub)
        stats = broker.stats("jobs")
        assert stats.high_water == 7 and stats.depth == 0
        assert stats.as_dict()["high_water"] == 7
