"""``hmsg`` — the message-transport plugin (Figure 2's "message transport").

Provides tagged mailboxes addressable across kernels: any plugin (notably
``hpvmd``) can post a message to ``(host, mailbox)`` and the receiving
kernel's hmsg queues it for a local ``recv``.  Payloads ride the kernel's
XDR-encoded inter-kernel channel, so bytes are charged to the fabric.
"""

from __future__ import annotations

import collections
import threading
from typing import Any

from repro.core.plugin import Plugin
from repro.util.errors import HarnessTimeoutError, PluginError

__all__ = ["MessageTransportPlugin", "Envelope"]


class Envelope:
    """One queued message: source host, integer tag, payload."""

    __slots__ = ("src_host", "tag", "data")

    def __init__(self, src_host: str, tag: int, data: Any):
        self.src_host = src_host
        self.tag = tag
        self.data = data

    def __repr__(self) -> str:
        return f"Envelope(src={self.src_host!r}, tag={self.tag})"


class MessageTransportPlugin(Plugin):
    """Mailbox-based message passing between kernels."""

    plugin_name = "hmsg"
    provides = ("message-transport",)

    def __init__(self) -> None:
        super().__init__()
        self._cond = threading.Condition()
        self._queues: dict[str, collections.deque[Envelope]] = {}

    # -- local API -----------------------------------------------------------------

    def open_mailbox(self, name: str) -> None:
        """Create a mailbox (idempotent)."""
        with self._cond:
            self._queues.setdefault(name, collections.deque())

    def close_mailbox(self, name: str) -> None:
        with self._cond:
            self._queues.pop(name, None)

    def send(self, dst_host: str, mailbox: str, data: Any, tag: int = 0) -> None:
        """Deliver *data* to a mailbox on *dst_host* (possibly this host)."""
        if self.kernel is None:
            raise PluginError("hmsg is not attached")
        if dst_host == self.kernel.host_name:
            self._enqueue(self.kernel.host_name, mailbox, tag, data)
            return
        self.kernel.send(dst_host, "message-transport", {
            "mailbox": mailbox, "tag": tag, "data": data,
        })

    def recv(self, mailbox: str, tag: int | None = None, timeout: float = 10.0) -> Envelope:
        """Blocking receive; ``tag=None`` matches any tag."""
        deadline_exceeded = [False]

        def ready() -> Envelope | None:
            queue = self._queues.get(mailbox)
            if not queue:
                return None
            if tag is None:
                return queue.popleft()
            for i, envelope in enumerate(queue):
                if envelope.tag == tag:
                    del queue[i]
                    return envelope
            return None

        with self._cond:
            if mailbox not in self._queues:
                raise PluginError(f"mailbox {mailbox!r} is not open")
            result = ready()
            end = None
            import time as _time

            end = _time.monotonic() + timeout
            while result is None:
                remaining = end - _time.monotonic()
                if remaining <= 0:
                    raise HarnessTimeoutError(
                        f"recv on {mailbox!r} (tag={tag}) timed out after {timeout}s"
                    )
                self._cond.wait(remaining)
                result = ready()
            return result

    def try_recv(self, mailbox: str, tag: int | None = None) -> Envelope | None:
        """Non-blocking receive."""
        with self._cond:
            queue = self._queues.get(mailbox)
            if queue is None:
                raise PluginError(f"mailbox {mailbox!r} is not open")
            if tag is None:
                return queue.popleft() if queue else None
            for i, envelope in enumerate(queue):
                if envelope.tag == tag:
                    del queue[i]
                    return envelope
            return None

    def pending(self, mailbox: str) -> int:
        with self._cond:
            queue = self._queues.get(mailbox)
            return len(queue) if queue else 0

    # -- inter-kernel delivery ---------------------------------------------------------

    def handle_message(self, src_host: str, payload: dict) -> bool:
        """Kernel-channel entry point for remote sends."""
        self._enqueue(src_host, payload["mailbox"], payload.get("tag", 0), payload.get("data"))
        return True

    def _enqueue(self, src_host: str, mailbox: str, tag: int, data: Any) -> None:
        with self._cond:
            queue = self._queues.get(mailbox)
            if queue is None:
                # auto-open on first delivery; receivers may subscribe late
                queue = self._queues.setdefault(mailbox, collections.deque())
            queue.append(Envelope(src_host, tag, data))
            self._cond.notify_all()
