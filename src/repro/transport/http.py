"""HTTP transport — the carrier for the standard SOAP binding.

"HTTP is an excellent choice for point to point communication due to its
ubiquitous availability and the fact that it is traditionally tolerable to
firewalls.  However, in case of components running in the same local system,
exchange of data through an HTTP server and TCP/IP stack is an obvious
overhead." (Section 5.)  This module is that overhead, implemented honestly:
full request/status/header parsing per call, ``http.client`` with persistent
connections on the client side.

The server side runs on the event-loop core by default
(:mod:`repro.transport.reactor`): one reactor thread multiplexes every
keep-alive connection, an incremental HTTP/1.1 parser reassembles requests,
and admission control sheds overload with an immediate ``503 Service
Unavailable`` (clients raise it as
:class:`~repro.util.errors.ServerBusyError`).  ``reactor=False`` (env
``REPRO_SERVER_REACTOR=0``) restores the stdlib ``ThreadingHTTPServer``
thread-per-request baseline.
"""

from __future__ import annotations

import http.client
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import trace as _trace
from repro.transport import reactor as _reactor
from repro.transport.base import RequestHandler, TransportMessage, parse_url
from repro.util.errors import ServerBusyError, TransportClosedError, TransportError

__all__ = ["HttpListener", "HttpTransport"]

#: Ceiling on a request's header block; a peer that never finishes its
#: headers within this many bytes is protocol-broken, not just slow.
_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_BUSY_BODY = b"server at capacity: request shed at admission"


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection with Nagle disabled (symmetric with the server)."""

    def connect(self) -> None:
        super().connect()
        import socket as _socket

        self.sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)


# -- reactor server core -------------------------------------------------------


def _head(status: int, content_type: str, length: int, close: bool,
          extra: str = "") -> bytes:
    return (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {length}\r\n"
        f"{extra}"
        f"{'Connection: close' + chr(13) + chr(10) if close else ''}"
        "\r\n"
    ).encode("latin-1")


class _HttpJob(_reactor.Job):
    """One parsed HTTP request awaiting dispatch on the worker pool."""

    __slots__ = ("method", "path", "headers", "body", "close_after", "_routes")

    def __init__(self, method: str, path: str, headers: dict[str, str],
                 body: bytes, close_after: bool, routes: dict):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.close_after = close_after
        self._routes = routes

    def _respond(self, status: int, content_type: str, body) -> tuple:
        return (_head(status, content_type, len(body), self.close_after), body)

    def busy_reply(self) -> tuple:
        return (
            _head(503, "text/plain", len(_BUSY_BODY), self.close_after,
                  extra="Retry-After: 1\r\n"),
            _BUSY_BODY,
        )

    def run(self, app_handler):
        if self.method == "GET":
            route = self._routes.get(self.path.partition("?")[0])
            if route is None:
                return self._respond(404, "text/plain", b"not found")
            try:
                content_type, body = route()
            except Exception as exc:  # route errors answer 500, never crash
                return self._respond(500, "text/plain", str(exc).encode("utf-8"))
            return self._respond(200, content_type, body)
        if self.method != "POST":
            return self._respond(405, "text/plain", b"method not allowed")
        content_type = self.headers.get("content-type", "application/octet-stream")
        message = TransportMessage(content_type, self.body)
        token = None
        if _trace.ENABLED:
            header = self.headers.get(_trace.TRACE_HEADER.lower())
            if header:
                try:
                    token = _trace.activate(_trace.from_header(header))
                except Exception:  # noqa: BLE001 — any mangled/truncated
                    token = None  # header must never fail the request
        try:
            response = app_handler(message)
            status = 200
        except Exception as exc:
            response = TransportMessage("text/plain", str(exc).encode("utf-8"))
            status = 500
        finally:
            if token is not None:
                _trace.deactivate(token)
        return self._respond(status, response.content_type, response.payload)


class _HttpParser(_reactor.MessageParser):
    """Incremental HTTP/1.1 request reassembly for the reactor's recv loop.

    Headers are variable-length, so unlike the TCP v2 frame parser this one
    reads through a reused scratch buffer and accumulates until the blank
    line; the body (``Content-Length`` framing only — chunked uploads are
    not part of the SOAP contract) is then split off exactly.
    """

    __slots__ = ("_scratch", "_buf", "_pending", "_need", "_routes", "_max")

    def __init__(self, routes: dict, max_message: int = _reactor.DEFAULT_MAX_MESSAGE):
        self._scratch = bytearray(64 * 1024)
        self._buf = bytearray()
        self._pending: tuple | None = None  # (method, path, headers, close_after)
        self._need = 0
        self._routes = routes
        self._max = max_message

    @property
    def mid_message(self) -> bool:
        return bool(self._buf) or self._pending is not None

    def next_buffer(self) -> memoryview:
        return memoryview(self._scratch)

    def advance(self, n: int) -> list:
        self._buf += memoryview(self._scratch)[:n]
        jobs: list[_HttpJob] = []
        while True:
            job = self._try_parse()
            if job is None:
                return jobs
            jobs.append(job)

    def _try_parse(self) -> _HttpJob | None:
        if self._pending is None:
            end = self._buf.find(b"\r\n\r\n")
            if end < 0:
                if len(self._buf) > _MAX_HEADER_BYTES:
                    raise TransportError("http header block too large")
                return None
            block = bytes(self._buf[:end]).decode("latin-1")
            del self._buf[: end + 4]
            lines = block.split("\r\n")
            parts = lines[0].split()
            if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                raise TransportError(f"bad http request line: {lines[0]!r}")
            method, path, version = parts
            headers: dict[str, str] = {}
            for line in lines[1:]:
                name, sep, value = line.partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            connection = headers.get("connection", "").lower()
            close_after = connection == "close" or (
                version == "HTTP/1.0" and connection != "keep-alive"
            )
            try:
                need = int(headers.get("content-length", "0"))
            except ValueError as exc:
                raise TransportError("bad content-length") from exc
            if need < 0 or need > self._max:
                raise TransportError(f"http body of {need} bytes out of range")
            self._pending = (method, path, headers, close_after)
            self._need = need
        if len(self._buf) < self._need:
            return None
        body = bytes(self._buf[: self._need])
        del self._buf[: self._need]
        method, path, headers, close_after = self._pending
        self._pending = None
        self._need = 0
        return _HttpJob(method, path, headers, body, close_after, self._routes)


# -- threaded baseline (reactor=False) -----------------------------------------


class _SoapHttpHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # StreamRequestHandler reads this from the *handler* class; without it,
    # small request/response pairs stall ~40ms on Nagle + delayed ACK
    disable_nagle_algorithm = True

    # Silence per-request logging; benchmarks hammer this path.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_POST(self) -> None:  # noqa: N802  (stdlib naming)
        server: "_ThreadedServer" = self.server  # type: ignore[assignment]
        length = int(self.headers.get("Content-Length", "0"))
        payload = self.rfile.read(length)
        content_type = self.headers.get("Content-Type", "application/octet-stream")
        message = TransportMessage(content_type, payload)
        token = None
        if _trace.ENABLED:
            header = self.headers.get(_trace.TRACE_HEADER)
            if header:
                try:
                    token = _trace.activate(_trace.from_header(header))
                except Exception:  # noqa: BLE001 — any mangled/truncated
                    token = None  # header must never fail the request
        try:
            response = server.app_handler(message)
            status = 200
        except Exception as exc:
            response = TransportMessage("text/plain", str(exc).encode("utf-8"))
            status = 500
        finally:
            if token is not None:
                _trace.deactivate(token)
        self.send_response(status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.payload)))
        self.end_headers()
        self.wfile.write(response.payload)
        self.wfile.flush()

    def do_GET(self) -> None:  # noqa: N802  (stdlib naming)
        """Side-channel GET routes (e.g. the ``/metrics`` Prometheus
        endpoint) registered on the listener; the SOAP POST path is
        untouched."""
        server: "_ThreadedServer" = self.server  # type: ignore[assignment]
        route = server.get_routes.get(self.path.partition("?")[0])
        if route is None:
            status, content_type, body = 404, "text/plain", b"not found"
        else:
            try:
                content_type, body = route()
                status = 200
            except Exception as exc:  # route errors answer 500, never crash
                status, content_type = 500, "text/plain"
                body = str(exc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.wfile.flush()


class _ThreadedServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app_handler: RequestHandler, get_routes: dict):
        super().__init__(address, _SoapHttpHandler)
        self.app_handler = app_handler
        self.get_routes = get_routes


class HttpListener:
    """An HTTP POST endpoint; URL scheme ``http://host:port/``.

    GET side-channels — pages that report rather than invoke — register
    via :meth:`add_get_route`; a route is a no-argument callable returning
    ``(content_type, body_bytes)``.

    ``workers``/``queue_max``/``per_conn_max``/``read_deadline_s`` mirror
    :class:`~repro.transport.tcp.TcpListener`: the reactor core multiplexes
    keep-alive connections on one thread, admission control sheds overload
    with 503, and slow-loris peers are dropped at the read deadline.
    """

    def __init__(
        self,
        handler: RequestHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 32,
        reactor: bool | None = None,
        queue_max: int | None = None,
        per_conn_max: int | None = None,
        read_deadline_s: float | None = None,
        drain_s: float = 1.0,
    ):
        self._drain_s = drain_s
        self._get_routes: dict[str, object] = {}
        if reactor is None:
            import repro.transport.tcp as _tcp

            reactor = _tcp._reactor_default()
        self._reactor = reactor
        if self._reactor:
            routes = self._get_routes
            self._server = _reactor.ReactorServer(
                (host, port),
                handler,
                lambda: _HttpParser(routes),
                workers=workers,
                queue_max=queue_max,
                per_conn_max=per_conn_max,
                read_deadline_s=read_deadline_s,
                name="http-reactor",
            )
            self._host, self._port = self._server.address
            self._thread = None
        else:
            self._server = _ThreadedServer((host, port), handler, self._get_routes)
            self._host, self._port = self._server.server_address[:2]
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name=f"http-listener-{self._port}",
                daemon=True,
            )
            self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}/"

    @property
    def port(self) -> int:
        return self._port

    @property
    def admission(self) -> "_reactor.AdmissionController | None":
        """The live admission controller (None on the threaded baseline)."""
        return getattr(self._server, "admission", None)

    def add_get_route(self, path: str, route) -> None:
        """Serve GET *path* from *route* ``() -> (content_type, bytes)``."""
        if not path.startswith("/"):
            raise TransportError(f"GET route path must start with '/': {path!r}")
        self._get_routes[path] = route

    def close(self) -> None:
        if self._reactor:
            self._server.close(self._drain_s)
        else:
            self._server.shutdown()
            self._server.server_close()


class HttpTransport:
    """Client POSTing payloads to an :class:`HttpListener` (keep-alive)."""

    def __init__(self, url: str, connect_timeout: float = 5.0):
        scheme, rest = parse_url(url)
        if scheme != "http":
            raise TransportError(f"not an http url: {url!r}")
        host_port, _, path = rest.partition("/")
        host, _, port_text = host_port.rpartition(":")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise TransportError(f"bad http url (no port): {url!r}") from exc
        self._path = "/" + path
        self._url = url
        self._lock = threading.Lock()
        self._conn = _NoDelayHTTPConnection(host, port, timeout=connect_timeout)
        self._closed = False

    #: Failures meaning the keep-alive connection went stale while idle —
    #: the server closed it before (or instead of) answering, so no response
    #: was received and one transparent retry on a fresh connection is safe.
    #: (``RemoteDisconnected`` subclasses both ``BadStatusLine`` and
    #: ``ConnectionResetError``; the tuple names the whole family.)
    _STALE_ERRORS = (
        http.client.BadStatusLine,
        http.client.RemoteDisconnected,
        ConnectionResetError,
        BrokenPipeError,
    )

    def _round_trip(self, message: TransportMessage):
        headers = {"Content-Type": message.content_type}
        if _trace.ENABLED:
            ctx = _trace.current()
            if ctx is not None:
                headers[_trace.TRACE_HEADER] = _trace.to_header(ctx)
        self._conn.request("POST", self._path, body=message.payload, headers=headers)
        response = self._conn.getresponse()
        return response, response.read()

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        with self._lock:
            if self._closed:
                raise TransportClosedError("transport closed")
            if timeout is not None:
                self._conn.timeout = timeout
            try:
                response, payload = self._round_trip(message)
            except self._STALE_ERRORS:
                # stale persistent connection: reconnect and retry once,
                # instead of surfacing a transport fault to the policy layer
                self._conn.close()
                try:
                    response, payload = self._round_trip(message)
                except (ConnectionError, http.client.HTTPException, OSError) as exc:
                    self._conn.close()
                    raise TransportError(
                        f"http request to {self._url} failed: {exc}"
                    ) from exc
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self._conn.close()
                raise TransportError(f"http request to {self._url} failed: {exc}") from exc
        if response.status == 503:
            raise ServerBusyError(
                f"{self._url} shed the request: "
                f"{payload.decode('utf-8', 'replace')[:200]}"
            )
        if response.status != 200:
            raise TransportError(
                f"http {response.status} from {self._url}: "
                f"{payload.decode('utf-8', 'replace')[:200]}"
            )
        return TransportMessage(
            response.getheader("Content-Type", "application/octet-stream"), payload
        )

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()
