"""The streaming SOAP fast path against its tree-based reference.

The template/expat implementation must be *byte-identical* on the wire and
*value-identical* on decode to the original infoset implementation — these
tests pin that contract, plus the fault/round-trip behaviour over every
listener kind and template-cache isolation under concurrent stubs.
"""

import threading

import numpy as np
import pytest

from repro.soap import envelope as env
from repro.soap.codec import SoapMessageCodec
from repro.util.errors import EncodingError, SoapFaultError, XmlError

NSENV = "http://schemas.xmlsoap.org/soap/envelope/"
NSXSI = "http://www.w3.org/2001/XMLSchema-instance"

VALUE_MATRIX = [
    (),
    (1, 2.5, "hi", True, False, None),
    ("",),
    (b"",),
    (b"\x00\x01binary",),
    ("unié <&> \"q'\"",),
    ({"k1": [1, 2, 3], "nested": {"a": None, "b": 2.0}},),
    ({},),
    ([],),
    ([1, 2, 3],),
    ([1.5, 2.5],),
    (["a", "b"],),
    (np.arange(12, dtype=np.float64).reshape(3, 4),),
    (np.array([], dtype=np.int32),),
    (np.float32(1.5), np.int64(7)),
    ((1, (2, 3)),),
    ({"arr": np.arange(5, dtype=np.uint8)},),
]


def _norm(v):
    if isinstance(v, np.ndarray):
        return ("nd", v.dtype.name, v.shape, v.tolist())
    if isinstance(v, (list, tuple)):
        return [_norm(x) for x in v]
    if isinstance(v, dict):
        return {k: _norm(x) for k, x in v.items()}
    return (type(v).__name__, v)


class TestByteIdentity:
    """Fast builders emit exactly the bytes the tree builders emit."""

    @pytest.mark.parametrize("mode", ["base64", "items"])
    @pytest.mark.parametrize("args", VALUE_MATRIX, ids=range(len(VALUE_MATRIX)))
    def test_call_bytes_identical(self, mode, args):
        fast = env.build_call_envelope("svc#1", "doIt", args, mode)
        tree = env.build_call_envelope_tree("svc#1", "doIt", args, mode)
        assert fast == tree

    @pytest.mark.parametrize("mode", ["base64", "items"])
    @pytest.mark.parametrize("args", VALUE_MATRIX, ids=range(len(VALUE_MATRIX)))
    def test_reply_bytes_identical(self, mode, args):
        value = args[0] if args else None
        fast = env.build_reply_envelope(value, array_mode=mode)
        tree = env.build_reply_envelope_tree(value, array_mode=mode)
        assert fast == tree

    @pytest.mark.parametrize(
        "fault",
        [
            ("soapenv:Server", "boom", "d<e"),
            ("Client", "", ""),
            ("x", "msg & more", ""),
        ],
    )
    def test_fault_bytes_identical(self, fault):
        assert env.build_fault_envelope(*fault) == env.build_fault_envelope_tree(*fault)

    def test_quoted_target_attribute(self):
        fast = env.build_call_envelope('a"b', "op", ())
        assert fast == env.build_call_envelope_tree('a"b', "op", ())
        assert b"target='a\"b'" in fast

    def test_unknown_array_mode_rejected_once_args_present(self):
        # zero args never touch the mode (matching the tree path), one does
        env.build_call_envelope("t", "op", (), "bogus")
        with pytest.raises(EncodingError, match="array mode"):
            env.build_call_envelope("t", "op", (1,), "bogus")

    def test_unencodable_type_rejected(self):
        with pytest.raises(EncodingError, match="cannot SOAP-encode"):
            env.build_call_envelope("t", "op", (object(),))


class TestPullDecoder:
    """The expat decoder agrees with the tree parser — values and errors."""

    @pytest.mark.parametrize("mode", ["base64", "items"])
    @pytest.mark.parametrize("args", VALUE_MATRIX, ids=range(len(VALUE_MATRIX)))
    def test_call_roundtrip_matches_tree(self, mode, args):
        wire = env.build_call_envelope("svc#1", "doIt", args, mode)
        fast = env.parse_call_envelope(wire)
        tree = env.parse_call_envelope_tree(wire)
        assert fast[:2] == tree[:2] == ("svc#1", "doIt")
        assert [_norm(a) for a in fast[2]] == [_norm(a) for a in tree[2]]

    def test_indented_foreign_envelope(self):
        doc = (
            f'<e:Envelope xmlns:e="{NSENV}">\n  <e:Header><x/></e:Header>\n'
            f'  <e:Body>\n    <op target="t">\n'
            f'      <arg0 xsi:type="xsd:long" xmlns:xsi="{NSXSI}">7</arg0>\n'
            f"    </op>\n  </e:Body>\n</e:Envelope>"
        ).encode()
        assert env.parse_call_envelope(doc) == ("t", "op", [7])
        assert env.parse_call_envelope(doc) == env.parse_call_envelope_tree(doc)

    def test_default_namespace_envelope_falls_back_to_tree(self):
        doc = (
            f'<Envelope xmlns="{NSENV}"><Body><op target="t">'
            f"<arg0>hi</arg0></op></Body></Envelope>"
        ).encode()
        assert env.parse_call_envelope(doc) == env.parse_call_envelope_tree(doc)

    @pytest.mark.parametrize(
        "doc,exc,match",
        [
            (b"<soapenv:Envelope", XmlError, "malformed XML"),
            (b"<foo><Body/></foo>", EncodingError, "not a SOAP envelope"),
            (
                f'<e:Envelope xmlns:e="{NSENV}"><e:Header/></e:Envelope>'.encode(),
                EncodingError,
                "no <Body>",
            ),
            (
                f'<e:Envelope xmlns:e="{NSENV}"><e:Body/></e:Envelope>'.encode(),
                EncodingError,
                "body is empty",
            ),
        ],
    )
    def test_error_paths_match_tree(self, doc, exc, match):
        with pytest.raises(exc, match=match):
            env.parse_call_envelope(doc)
        with pytest.raises(exc, match=match):
            env.parse_call_envelope_tree(doc)

    def test_reply_missing_return(self):
        doc = (
            f'<e:Envelope xmlns:e="{NSENV}"><e:Body><R><x>5</x></R>'
            f"</e:Body></e:Envelope>"
        ).encode()
        with pytest.raises(EncodingError, match="lacks a <return>"):
            env.parse_reply_envelope(doc)

    def test_struct_entry_missing_key(self):
        doc = (
            f'<e:Envelope xmlns:e="{NSENV}"><e:Body><R>'
            f'<return xsi:type="harness:Struct" xmlns:xsi="{NSXSI}">'
            f"<entry>5</entry></return></R></e:Body></e:Envelope>"
        ).encode()
        with pytest.raises(XmlError):
            env.parse_reply_envelope(doc)

    def test_unknown_xsi_type(self):
        doc = (
            f'<e:Envelope xmlns:e="{NSENV}"><e:Body><R>'
            f'<return xsi:type="xsd:wat" xmlns:xsi="{NSXSI}">5</return>'
            f"</R></e:Body></e:Envelope>"
        ).encode()
        with pytest.raises(EncodingError, match="unknown xsi:type"):
            env.parse_reply_envelope(doc)

    def test_fault_defaults_and_typed_faultcode(self):
        bare = (
            f'<e:Envelope xmlns:e="{NSENV}"><e:Body><e:Fault/></e:Body></e:Envelope>'
        ).encode()
        with pytest.raises(SoapFaultError) as info:
            env.parse_reply_envelope(bare)
        assert info.value.faultcode == "soapenv:Server"
        assert info.value.faultstring == "unknown fault"

        typed = (
            f'<e:Envelope xmlns:e="{NSENV}"><e:Body><e:Fault>'
            f'<faultcode xsi:type="xsd:string" xmlns:xsi="{NSXSI}">Client</faultcode>'
            f"<faultstring>bad</faultstring><detail>why</detail>"
            f"</e:Fault></e:Body></e:Envelope>"
        ).encode()
        with pytest.raises(SoapFaultError) as info:
            env.parse_reply_envelope(typed)
        assert (info.value.faultcode, info.value.faultstring, info.value.detail) == (
            "Client", "bad", "why",
        )

    def test_input_type_flexibility(self):
        wire = env.build_call_envelope("t", "op", (1, "x"))
        expected = env.parse_call_envelope(wire)
        assert env.parse_call_envelope(bytearray(wire)) == expected
        assert env.parse_call_envelope(memoryview(wire)) == expected
        assert env.parse_call_envelope(wire.decode("utf-8")) == expected


class TestCrossModeDecoding:
    """A decoder never needs to know which array mode the peer used."""

    @pytest.mark.parametrize("encode_mode", ["base64", "items"])
    @pytest.mark.parametrize("decode_mode", ["base64", "items"])
    def test_items_and_base64_cross_decode(self, encode_mode, decode_mode, rng):
        a = rng.random((4, 5))
        encoder = SoapMessageCodec(encode_mode)
        decoder = SoapMessageCodec(decode_mode)
        target, op, args = decoder.decode_call(encoder.encode_call("M#0", "f", (a,)))
        assert (target, op) == ("M#0", "f")
        assert np.allclose(args[0], a)
        assert args[0].shape == a.shape
        back = decoder.decode_reply(encoder.encode_reply(a))
        assert np.allclose(back, a)


class TestSingleParseFaultApi:
    def test_decode_reply_ex_success(self):
        codec = SoapMessageCodec()
        result, fault = codec.decode_reply_ex(codec.encode_reply([1, 2, 3]))
        assert np.array_equal(result, [1, 2, 3])
        assert fault is None

    def test_decode_reply_ex_fault(self):
        codec = SoapMessageCodec()
        result, fault = codec.decode_reply_ex(codec.encode_reply(fault="kaput"))
        assert result is None
        assert isinstance(fault, SoapFaultError)
        assert fault.faultstring == "kaput"

    def test_fault_to_exception_single_parse(self):
        codec = SoapMessageCodec()
        assert codec.fault_to_exception(codec.encode_reply(0)) is None
        fault = codec.fault_to_exception(codec.encode_reply(fault="f"))
        assert isinstance(fault, SoapFaultError)


class TestStubWiring:
    """SOAP codecs now expose ``call_encoder`` — stubs pick it up like XDR."""

    def test_codec_call_encoder_matches_encode_call(self, rng):
        codec = SoapMessageCodec()
        a = rng.random(16)
        encoder = codec.call_encoder("M#0", "multiply")
        assert bytes(encoder((a, a))) == codec.encode_call("M#0", "multiply", (a, a))

    def test_stub_plan_uses_template(self):
        from repro.bindings.stubs import TransportStub

        codec = SoapMessageCodec()

        class _NullTransport:
            def request(self, message, timeout=None):
                raise AssertionError("not used")

        stub = TransportStub(("op",), "T#1", codec, _NullTransport(), "soap")
        content_type, encoder = stub._plan("op")
        assert content_type == codec.content_type
        assert encoder((5,)) == codec.encode_call("T#1", "op", (5,))

    def test_template_cache_concurrent_stubs_no_bleed(self):
        """Many threads on distinct (target, operation) pairs: every envelope
        must carry exactly its own target/operation/args."""
        errors = []

        def worker(idx):
            target, op = f"svc#{idx}", f"op{idx}"
            try:
                for i in range(200):
                    wire = env.build_call_envelope(target, op, (i, f"p{idx}"))
                    t, o, args = env.parse_call_envelope(wire)
                    if (t, o, args) != (target, op, [i, f"p{idx}"]):
                        errors.append((idx, i, t, o, args))
                        return
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((idx, repr(exc)))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestFaultsOverEveryListener:
    """A dispatch error comes back as a decodable SOAP fault on each binding."""

    @pytest.fixture
    def server(self):
        from repro.bindings.dispatcher import ObjectDispatcher
        from repro.bindings.server import BindingServer
        from repro.plugins.services import CounterService

        dispatcher = ObjectDispatcher()
        dispatcher.register("Counter#0", CounterService())
        server = BindingServer(dispatcher)
        yield server
        server.close()

    def _assert_fault_roundtrip(self, transport, content_type="text/xml"):
        from repro.transport import TransportMessage

        codec = SoapMessageCodec()
        response = transport.request(
            TransportMessage(content_type, codec.encode_call("Ghost#9", "op", ()))
        )
        fault = codec.fault_to_exception(bytes(response.payload))
        assert isinstance(fault, SoapFaultError)
        assert "Ghost#9" in fault.faultstring
        # the listener stays usable for a real call afterwards
        response = transport.request(
            TransportMessage(content_type, codec.encode_call("Counter#0", "increment", (2,)))
        )
        assert codec.decode_reply(bytes(response.payload)) == 2

    def test_fault_over_http(self, server):
        from repro.transport import HttpTransport

        listener = server.expose_soap_http()
        client = HttpTransport(listener.url)
        try:
            self._assert_fault_roundtrip(client)
        finally:
            client.close()

    def test_fault_over_tcp(self, server):
        from repro.transport import TcpTransport

        listener = server.expose_xdr_tcp()
        client = TcpTransport(listener.url)
        try:
            self._assert_fault_roundtrip(client)
        finally:
            client.close()

    def test_fault_over_inproc(self, server):
        from repro.transport import InProcTransport

        listener = server.expose_inproc("fault-ep")
        client = InProcTransport(listener.url)
        self._assert_fault_roundtrip(client)
