"""The scenario runner's flight-recorder wiring: fault-triggered dumps,
events.jsonl references, and determinism with/without an output dir."""

from __future__ import annotations

import json

from repro.scenario.manifest import parse_manifest
from repro.scenario.runner import run_scenario

_KILL_MANIFEST = {
    "name": "flight-test",
    "description": "Kill one node; the flight recorder must dump.",
    "claim": "test fixture",
    "seed": 11,
    "duration_s": 4.0,
    "tick_s": 0.5,
    "topology": {"kind": "lan", "hosts": 3},
    "services": [
        {
            "name": "counter",
            "type": "repro.plugins.services:CounterService",
            "node": "node2",
            "restartable": True,
        }
    ],
    "self_healing": {"observer": "node0", "suspect_after": 1, "evict_after": 2},
    "workload": {
        "service": "counter",
        "from_nodes": ["node0"],
        "calls_per_tick": 2,
        "resilient": True,
        "ops": [{"op": "increment", "args": [1], "weight": 1}],
    },
    "faults": [{"at": 1.0, "action": "kill", "node": "node2"}],
    "checks": [{"check": "event_count", "topic": "dvm.member.dead", "min": 1}],
}


def test_node_death_dumps_flight_ring(tmp_path):
    result = run_scenario(parse_manifest(_KILL_MANIFEST), out_dir=tmp_path)
    assert result.passed

    dump = tmp_path / "flight-node2.jsonl"
    assert dump.exists()
    entries = [json.loads(line) for line in dump.read_text().splitlines()]
    assert entries  # non-empty: the ring saw the run leading up to the death
    kinds = {entry["kind"] for entry in entries}
    assert "event" in kinds
    # the trigger event itself made it into the ring before the dump
    topics = [e["data"].get("topic") for e in entries if e["kind"] == "event"]
    assert "dvm.member.dead" in topics

    # events.jsonl references the dump by trigger, subject, and filename
    events = [
        json.loads(line)
        for line in (tmp_path / "events.jsonl").read_text().splitlines()
    ]
    dumped = [e for e in events if e["topic"] == "obs.flight.dumped"]
    assert dumped
    payload = dumped[0]["payload"]
    assert payload == {
        "trigger": "dvm.member.dead",
        "node": "node2",
        "file": "flight-node2.jsonl",
    }


def test_dump_announcement_is_deterministic_without_out_dir(tmp_path):
    """Same seed, with and without artifacts on disk: identical event
    streams — the soak harness's determinism check depends on it."""
    manifest = parse_manifest(_KILL_MANIFEST)
    with_dir = run_scenario(manifest, out_dir=tmp_path / "a")
    without_dir = run_scenario(manifest)
    assert with_dir.events_sha256 == without_dir.events_sha256
    assert not list((tmp_path / "a").glob("../b/*"))  # no stray writes


def test_dump_debounced_per_subject(tmp_path):
    """One node death dumps once even though later rounds republish
    nothing new for that subject."""
    run = run_scenario(parse_manifest(_KILL_MANIFEST), out_dir=tmp_path)
    assert run.passed
    events = [
        json.loads(line)
        for line in (tmp_path / "events.jsonl").read_text().splitlines()
    ]
    dumped = [e for e in events if e["topic"] == "obs.flight.dumped"]
    assert len(dumped) == len({e["payload"]["node"] for e in dumped})


def test_metric_deltas_ride_the_ring(tmp_path):
    run_scenario(parse_manifest(_KILL_MANIFEST), out_dir=tmp_path)
    entries = [
        json.loads(line)
        for line in (tmp_path / "flight-node2.jsonl").read_text().splitlines()
    ]
    metric_entries = [e for e in entries if e["kind"] == "metrics"]
    assert metric_entries  # per-tick counter deltas were sampled
    assert any("server.requests" in e["data"] for e in metric_entries)
