"""F2 — Figure 2: the PVM plugin leveraging other plugins' services.

"The hpvmd plugin emulates the PVM daemon on each host, but leverages
process spawning, message transport, general event management, and table
lookup from other plugins — both within the same address space (same
Harness kernel) as well as in remote Harness kernels."
"""

import numpy as np
import pytest

from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hpvmd import PvmDaemonPlugin


def ring_worker(pvm, size):
    """Pass an accumulating token around a ring of PVM tasks.

    Each worker first receives its successor tid (tag 0), then forwards
    the token (tag 1) until it has made ``size`` hops.
    """
    successor = pvm.recv(tag=0, timeout=15).data
    token = pvm.recv(tag=1, timeout=15).data
    token["hops"] += 1
    token["trace"].append(pvm.tid)
    if token["hops"] < size:
        pvm.send(successor, 1, token)
    else:
        pvm.send(token["home"], 2, token)


def summing_worker(pvm, chunk_lo, chunk_hi):
    """Worker half of a master/worker sum over a float array chunk."""
    envelope = pvm.recv(tag=1, timeout=15)
    data = np.asarray(envelope.data)
    partial = float(data[chunk_lo:chunk_hi].sum())
    pvm.send(pvm.parent, 2, partial)


@pytest.fixture
def pvm_cluster():
    net = lan(3)
    with HarnessDvm("fig2", net) as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, PvmDaemonPlugin(group_server="node0"))
        yield harness, net


class TestFigure2PvmEmulation:
    def test_daemon_composes_other_plugins(self, pvm_cluster):
        harness, _ = pvm_cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        # the daemon's services ARE the other plugins' provider objects
        assert pvmd.hmsg is harness.kernel("node0").get_service("message-transport")
        assert pvmd.hproc is harness.kernel("node0").get_service("process-management")
        assert pvmd.htable is harness.kernel("node0").get_service("table-lookup")
        assert pvmd.hevent is harness.kernel("node0").get_service("event-management")

    def test_token_ring(self, pvm_cluster):
        """A size-4 PVM token ring: the classic first PVM program."""
        harness, _ = pvm_cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        console = pvmd.mytid()
        size = 4
        tids = pvmd.spawn(ring_worker, count=size, args=(size,), parent=console)
        for i, tid in enumerate(tids):
            pvmd.send(tid, 0, tids[(i + 1) % size])  # successor wiring
        pvmd.send(tids[0], 1, {"hops": 0, "trace": [], "home": console})
        token = pvmd._recv_for(console, 2, 15.0).data
        assert token["hops"] == size
        assert token["trace"] == tids  # visited in ring order
        pvmd.wait_all(tids)

    def test_master_worker_sum_across_hosts(self, pvm_cluster):
        harness, net = pvm_cluster
        pvmd0 = harness.kernel("node0").get_service("pvm")
        console = pvmd0.mytid()
        data = np.arange(1000, dtype=np.float64)

        # place one worker per host, each summing a chunk (Figure 2's
        # hpvmd spanning local and remote kernels)
        chunks = [(0, 300), (300, 700), (700, 1000)]
        tids = []
        for host, (lo, hi) in zip(("node0", "node1", "node2"), chunks):
            if host == "node0":
                tid = pvmd0.spawn(summing_worker, count=1, args=(lo, hi), parent=console)[0]
            else:
                tid = pvmd0.spawn(
                    "tests.integration.test_fig2_pvm:summing_worker",
                    count=1, where=host, args=(lo, hi), parent=console,
                )[0]
            tids.append(tid)
        for tid in tids:
            pvmd0.send(tid, 1, data)
        total = sum(pvmd0._recv_for(console, 2, 15.0).data for _ in tids)
        assert total == pytest.approx(data.sum())
        pvmd0.wait_all(tids)

    def test_cross_host_messaging_pays_fabric_cost(self, pvm_cluster):
        harness, net = pvm_cluster
        pvmd0 = harness.kernel("node0").get_service("pvm")
        console = pvmd0.mytid()
        tid = pvmd0.spawn(
            "tests.integration.test_fig2_pvm:summing_worker",
            count=1, where="node1", args=(0, 10), parent=console,
        )[0]
        before = net.total_bytes
        pvmd0.send(tid, 1, np.arange(10, dtype=np.float64))
        pvmd0._recv_for(console, 2, 15.0)
        assert net.total_bytes > before

    def test_task_directory_spans_kernels(self, pvm_cluster):
        harness, _ = pvm_cluster
        pvmd0 = harness.kernel("node0").get_service("pvm")
        remote = pvmd0.spawn(
            "tests.integration.test_fig2_pvm:summing_worker",
            count=1, where="node2", args=(0, 1), parent="",
        )[0]
        info = pvmd0.task_info(remote)
        assert info["host"] == "node2"
