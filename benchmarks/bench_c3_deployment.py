"""C3 — the deployment issue (Section 5).

Claim: e-commerce "deployment technologies do not provide adequate support
for automated service instantiation … they usually require human
interaction", motivating Harness II's "specialized lightweight component
container for volatile DVMs and short lived applications."

Reproduced series: wall time to deploy a batch of volatile components into

* the lightweight container (instantiate + register, endpoints lazy), vs
* the application-server container (WSDL validation rounds, static stub
  codegen+compile, UDDI publication, dedicated HTTP endpoint per service —
  each step real work, as a 2002 app server performed it).

Expected shape: lightweight deployment ≥10× cheaper per component.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.container import ApplicationServerContainer, LightweightContainer
from repro.plugins.services import CounterService

BATCH = 10


def _deploy_batch(container, count: int) -> None:
    for i in range(count):
        container.deploy(CounterService, name=f"volatile{i}", bindings=("local-instance",)
                         if container.container_kind == "lightweight" else ("soap",))


def test_lightweight_deploy_benchmark(benchmark):
    def run():
        with LightweightContainer(host="c3lw") as container:
            _deploy_batch(container, BATCH)

    benchmark.pedantic(run, rounds=8, iterations=1)


def test_appserver_deploy_benchmark(benchmark):
    def run():
        with ApplicationServerContainer(host="c3as") as container:
            _deploy_batch(container, BATCH)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_report_c3_deployment_cost():
    def timed(factory) -> float:
        start = time.perf_counter()
        with factory() as container:
            _deploy_batch(container, BATCH)
        return time.perf_counter() - start

    light = min(timed(lambda: LightweightContainer(host="c3lw")) for _ in range(3))
    heavy = min(timed(lambda: ApplicationServerContainer(host="c3as")) for _ in range(3))
    rows = [
        ["lightweight", BATCH, f"{light * 1e3:.2f}ms", f"{light / BATCH * 1e3:.3f}ms"],
        ["application-server", BATCH, f"{heavy * 1e3:.2f}ms", f"{heavy / BATCH * 1e3:.3f}ms"],
    ]
    print_table("C3: deploying volatile components",
                ["container", "components", "total", "per component"], rows)
    print(f"lightweight advantage: {heavy / light:.1f}x")
    assert heavy > 10 * light, (heavy, light)
