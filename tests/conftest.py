"""Shared fixtures: process-global state isolation and common builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bindings.context import LOCAL_DIRECTORY
from repro.transport.inproc import reset_inproc_namespace


@pytest.fixture(autouse=True)
def _isolate_process_globals():
    """Each test starts with empty inproc and container directories, and
    observability state (tracing switch, span ring, metric values) never
    leaks across tests."""
    from repro.obs import metrics, trace

    reset_inproc_namespace()
    LOCAL_DIRECTORY.clear()
    yield
    reset_inproc_namespace()
    LOCAL_DIRECTORY.clear()
    trace.enable(False)
    trace.recorder.clear()
    metrics.registry.reset()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded RNG for reproducible numeric fixtures."""
    return np.random.default_rng(12345)


@pytest.fixture
def matmul_doc():
    """A deployed-looking MatMul WSDL document with all binding kinds."""
    from repro.tools.wsdlgen import generate_wsdl
    from repro.plugins.services import MatMul

    return generate_wsdl(MatMul, bindings=("soap", "xdr", "local"))
